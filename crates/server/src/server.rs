//! The transaction server: session multiplexing onto a bounded worker
//! pool, with per-shard group commit.
//!
//! # Architecture
//!
//! [`TxnServer`] owns one [`Machine`] with `workers × slots_per_worker`
//! machine threads. Worker `w` exclusively owns the handle slots
//! `[w·K, (w+1)·K)` **and** its own pre-dealt session queue (see
//! [`assign_sessions`](crate::session::assign_sessions)), so a tick of
//! one worker never touches another worker's state — the sequential
//! [`TmSystem::tick`] drive and the OS-thread [`ParallelSystem`] drive
//! run the very same per-worker function.
//!
//! One worker tick performs, in order:
//!
//! 1. **arrival** — in open-loop mode (`arrival_period > 0`), sessions
//!    become runnable on the worker's tick clock regardless of capacity,
//!    so queueing delay shows up in measured latency;
//! 2. **admission** — free slots bind the next runnable sessions and
//!    enqueue their transaction bodies (`Begin`);
//! 3. **apply** — each busy slot APPlies its remaining operations
//!    (`Op`), failing the session cleanly if the spec refuses a result
//!    (e.g. a bank overdraft: retrying could never succeed);
//! 4. **commit** — commit-ready slots are scheduled in destination-shard
//!    order and committed through
//!    [`commit_group`](pushpull_core::commit_group) (one shard-lock
//!    acquisition and one contiguous stamp range per shard batch), or
//!    one by one when batching is off or a transaction is ineligible.
//!    The scheduling order is computed identically with batching on or
//!    off, which is why the two modes produce bit-identical traces.
//!
//! Conflict-denied transactions are retried with a refreshed committed
//! view, up to `max_retries`; sessions whose shard transport exhausts
//! its robustness envelope fail with
//! [`MachineError::TransportExhausted`] instead of wedging the server.

use std::collections::VecDeque;
use std::sync::Arc;

use pushpull_core::error::MachineError;
use pushpull_core::machine::Machine;
use pushpull_core::op::{ThreadId, TxnId};
use pushpull_core::spec::SeqSpec;
use pushpull_core::{commit_group, GroupTxnResult, TxnHandle};
use pushpull_tm::driver::{ParallelSystem, SystemStats, Tick, TmSystem, Worker};
use pushpull_tm::util::pull_committed_lenient;

use crate::proto::{SessionId, TxnResponse};
use crate::session::{assign_sessions, SessionEnd, SessionScript};

/// Server shape and policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker count (the bounded pool; one model thread per worker in
    /// the [`TmSystem`] sense).
    pub workers: usize,
    /// Handle slots each worker owns — the worker's concurrent-session
    /// capacity.
    pub slots_per_worker: usize,
    /// Commit commit-ready slots through the per-shard group-commit path
    /// (`false` drives every commit down the per-transaction path).
    pub group_commit: bool,
    /// Conflict-induced retries a session may spend before it fails.
    pub max_retries: u64,
    /// `0`: closed loop — a session becomes runnable when a slot frees.
    /// `k > 0`: open loop — one session becomes runnable every `k` ticks
    /// of its worker's clock, regardless of capacity.
    pub arrival_period: u64,
    /// Seed for the admission assignment (see
    /// [`assign_sessions`](crate::session::assign_sessions)).
    pub seed: u64,
    /// Record a [`TxnResponse`] log (off by default: a 10k-session drive
    /// doesn't want the allocation churn).
    pub record_responses: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            slots_per_worker: 8,
            group_commit: true,
            max_retries: 32,
            arrival_period: 0,
            seed: 0x5E55_10AD,
            record_responses: false,
        }
    }
}

/// How one session ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionOutcome {
    /// The session's transaction committed.
    Committed {
        /// The committed machine transaction.
        txn: TxnId,
        /// Through a group-commit batch (vs the per-transaction path)?
        batched: bool,
        /// Conflict retries spent before success.
        retries: u64,
        /// Worker ticks from the session becoming runnable to the
        /// commit, inclusive.
        latency: u64,
    },
    /// The client closed with `Abort`; the work was rewound and dropped.
    Aborted {
        /// The aborted machine transaction.
        txn: TxnId,
    },
    /// The session failed: spec refusal, retry budget exhausted, or
    /// transport exhaustion.
    Failed {
        /// The terminal error.
        error: MachineError,
    },
}

impl SessionOutcome {
    /// Did the session commit?
    pub fn is_committed(&self) -> bool {
        matches!(self, SessionOutcome::Committed { .. })
    }
}

/// One worker slot.
#[derive(Debug)]
enum Slot {
    /// Free: can admit a session.
    Idle,
    /// Permanently lost: the handle wedged mid-rewind (transport died
    /// with operations still pushed) and cannot host another session.
    Dead,
    /// Hosting a session.
    Busy(Active),
}

/// A session bound to a slot.
#[derive(Debug)]
struct Active {
    /// Index into the server's script table.
    session: usize,
    /// Operations applied so far in the current attempt.
    applied: usize,
    /// Conflict retries spent.
    retries: u64,
    /// Worker-clock tick at which the session became runnable.
    admitted_at: u64,
}

/// Per-worker state: the pre-dealt session queue, slot table, clock and
/// counters. Deliberately not generic — it holds no methods — so the
/// response/outcome types stay spec-independent.
#[derive(Debug)]
struct WorkerState {
    /// Sessions dealt to this worker, not yet runnable.
    upcoming: VecDeque<usize>,
    /// Runnable sessions awaiting a slot (open-loop mode only).
    arrived: VecDeque<(usize, u64)>,
    /// Total sessions moved to `arrived` (open-loop due accounting).
    arrived_count: usize,
    slots: Vec<Slot>,
    /// This worker's tick clock.
    now: u64,
    /// The error that killed the last slot, used to fail drained
    /// sessions once every slot is dead.
    dead_error: Option<MachineError>,
    stats: SystemStats,
    outcomes: Vec<(SessionId, SessionOutcome)>,
    responses: Vec<TxnResponse>,
}

impl WorkerState {
    fn new(queue: Vec<usize>, slots: usize) -> Self {
        Self {
            upcoming: queue.into(),
            arrived: VecDeque::new(),
            arrived_count: 0,
            slots: (0..slots).map(|_| Slot::Idle).collect(),
            now: 0,
            dead_error: None,
            stats: SystemStats::default(),
            outcomes: Vec::new(),
            responses: Vec::new(),
        }
    }

    fn is_done(&self) -> bool {
        self.upcoming.is_empty()
            && self.arrived.is_empty()
            && self
                .slots
                .iter()
                .all(|s| matches!(s, Slot::Idle | Slot::Dead))
    }

    /// Records a finished session.
    fn finish(&mut self, session: usize, outcome: SessionOutcome, record: bool) {
        let id = SessionId(session as u64);
        if record {
            self.responses.push(match &outcome {
                SessionOutcome::Committed {
                    txn,
                    batched,
                    retries,
                    ..
                } => TxnResponse::Committed {
                    session: id,
                    txn: *txn,
                    batched: *batched,
                    retries: *retries,
                },
                SessionOutcome::Aborted { txn } => TxnResponse::Aborted {
                    session: id,
                    txn: *txn,
                },
                SessionOutcome::Failed { error } => TxnResponse::Failed {
                    session: id,
                    error: error.clone(),
                },
            });
        }
        self.stats.sessions += 1;
        self.outcomes.push((id, outcome));
    }
}

/// Commits the session in slot `k` and frees the slot.
fn finish_commit(w: &mut WorkerState, k: usize, txn: TxnId, batched: bool, record: bool) {
    let Slot::Busy(a) = std::mem::replace(&mut w.slots[k], Slot::Idle) else {
        unreachable!("commit on a non-busy slot");
    };
    let latency = w.now - a.admitted_at + 1;
    w.stats.commits += 1;
    w.finish(
        a.session,
        SessionOutcome::Committed {
            txn,
            batched,
            retries: a.retries,
            latency,
        },
        record,
    );
}

/// Fails the session in slot `k` terminally: abandon the transaction if
/// the handle still can, else mark the slot dead.
fn fail_session<S: SeqSpec>(
    w: &mut WorkerState,
    k: usize,
    h: &mut TxnHandle<S>,
    error: MachineError,
    record: bool,
) {
    let Slot::Busy(a) = std::mem::replace(&mut w.slots[k], Slot::Idle) else {
        unreachable!("failure on a non-busy slot");
    };
    w.stats.aborts += 1;
    if let Err(wedge) = h.abandon() {
        // The rewind itself failed (e.g. UNPUSH through a dead
        // transport): this handle can never host a session again.
        w.slots[k] = Slot::Dead;
        w.dead_error = Some(wedge);
    }
    w.finish(a.session, SessionOutcome::Failed { error }, record);
}

/// Handles a conflict denial on slot `k`: abort-and-retry, or fail the
/// session once the retry budget is spent. `restarted` says the abort
/// already happened (the group path aborts in-view before reporting).
///
/// The surviving slot is queued on `needs_pull` instead of pulling the
/// committed view here: the refresh must wait until the *whole* commit
/// stage has run, so a denied transaction observes the same committed
/// prefix whether its peers committed through one batch (all sealed
/// before `commit_group` returned) or one at a time after its turn.
/// Pulling eagerly is exactly the batched-vs-single divergence the
/// equivalence suite would catch.
fn conflict_retry<S: SeqSpec>(
    w: &mut WorkerState,
    k: usize,
    h: &mut TxnHandle<S>,
    denied: MachineError,
    restarted: bool,
    needs_pull: &mut Vec<usize>,
    cfg: &ServerConfig,
) -> Result<(), MachineError> {
    w.stats.aborts += 1;
    let over_budget = match &mut w.slots[k] {
        Slot::Busy(a) => {
            a.retries += 1;
            a.retries > cfg.max_retries
        }
        _ => unreachable!("conflict on a non-busy slot"),
    };
    if over_budget {
        // `fail_session` counts its own abort; ours covered this denial.
        w.stats.aborts -= 1;
        fail_session(w, k, h, denied, cfg.record_responses);
        return Ok(());
    }
    if !restarted {
        if let Err(wedge) = h.abort_and_retry() {
            w.stats.aborts -= 1;
            fail_session(w, k, h, wedge, cfg.record_responses);
            return Ok(());
        }
    }
    if let Slot::Busy(a) = &mut w.slots[k] {
        a.applied = 0;
    }
    needs_pull.push(k);
    Ok(())
}

/// Per-transaction commit of slot `k` (batching off, or the group path
/// reported the transaction ineligible).
fn commit_single<S: SeqSpec>(
    w: &mut WorkerState,
    k: usize,
    h: &mut TxnHandle<S>,
    needs_pull: &mut Vec<usize>,
    cfg: &ServerConfig,
) -> Result<(), MachineError> {
    match h.push_all_and_commit() {
        Ok(txn) => {
            finish_commit(w, k, txn, false, cfg.record_responses);
            Ok(())
        }
        Err(e) if e.is_criterion() => conflict_retry(w, k, h, e, false, needs_pull, cfg),
        Err(e @ MachineError::TransportExhausted { .. }) => {
            fail_session(w, k, h, e, cfg.record_responses);
            Ok(())
        }
        Err(e) => Err(e),
    }
}

/// One tick of one worker — the single drive function shared by the
/// sequential [`TmSystem::tick`] and the OS-thread
/// [`ParallelSystem::workers`] paths.
fn tick_worker<S: SeqSpec>(
    handles: &mut [TxnHandle<S>],
    w: &mut WorkerState,
    scripts: &[SessionScript<S::Method>],
    cfg: &ServerConfig,
) -> Result<Tick, MachineError> {
    w.now += 1;
    let now = w.now;
    let commits_before = w.stats.commits;
    let aborts_before = w.stats.aborts;
    let mut progressed = false;

    // 1. Arrival (open loop): sessions become runnable on the clock.
    // `checked_div` is None exactly in the closed-loop case (period 0).
    if let Some(q) = now.checked_div(cfg.arrival_period) {
        let due = q as usize + 1;
        while w.arrived_count < due {
            match w.upcoming.pop_front() {
                Some(s) => {
                    w.arrived.push_back((s, now));
                    w.arrived_count += 1;
                }
                None => break,
            }
        }
    }

    // 2. Admission: bind runnable sessions to free slots.
    for (k, slot) in w.slots.iter_mut().enumerate() {
        if !matches!(slot, Slot::Idle) {
            continue;
        }
        let next = if cfg.arrival_period > 0 {
            w.arrived.pop_front()
        } else {
            w.upcoming.pop_front().map(|s| (s, now))
        };
        let Some((s, at)) = next else { break };
        let h = &mut handles[k];
        debug_assert!(h.is_done(), "idle slot holds a live transaction");
        h.enqueue(scripts[s].program());
        if cfg.record_responses {
            w.responses.push(TxnResponse::Began {
                session: SessionId(s as u64),
                txn: h.txn(),
            });
        }
        *slot = Slot::Busy(Active {
            session: s,
            applied: 0,
            retries: 0,
            admitted_at: at,
        });
        progressed = true;
    }

    // 3. Apply: APP each busy slot's remaining operations.
    let mut ready: Vec<usize> = Vec::new();
    let mut needs_pull: Vec<usize> = Vec::new();
    for (k, h) in handles.iter_mut().enumerate() {
        let (session, applied) = match &w.slots[k] {
            Slot::Busy(a) => (a.session, a.applied),
            _ => continue,
        };
        let script = &scripts[session];
        let mut cursor = applied;
        let mut verdict: Result<(), MachineError> = Ok(());
        while cursor < script.ops.len() {
            match h.app_method(&script.ops[cursor]) {
                Ok(_) => {
                    cursor += 1;
                    progressed = true;
                }
                Err(e) => {
                    verdict = Err(e);
                    break;
                }
            }
        }
        if let Slot::Busy(a) = &mut w.slots[k] {
            a.applied = cursor;
        }
        match verdict {
            Ok(()) => {
                if cfg.record_responses && cursor == script.ops.len() {
                    w.responses.push(TxnResponse::Acked {
                        session: SessionId(session as u64),
                        applied: cursor,
                    });
                }
                match script.end {
                    // Client-requested abort: rewind and drop, no retry.
                    SessionEnd::Abort => {
                        let txn = h.txn();
                        h.abandon()?;
                        let Slot::Busy(a) = std::mem::replace(&mut w.slots[k], Slot::Idle) else {
                            unreachable!()
                        };
                        w.stats.aborts += 1;
                        w.finish(
                            a.session,
                            SessionOutcome::Aborted { txn },
                            cfg.record_responses,
                        );
                    }
                    SessionEnd::Commit => ready.push(k),
                }
            }
            // The spec refuses every result (e.g. an overdraft): no
            // retry could ever succeed — fail the session cleanly.
            Err(e @ MachineError::NoAllowedResult(_)) => {
                fail_session(w, k, h, e, cfg.record_responses);
            }
            // An injected APP denial behaves like any conflict.
            Err(e) if e.is_criterion() => conflict_retry(w, k, h, e, false, &mut needs_pull, cfg)?,
            Err(e) => return Err(e),
        }
    }

    // 4. Commit stage. Scheduling order is destination-shard order for
    // single-shard-routable transactions, slot order for the rest —
    // computed the same way whether batching is on or off, so the two
    // modes replay identical traces.
    ready.sort_by_key(|&k| match handles[k].group_route() {
        Some(shard) => (0usize, shard, k),
        None => (1usize, 0, k),
    });
    if cfg.group_commit && !ready.is_empty() {
        let results = {
            let mut lent: Vec<Option<&mut TxnHandle<S>>> = handles.iter_mut().map(Some).collect();
            let mut batch: Vec<&mut TxnHandle<S>> = ready
                .iter()
                .map(|&k| lent[k].take().expect("ready slots are distinct"))
                .collect();
            commit_group(&mut batch).results
        };
        for (k, (_tid, result)) in ready.iter().copied().zip(results) {
            let h = &mut handles[k];
            match result {
                GroupTxnResult::Committed(txn) => {
                    finish_commit(w, k, txn, true, cfg.record_responses);
                }
                GroupTxnResult::Aborted {
                    denied,
                    restarted: _,
                } => {
                    conflict_retry(w, k, h, denied, true, &mut needs_pull, cfg)?;
                }
                GroupTxnResult::Wedged(e) => return Err(e),
                GroupTxnResult::Ineligible => {
                    w.stats.group_fallbacks += 1;
                    commit_single(w, k, h, &mut needs_pull, cfg)?;
                }
            }
        }
    } else {
        for k in ready {
            commit_single(w, k, &mut handles[k], &mut needs_pull, cfg)?;
        }
    }

    // Refresh denied slots' committed views only now, after the whole
    // stage: every retrying transaction observes the same committed
    // prefix regardless of whether its peers committed through one batch
    // or one at a time (PULL is local to the handle — no transport, no
    // shard lock).
    for k in needs_pull {
        if matches!(w.slots[k], Slot::Busy(_)) {
            pull_committed_lenient(&mut handles[k])?;
        }
    }

    // 5. Drain: with every slot dead, queued sessions can never run —
    // fail them with the error that killed the pool instead of hanging.
    if !w.slots.is_empty() && w.slots.iter().all(|s| matches!(s, Slot::Dead)) {
        let error = w.dead_error.clone().expect("dead slots record their error");
        let record = cfg.record_responses;
        while let Some((s, _)) = w.arrived.pop_front() {
            w.finish(
                s,
                SessionOutcome::Failed {
                    error: error.clone(),
                },
                record,
            );
        }
        while let Some(s) = w.upcoming.pop_front() {
            w.finish(
                s,
                SessionOutcome::Failed {
                    error: error.clone(),
                },
                record,
            );
        }
    }

    if w.stats.commits > commits_before {
        Ok(Tick::Committed)
    } else if w.stats.aborts > aborts_before {
        Ok(Tick::Aborted)
    } else if progressed {
        Ok(Tick::Progress)
    } else if w.is_done() {
        Ok(Tick::Done)
    } else {
        w.stats.blocked_ticks += 1;
        Ok(Tick::Blocked)
    }
}

/// The transactional service front-end (see the module docs).
#[derive(Debug)]
pub struct TxnServer<S: SeqSpec> {
    machine: Machine<S>,
    scripts: Arc<Vec<SessionScript<S::Method>>>,
    config: ServerConfig,
    workers: Vec<WorkerState>,
}

impl<S: SeqSpec> TxnServer<S> {
    /// Builds a server over `spec` serving `scripts`, with the admission
    /// schedule fixed by `config.seed`.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers` or `config.slots_per_worker` is zero.
    pub fn new(spec: S, scripts: Vec<SessionScript<S::Method>>, config: ServerConfig) -> Self {
        assert!(config.workers > 0, "server needs at least one worker");
        assert!(
            config.slots_per_worker > 0,
            "workers need at least one slot"
        );
        let mut machine = Machine::new(spec);
        for _ in 0..config.workers * config.slots_per_worker {
            machine.add_thread(Vec::new());
        }
        let workers = assign_sessions(scripts.len(), config.workers, config.seed)
            .into_iter()
            .map(|q| WorkerState::new(q, config.slots_per_worker))
            .collect();
        Self {
            machine,
            scripts: Arc::new(scripts),
            config,
            workers,
        }
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Machine<S> {
        &self.machine
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Per-session outcomes recorded so far, sorted by session id.
    pub fn outcomes(&self) -> Vec<(SessionId, &SessionOutcome)> {
        let mut out: Vec<_> = self
            .workers
            .iter()
            .flat_map(|w| w.outcomes.iter().map(|(s, o)| (*s, o)))
            .collect();
        out.sort_by_key(|(s, _)| *s);
        out
    }

    /// Commit latencies (in worker ticks) of every committed session, in
    /// session-id order — feed these to a latency histogram.
    pub fn commit_latencies(&self) -> Vec<u64> {
        self.outcomes()
            .into_iter()
            .filter_map(|(_, o)| match o {
                SessionOutcome::Committed { latency, .. } => Some(*latency),
                _ => None,
            })
            .collect()
    }

    /// The recorded response log (only populated with
    /// [`ServerConfig::record_responses`]), in worker-major order.
    pub fn responses(&self) -> Vec<&TxnResponse> {
        self.workers
            .iter()
            .flat_map(|w| w.responses.iter())
            .collect()
    }

    /// Accumulated statistics: worker counters summed, machine-level
    /// counters (locks, seqlock, arena, transport, group commit) read
    /// from the machine.
    pub fn stats(&self) -> SystemStats {
        let mut stats: SystemStats = self.workers.iter().map(|w| w.stats).sum();
        let (acquires, contended) = self.machine.lock_stats();
        stats.lock_acquires = acquires;
        stats.lock_contended = contended;
        let (snap_reads, snap_retries, snap_fallbacks) = self.machine.seqlock_stats();
        stats.snap_reads = snap_reads;
        stats.snap_retries = snap_retries;
        stats.snap_fallbacks = snap_fallbacks;
        let (arena_live, arena_capacity, arena_reused) = self.machine.arena_stats();
        stats.arena_live = arena_live;
        stats.arena_capacity = arena_capacity;
        stats.arena_reused = arena_reused;
        let t = self.machine.transport_stats();
        stats.transport_requests = t.requests;
        stats.transport_retries = t.retries;
        stats.transport_timeouts = t.timeouts;
        stats.transport_degradations = t.degradations;
        stats.transport_recoveries = t.recoveries;
        let g = self.machine.group_stats();
        stats.group_batches = g.batches;
        stats.group_txns = g.batched_txns;
        stats.group_locks_saved = g.locks_saved;
        stats.group_hist = g.size_hist;
        stats
    }
}

impl<S: SeqSpec> TmSystem for TxnServer<S> {
    fn tick(&mut self, tid: ThreadId) -> Result<Tick, MachineError> {
        let w = tid.0;
        if w >= self.workers.len() {
            return Err(MachineError::NoSuchThread(tid));
        }
        let k = self.config.slots_per_worker;
        let handles = &mut self.machine.handles_mut()[w * k..(w + 1) * k];
        tick_worker(handles, &mut self.workers[w], &self.scripts, &self.config)
    }

    fn thread_count(&self) -> usize {
        self.workers.len()
    }

    fn is_done(&self) -> bool {
        self.workers.iter().all(WorkerState::is_done)
    }

    fn name(&self) -> &'static str {
        "txn-server"
    }

    pushpull_tm::forward_machine_hooks!();
}

impl<S> ParallelSystem for TxnServer<S>
where
    S: SeqSpec + Send + Sync + 'static,
    S::Method: Send + Sync,
    S::Ret: Send + Sync,
    S::State: Send + Sync,
{
    fn workers(&mut self) -> Vec<Worker<'_>> {
        let cfg = self.config;
        let scripts = Arc::clone(&self.scripts);
        self.machine
            .handles_mut()
            .chunks_mut(cfg.slots_per_worker)
            .zip(self.workers.iter_mut())
            .map(|(chunk, w)| {
                let scripts = Arc::clone(&scripts);
                Box::new(move || tick_worker(chunk, w, &scripts, &cfg)) as Worker<'_>
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushpull_core::serializability::check_machine;
    use pushpull_spec::kvmap::{KvMap, MapMethod};
    use pushpull_spec::queue::{QueueMethod, QueueSpec};

    fn drive<S: SeqSpec>(sys: &mut TxnServer<S>, budget: usize) {
        let n = sys.thread_count();
        for i in 0..budget {
            if sys.is_done() {
                return;
            }
            sys.tick(ThreadId(i % n)).unwrap();
        }
        panic!("server did not drain within {budget} ticks");
    }

    fn disjoint_scripts(n: usize) -> Vec<SessionScript<MapMethod>> {
        (0..n as u64)
            .map(|s| SessionScript::commit(vec![MapMethod::Put(s, s as i64), MapMethod::Get(s)]))
            .collect()
    }

    #[test]
    fn all_sessions_commit_and_batches_amortize_locks() {
        let mut sys = TxnServer::new(
            KvMap::new(),
            disjoint_scripts(64),
            ServerConfig {
                workers: 2,
                slots_per_worker: 8,
                ..ServerConfig::default()
            },
        );
        drive(&mut sys, 10_000);
        let stats = sys.stats();
        assert_eq!(stats.sessions, 64);
        assert_eq!(stats.commits, 64);
        assert!(sys.outcomes().iter().all(|(_, o)| o.is_committed()));
        assert!(stats.group_batches > 0, "nothing batched");
        assert_eq!(stats.group_txns, 64, "every commit should batch");
        assert!(stats.group_locks_saved > 0);
        // Full slots, synchronized sessions: batches of 8 land in the
        // 5–8 bucket.
        assert!(stats.group_hist[3] > 0, "hist: {:?}", stats.group_hist);
        assert!(
            stats.lock_acquires < stats.commits,
            "batched disjoint load must average below one lock per commit \
             ({} acquires / {} commits)",
            stats.lock_acquires,
            stats.commits
        );
        assert!(check_machine(sys.machine()).is_serializable());
    }

    #[test]
    fn unbatched_mode_commits_identically_but_pays_per_txn_locks() {
        let make = |group_commit| {
            let mut sys = TxnServer::new(
                KvMap::new(),
                disjoint_scripts(32),
                ServerConfig {
                    workers: 2,
                    slots_per_worker: 4,
                    group_commit,
                    ..ServerConfig::default()
                },
            );
            drive(&mut sys, 10_000);
            sys
        };
        let on = make(true);
        let off = make(false);
        assert_eq!(
            format!("{:?}", on.machine().committed_txns()),
            format!("{:?}", off.machine().committed_txns()),
        );
        assert_eq!(
            on.machine().trace().render(),
            off.machine().trace().render()
        );
        assert_eq!(off.stats().group_batches, 0);
        assert!(off.stats().lock_acquires > on.stats().lock_acquires);
    }

    #[test]
    fn abort_sessions_are_rewound_not_committed() {
        let scripts = vec![
            SessionScript::commit(vec![MapMethod::Put(0, 1)]),
            SessionScript::abort(vec![MapMethod::Put(1, 2)]),
        ];
        let mut sys = TxnServer::new(
            KvMap::new(),
            scripts,
            ServerConfig {
                workers: 1,
                slots_per_worker: 2,
                record_responses: true,
                ..ServerConfig::default()
            },
        );
        drive(&mut sys, 1_000);
        let outcomes = sys.outcomes();
        assert!(matches!(
            outcomes[0].1,
            SessionOutcome::Committed { batched: true, .. }
        ));
        assert!(matches!(outcomes[1].1, SessionOutcome::Aborted { .. }));
        assert_eq!(sys.machine().committed_txns().len(), 1);
        // The response log saw every lifecycle edge.
        let responses = sys.responses();
        assert!(responses
            .iter()
            .any(|r| matches!(r, TxnResponse::Began { .. })));
        assert!(responses
            .iter()
            .any(|r| matches!(r, TxnResponse::Aborted { .. })));
    }

    #[test]
    fn spec_refusal_fails_the_session_without_livelock() {
        // The bounded queue's universe is {1}: enqueueing 9 has no
        // allowed result, so the session must fail cleanly, not retry
        // forever.
        let scripts = vec![
            SessionScript::commit(vec![QueueMethod::Enq(1)]),
            SessionScript::commit(vec![QueueMethod::Enq(9)]),
        ];
        let mut sys = TxnServer::new(
            QueueSpec::bounded(vec![1], 4),
            scripts,
            ServerConfig {
                workers: 1,
                slots_per_worker: 2,
                ..ServerConfig::default()
            },
        );
        drive(&mut sys, 1_000);
        let outcomes = sys.outcomes();
        assert!(outcomes[0].1.is_committed());
        assert!(matches!(
            outcomes[1].1,
            SessionOutcome::Failed {
                error: MachineError::NoAllowedResult(_)
            }
        ));
        assert_eq!(sys.stats().sessions, 2);
    }

    #[test]
    fn contended_sessions_retry_to_completion() {
        // Every session read-modify-writes the same key: heavy conflict,
        // everyone still commits through the retry loop.
        let scripts: Vec<_> = (0..12)
            .map(|s| SessionScript::commit(vec![MapMethod::Get(0), MapMethod::Put(0, s)]))
            .collect();
        let mut sys = TxnServer::new(
            KvMap::new(),
            scripts,
            ServerConfig {
                workers: 2,
                slots_per_worker: 3,
                ..ServerConfig::default()
            },
        );
        drive(&mut sys, 100_000);
        let stats = sys.stats();
        assert_eq!(stats.commits, 12, "aborts: {}", stats.aborts);
        assert!(check_machine(sys.machine()).is_serializable());
    }

    #[test]
    fn open_loop_arrivals_queue_behind_capacity() {
        let mut sys = TxnServer::new(
            KvMap::new(),
            disjoint_scripts(8),
            ServerConfig {
                workers: 1,
                slots_per_worker: 1,
                arrival_period: 1,
                ..ServerConfig::default()
            },
        );
        drive(&mut sys, 10_000);
        assert_eq!(sys.stats().commits, 8);
        let lat = sys.commit_latencies();
        assert_eq!(lat.len(), 8);
        // One slot, one arrival per tick: later sessions queue, so the
        // maximum latency strictly exceeds the minimum.
        assert!(lat.iter().max() > lat.iter().min(), "latencies: {lat:?}");
    }

    #[test]
    fn deterministic_replay_per_seed() {
        let make = |seed| {
            let mut sys = TxnServer::new(
                KvMap::new(),
                disjoint_scripts(24),
                ServerConfig {
                    workers: 3,
                    slots_per_worker: 2,
                    seed,
                    ..ServerConfig::default()
                },
            );
            drive(&mut sys, 10_000);
            (
                sys.machine().trace().render(),
                format!("{:?}", sys.outcomes()),
            )
        };
        assert_eq!(make(7), make(7), "same seed must replay identically");
        assert_ne!(
            make(7).0,
            make(8).0,
            "different admission seeds should schedule differently"
        );
    }
}
