//! The service wire protocol: what a client session sends and what the
//! server answers.
//!
//! The shapes follow the classic executor-event style of transactional
//! RPC servers: a session opens a transaction (`Begin`), streams its
//! operations (`Op`), and closes with `Commit` or `Abort`; the server
//! answers each lifecycle edge with one [`TxnResponse`]. Responses carry
//! the machine-level transaction id so a client (or a test) can correlate
//! a session with the committed-transaction record and the trace.

use pushpull_core::error::MachineError;
use pushpull_core::op::TxnId;

/// A logical client session id — dense indices assigned by the server at
/// construction, stable across retries of the session's transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One client request on a session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnRequest<M> {
    /// Open a transaction on this session.
    Begin,
    /// Apply one operation inside the open transaction.
    Op(M),
    /// Commit the open transaction (the server may batch it through the
    /// per-shard group-commit path).
    Commit,
    /// Abort the open transaction without retrying it.
    Abort,
}

/// One server response on a session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnResponse {
    /// `Begin` accepted: the session is bound to a worker slot and a
    /// fresh machine transaction.
    Began {
        /// The session.
        session: SessionId,
        /// The machine transaction id running the session's first attempt.
        txn: TxnId,
    },
    /// All of the session's operations applied locally (APP); the
    /// transaction is commit-ready.
    Acked {
        /// The session.
        session: SessionId,
        /// Operations applied in this attempt.
        applied: usize,
    },
    /// `Commit` succeeded.
    Committed {
        /// The session.
        session: SessionId,
        /// The committed machine transaction id.
        txn: TxnId,
        /// Did the commit go through a group-commit batch (as opposed to
        /// the per-transaction fallback)?
        batched: bool,
        /// Conflict-induced retries before this attempt succeeded.
        retries: u64,
    },
    /// `Abort` honoured: the transaction was rewound and dropped.
    Aborted {
        /// The session.
        session: SessionId,
        /// The aborted machine transaction id.
        txn: TxnId,
    },
    /// The session failed: the spec refused an operation outright, the
    /// retry budget ran out, or the shard transport exhausted its
    /// robustness envelope.
    Failed {
        /// The session.
        session: SessionId,
        /// The terminal error.
        error: MachineError,
    },
}

impl TxnResponse {
    /// The session this response belongs to.
    pub fn session(&self) -> SessionId {
        match self {
            TxnResponse::Began { session, .. }
            | TxnResponse::Acked { session, .. }
            | TxnResponse::Committed { session, .. }
            | TxnResponse::Aborted { session, .. }
            | TxnResponse::Failed { session, .. } => *session,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushpull_core::op::ThreadId;

    #[test]
    fn responses_name_their_session() {
        let s = SessionId(7);
        assert_eq!(
            TxnResponse::Began {
                session: s,
                txn: TxnId(1)
            }
            .session(),
            s
        );
        assert_eq!(
            TxnResponse::Failed {
                session: s,
                error: MachineError::NoSuchThread(ThreadId(0)),
            }
            .session(),
            s
        );
        assert_eq!(s.to_string(), "s7");
    }
}
