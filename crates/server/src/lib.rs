//! # pushpull-server
//!
//! A transactional service front-end over the Push/Pull machine
//! (Koskinen & Parkinson, PLDI 2015): many logical client *sessions* —
//! each a begin/op/commit-or-abort transaction — multiplexed onto a
//! bounded pool of workers, each worker owning a fixed set of
//! transaction handles.
//!
//! * [`proto`] — the wire shapes: [`TxnRequest`], [`TxnResponse`],
//!   [`SessionId`];
//! * [`session`] — [`SessionScript`] (a straight-line transaction body
//!   plus its close) and the deterministic seeded admission assignment;
//! * [`server`] — [`TxnServer`]: admission, APPly, and a commit stage
//!   that batches commit-ready transactions *per destination shard* so
//!   one shard-lock acquisition and one contiguous stamp reservation
//!   cover a whole batch ([`pushpull_core::commit_group`]).
//!
//! The server is itself a [`TmSystem`](pushpull_tm::driver::TmSystem)
//! and a [`ParallelSystem`](pushpull_tm::driver::ParallelSystem), so the
//! whole harness — seeded schedulers, the OS-thread runner with its
//! watchdog, fault plans, parameter sweeps — drives it unchanged.
//! Batching is observationally invisible: with the same scripts, seed,
//! and shard count, group commit on and off produce bit-identical
//! committed-transaction records and traces (the equivalence suite holds
//! this at shard counts 1, 4, and 16).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod proto;
pub mod server;
pub mod session;

pub use proto::{SessionId, TxnRequest, TxnResponse};
pub use server::{ServerConfig, SessionOutcome, TxnServer};
pub use session::{assign_sessions, SessionEnd, SessionScript};
