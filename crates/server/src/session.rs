//! Session scripts and the deterministic seeded admission assignment.
//!
//! A *session* is one logical client: a straight-line transaction body
//! (its operations in order) plus how the client closes it — `Commit` or
//! `Abort`. The server multiplexes many more sessions than it has worker
//! slots; [`assign_sessions`] fixes, at construction time, which worker
//! serves which sessions and in what order, from a seed alone, so a run
//! is replayable without any shared admission queue for parallel workers
//! to race on.

use pushpull_core::lang::Code;
use pushpull_core::rng::Xorshift64;

use crate::proto::TxnRequest;

/// How a session closes its transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEnd {
    /// Close with `Commit`.
    Commit,
    /// Close with `Abort` (the client discards the work).
    Abort,
}

/// One logical client session: a straight-line transaction body and its
/// closing request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionScript<M> {
    /// The transaction's operations, in order.
    pub ops: Vec<M>,
    /// How the session closes.
    pub end: SessionEnd,
}

impl<M: Clone> SessionScript<M> {
    /// A session that applies `ops` and commits.
    pub fn commit(ops: Vec<M>) -> Self {
        Self {
            ops,
            end: SessionEnd::Commit,
        }
    }

    /// A session that applies `ops` and then aborts.
    pub fn abort(ops: Vec<M>) -> Self {
        Self {
            ops,
            end: SessionEnd::Abort,
        }
    }

    /// Flattens a *straight-line* program (a `Seq`/`Method` chain, as the
    /// workload generators emit) into a committing session. Choice and
    /// loop structure is not representable on the wire; such programs
    /// belong on a driver, not the service front-end.
    pub fn from_code(code: &Code<M>) -> Self
    where
        M: PartialEq,
    {
        Self::commit(code.reachable_methods())
    }

    /// The canonical wire rendering: `Begin`, one `Op` per operation,
    /// then the closing request.
    pub fn requests(&self) -> Vec<TxnRequest<M>> {
        let mut out = Vec::with_capacity(self.ops.len() + 2);
        out.push(TxnRequest::Begin);
        out.extend(self.ops.iter().cloned().map(TxnRequest::Op));
        out.push(match self.end {
            SessionEnd::Commit => TxnRequest::Commit,
            SessionEnd::Abort => TxnRequest::Abort,
        });
        out
    }

    /// The transaction body as machine code (a straight-line sequence).
    pub fn program(&self) -> Code<M> {
        Code::seq_all(self.ops.iter().cloned().map(Code::method))
    }
}

/// Deterministic seeded admission: shuffles session indices `0..sessions`
/// with a seeded Fisher–Yates pass and deals them round-robin to
/// `workers` queues. Every worker's queue order — hence the whole
/// admission schedule — is a pure function of `(sessions, workers,
/// seed)`.
///
/// # Panics
///
/// Panics if `workers == 0`.
pub fn assign_sessions(sessions: usize, workers: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(workers > 0, "a server needs at least one worker");
    let mut order: Vec<usize> = (0..sessions).collect();
    let mut rng = Xorshift64::new(seed);
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..(i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); workers];
    for (k, s) in order.into_iter().enumerate() {
        queues[k % workers].push(s);
    }
    queues
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushpull_spec::kvmap::MapMethod;

    #[test]
    fn wire_rendering_brackets_the_ops() {
        let s = SessionScript::commit(vec![MapMethod::Put(0, 1), MapMethod::Get(0)]);
        let reqs = s.requests();
        assert_eq!(reqs.len(), 4);
        assert_eq!(reqs[0], TxnRequest::Begin);
        assert_eq!(reqs[3], TxnRequest::Commit);
        let a = SessionScript::abort(vec![MapMethod::Get(1)]);
        assert_eq!(a.requests().last(), Some(&TxnRequest::Abort));
    }

    #[test]
    fn from_code_flattens_straight_line_programs() {
        let code = Code::seq_all(vec![
            Code::method(MapMethod::Put(3, 9)),
            Code::method(MapMethod::Get(3)),
        ]);
        let s = SessionScript::from_code(&code);
        assert_eq!(s.ops, vec![MapMethod::Put(3, 9), MapMethod::Get(3)]);
        assert_eq!(s.end, SessionEnd::Commit);
    }

    #[test]
    fn assignment_is_a_seeded_partition() {
        let queues = assign_sessions(100, 3, 42);
        assert_eq!(queues.iter().map(Vec::len).sum::<usize>(), 100);
        let mut all: Vec<usize> = queues.concat();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
        // Replayable: same inputs, same deal.
        assert_eq!(queues, assign_sessions(100, 3, 42));
        // Seed-sensitive: a different seed deals differently.
        assert_ne!(queues, assign_sessions(100, 3, 43));
    }
}
