//! A simulated best-effort hardware TM (Intel Haswell-style \[17\],
//! IBM \[16\]) over read/write memory.
//!
//! The model observes an HTM through exactly two behaviours (§7): word
//! granularity *eager* conflict detection (the first conflicting access
//! between two live transactions aborts one of them) and lazy publication
//! (buffered writes become visible at commit). In PUSH/PULL terms: APP
//! during the run, eager conflicts tracked by
//! [`HtmConflicts`] (the simulated
//! cache-coherence machinery), PUSH*;CMT at commit, UNAPP* on abort.
//!
//! This is the substitution for real TSX/POWER hardware recorded in
//! DESIGN.md: conflict granularity, eagerness and the abort signal are
//! what the model can see, and those are preserved.

use std::sync::{Arc, Mutex};

use pushpull_core::error::MachineError;
use pushpull_core::machine::Machine;
use pushpull_core::op::ThreadId;
use pushpull_core::{Code, TxnHandle};
use pushpull_ds::memory::HtmConflicts;
use pushpull_spec::rwmem::{Loc, MemMethod, RwMem};

use crate::contention::{
    default_manager, ContentionManager, ContentionState, Gate, Governor, StarvationReport,
};
use crate::driver::{ParallelSystem, SystemStats, Tick, TmSystem, Worker};
use crate::util::{is_conflict, pull_committed_lenient};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Begin,
    Running,
}

/// A simulated-HTM system over [`RwMem`].
///
/// # Examples
///
/// ```
/// use pushpull_tm::htm::HtmSystem;
/// use pushpull_tm::driver::TmSystem;
/// use pushpull_spec::rwmem::{MemMethod, Loc};
/// use pushpull_core::lang::Code;
/// use pushpull_core::op::ThreadId;
///
/// let mut sys = HtmSystem::new(vec![
///     vec![Code::method(MemMethod::Write(Loc(0), 1))],
///     vec![Code::method(MemMethod::Write(Loc(1), 2))],
/// ]);
/// while !sys.is_done() {
///     for t in 0..sys.thread_count() {
///         sys.tick(ThreadId(t))?;
///     }
/// }
/// assert_eq!(sys.stats().commits, 2);
/// # Ok::<(), pushpull_core::error::MachineError>(())
/// ```
#[derive(Debug)]
pub struct HtmSystem {
    machine: Machine<RwMem>,
    /// The simulated cache-coherence machinery — the algorithm's only
    /// cross-thread state, behind a short-held mutex.
    tracker: Mutex<HtmConflicts<Loc>>,
    threads: Vec<HtmThread>,
    contention: Arc<ContentionState>,
    governors: Vec<Governor>,
}

/// Per-thread driver state, owned by exactly one worker.
#[derive(Debug, Clone)]
struct HtmThread {
    phase: Phase,
    stats: SystemStats,
}

impl Default for HtmThread {
    fn default() -> Self {
        Self {
            phase: Phase::Begin,
            stats: SystemStats::default(),
        }
    }
}

fn abort_thread(
    tracker: &Mutex<HtmConflicts<Loc>>,
    h: &mut TxnHandle<RwMem>,
    t: &mut HtmThread,
    gov: &mut Governor,
) -> Result<Tick, MachineError> {
    let txn = h.txn();
    h.abort_and_retry()?;
    tracker
        .lock()
        .expect("conflict tracker poisoned")
        .clear(txn);
    t.phase = Phase::Begin;
    t.stats.aborts += 1;
    gov.on_abort();
    Ok(Tick::Aborted)
}

/// One HTM tick for one thread: the conflict tracker is consulted briefly
/// per access; APP runs on the thread's own handle with no system-wide
/// lock.
fn tick_thread(
    tracker: &Mutex<HtmConflicts<Loc>>,
    h: &mut TxnHandle<RwMem>,
    t: &mut HtmThread,
    gov: &mut Governor,
) -> Result<Tick, MachineError> {
    match gov.gate(h) {
        Gate::Done => return Ok(Tick::Done),
        Gate::Park => {
            t.stats.blocked_ticks += 1;
            return Ok(Tick::Blocked);
        }
        Gate::Kill => return abort_thread(tracker, h, t, gov),
        Gate::Run => {}
    }
    if t.phase == Phase::Begin {
        pull_committed_lenient(h)?;
        t.phase = Phase::Running;
        return Ok(Tick::Progress);
    }
    let txn = h.txn();
    let options = h.step_options()?;
    if options.is_empty() {
        // Commit: publish the write buffer, then CMT; clear the
        // access tracker either way.
        return match h.push_all_and_commit() {
            Ok(committed) => {
                tracker
                    .lock()
                    .expect("conflict tracker poisoned")
                    .clear(committed);
                t.phase = Phase::Begin;
                t.stats.commits += 1;
                gov.on_commit();
                Ok(Tick::Committed)
            }
            Err(e) if is_conflict(&e) => abort_thread(tracker, h, t, gov),
            Err(e) => Err(e),
        };
    }
    let method = options[0].0;
    // Injected hardware faults: a capacity overflow or a spurious
    // coherence conflict aborts the transaction exactly as the real
    // best-effort hardware would, before the access is even recorded.
    if h.fault_at_htm_access().is_some() {
        return abort_thread(tracker, h, t, gov);
    }
    // Eager word-granularity conflict detection: the access that
    // closes a conflict aborts its own transaction (requester-loses,
    // as on real best-effort HTMs).
    let access = {
        let mut tr = tracker.lock().expect("conflict tracker poisoned");
        match method {
            MemMethod::Read(l) => tr.record_read(txn, l),
            MemMethod::Write(l, _) => tr.record_write(txn, l),
        }
    };
    if access.is_err() {
        return abort_thread(tracker, h, t, gov);
    }
    match h.app_method(&method) {
        Ok(_) => {
            gov.on_progress();
            Ok(Tick::Progress)
        }
        Err(MachineError::NoAllowedResult(_)) => abort_thread(tracker, h, t, gov),
        Err(e) if is_conflict(&e) => abort_thread(tracker, h, t, gov),
        Err(e) => Err(e),
    }
}

impl HtmSystem {
    /// Creates a system running `programs[i]` on thread `i` under the
    /// default contention manager.
    pub fn new(programs: Vec<Vec<Code<MemMethod>>>) -> Self {
        Self::with_contention(programs, default_manager())
    }

    /// Creates a system with an explicit contention-management policy.
    pub fn with_contention(
        programs: Vec<Vec<Code<MemMethod>>>,
        cm: Arc<dyn ContentionManager>,
    ) -> Self {
        let mut machine = Machine::new(RwMem::new());
        let n = programs.len();
        for p in programs {
            machine.add_thread(p);
        }
        let contention = ContentionState::new(cm);
        let governors = contention.governors(n);
        Self {
            machine,
            tracker: Mutex::new(HtmConflicts::new()),
            threads: vec![HtmThread::default(); n],
            contention,
            governors,
        }
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Machine<RwMem> {
        &self.machine
    }

    /// Accumulated statistics (summed over threads).
    pub fn stats(&self) -> SystemStats {
        let mut stats: SystemStats = self.threads.iter().map(|t| t.stats).sum();
        self.contention.fold_into(&mut stats);
        crate::driver::fold_machine_counters(&self.machine, &mut stats);
        stats
    }
}

impl Clone for HtmSystem {
    fn clone(&self) -> Self {
        let contention = self.contention.fork();
        let governors = contention.governors(self.threads.len());
        Self {
            machine: self.machine.clone(),
            tracker: Mutex::new(
                self.tracker
                    .lock()
                    .expect("conflict tracker poisoned")
                    .clone(),
            ),
            threads: self.threads.clone(),
            contention,
            governors,
        }
    }
}

impl TmSystem for HtmSystem {
    fn tick(&mut self, tid: ThreadId) -> Result<Tick, MachineError> {
        tick_thread(
            &self.tracker,
            self.machine.handle_mut(tid)?,
            &mut self.threads[tid.0],
            &mut self.governors[tid.0],
        )
    }

    fn thread_count(&self) -> usize {
        self.machine.thread_count()
    }

    fn is_done(&self) -> bool {
        (0..self.machine.thread_count()).all(|t| {
            self.machine
                .thread(ThreadId(t))
                .map(|t| t.is_done())
                .unwrap_or(true)
        })
    }

    fn name(&self) -> &'static str {
        "htm-sim"
    }

    fn starvation(&self) -> Option<StarvationReport> {
        Some(self.contention.report())
    }

    crate::driver::forward_machine_hooks!();
}

impl ParallelSystem for HtmSystem {
    fn workers(&mut self) -> Vec<Worker<'_>> {
        let tracker = &self.tracker;
        self.machine
            .handles_mut()
            .iter_mut()
            .zip(self.threads.iter_mut())
            .zip(self.governors.iter_mut())
            .map(|((h, t), gov)| Box::new(move || tick_thread(tracker, h, t, gov)) as Worker<'_>)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushpull_core::opacity::{check_trace, OpacityVerdict};
    use pushpull_core::serializability::check_machine;

    fn run_round_robin(sys: &mut HtmSystem, max_ticks: usize) {
        let n = sys.thread_count();
        for i in 0..max_ticks {
            if sys.is_done() {
                return;
            }
            let _ = sys.tick(ThreadId(i % n)).unwrap();
        }
        panic!("system did not terminate within {max_ticks} ticks");
    }

    fn rmw(l: u32, v: i64) -> Vec<Code<MemMethod>> {
        vec![Code::seq_all(vec![
            Code::method(MemMethod::Read(Loc(l))),
            Code::method(MemMethod::Write(Loc(l), v)),
        ])]
    }

    #[test]
    fn disjoint_words_run_in_parallel() {
        let mut sys = HtmSystem::new(vec![rmw(0, 1), rmw(1, 2)]);
        run_round_robin(&mut sys, 2000);
        assert_eq!(sys.stats().commits, 2);
        assert_eq!(sys.stats().aborts, 0);
        assert!(check_machine(sys.machine()).is_serializable());
    }

    #[test]
    fn word_conflicts_abort_eagerly() {
        let mut sys = HtmSystem::new(vec![rmw(0, 1), rmw(0, 2)]);
        run_round_robin(&mut sys, 4000);
        assert_eq!(sys.stats().commits, 2);
        assert!(
            sys.stats().aborts >= 1,
            "same-word RMWs must conflict eagerly"
        );
        assert!(check_machine(sys.machine()).is_serializable());
    }

    #[test]
    fn htm_runs_are_opaque() {
        let mut sys = HtmSystem::new(vec![rmw(0, 1), rmw(1, 2), rmw(0, 3)]);
        run_round_robin(&mut sys, 4000);
        assert_eq!(check_trace(&sys.machine().trace()), OpacityVerdict::Opaque);
    }

    #[test]
    fn conflict_aborts_before_any_inconsistent_app() {
        // The eager tracker fires BEFORE the APP, so the trace contains no
        // APP whose observation the conflicting write could invalidate.
        let mut sys = HtmSystem::new(vec![rmw(0, 1), rmw(0, 2)]);
        // T0 reads loc0.
        sys.tick(ThreadId(0)).unwrap();
        sys.tick(ThreadId(0)).unwrap();
        // T1 tries to read then write loc0: read shares fine…
        sys.tick(ThreadId(1)).unwrap();
        sys.tick(ThreadId(1)).unwrap();
        // …but T1's write to loc0 conflicts with T0's read: abort.
        let t = sys.tick(ThreadId(1)).unwrap();
        assert_eq!(t, Tick::Aborted);
    }
}
