//! # pushpull-tm
//!
//! The transactional-memory algorithm classes of §6 and §7 of
//! “The Push/Pull Model of Transactions” (PLDI 2015), each expressed as
//! a *pattern of PUSH/PULL rule invocations* against the checked machine
//! of `pushpull-core` — exactly the decomposition the paper performs on
//! paper, made executable:
//!
//! | paper § | system | rule pattern |
//! |---|---|---|
//! | 6.2 | [`optimistic::OptimisticSystem`] | PULL committed at begin; APP during run; PUSH*;CMT at commit; UNAPP* on abort |
//! | 6.2 | [`tl2::Tl2System`] | the concrete TL2 algorithm with its real metadata (clock, versions, read sets) |
//! | 6.2 | [`checkpoint::CheckpointOptimistic`] | checkpoints/partial abort: UNAPP only the invalidated suffix |
//! | 6.3 | [`pessimistic::MatveevShavitSystem`] | writes delayed; PUSH*;CMT under a commit token; reads PULL committed only |
//! | 6.3 | [`boosting::BoostingSystem`] | abstract locks; APP;PUSH per op; UNPUSH;UNAPP on abort |
//! | 6.3 | [`twophase::TwoPhaseLocking`] | strict 2PL with shared read locks (the lock-inference family \[4\]) |
//! | 6.4 | [`irrevocable::IrrevocableSystem`] | one eager-PUSH never-aborting thread among optimists |
//! | 6.5 | [`dependent::DependentSystem`] | PULL of uncommitted effects, commit gating, cascaded detangling |
//! | 7 | [`htm::HtmSystem`] | simulated word-granularity eager-conflict HTM |
//! | 7 | [`mixed::MixedSystem`] | boosted objects + HTM words in one transaction, partial HTM rewind |
//!
//! Every system implements [`driver::TmSystem`]; schedulers and the
//! model checker live in `pushpull-harness`. Because the machine checks
//! every rule criterion, each system is serializable by construction on
//! every run — the serializability oracle re-verifies this in the tests.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod boosting;
pub mod checkpoint;
pub mod conflict;
pub mod contention;
pub mod dependent;
pub mod driver;
pub mod htm;
pub mod irrevocable;
pub mod mixed;
pub mod optimistic;
pub mod pessimistic;
pub mod tl2;
pub mod twophase;
pub mod util;

pub use boosting::BoostingSystem;
pub use checkpoint::CheckpointOptimistic;
pub use conflict::ConflictKeyed;
pub use contention::{
    default_manager, CmBackoff, ContentionManager, ContentionState, ExponentialBackoff, Gate,
    Governor, GracefulDegradation, ImmediateRetry, KarmaAging, Recovery, StarvationReport,
    WaitVerdict,
};
pub use dependent::DependentSystem;
pub use driver::{full_rule_pattern, ParallelSystem, SystemStats, Tick, TmSystem, Worker};
pub use htm::HtmSystem;
pub use irrevocable::IrrevocableSystem;
pub use mixed::MixedSystem;
pub use optimistic::{OptimisticSystem, ReadPolicy};
pub use pessimistic::MatveevShavitSystem;
pub use tl2::Tl2System;
pub use twophase::TwoPhaseLocking;
