//! Optimistic (lazy-publication) transactions — TL2 \[6\], TinySTM \[8\],
//! Intel STM \[31\]; paper §6.2.
//!
//! Rule pattern:
//!
//! * at begin: **PULL** the committed shared state (the snapshot — "there
//!   are never uncommitted operations" to observe);
//! * during the run: **APP** locally only; nothing is shared;
//! * at commit: at an uninterleaved moment, check PUSH criterion (ii) on
//!   all effects (real systems approximate this with read/write sets;
//!   here the checked machine evaluates the criterion exactly), **PUSH**
//!   everything in order (criterion (i) trivial) and **CMT**;
//! * on conflict: **UNAPP** repeatedly — "needn't UNPUSH" — and retry.
//!
//! Two read-validation flavours are provided, mirroring the design space:
//! *snapshot* (reads come only from the begin-time snapshot; staleness is
//! discovered at commit, TL2-style) and *refresh* (re-pull committed
//! effects before every APP, an incremental-validation TinySTM flavour).

use std::sync::Arc;

use pushpull_core::error::MachineError;
use pushpull_core::machine::Machine;
use pushpull_core::op::ThreadId;
use pushpull_core::spec::SeqSpec;
use pushpull_core::{Code, TxnHandle};

use crate::contention::{
    default_manager, ContentionManager, ContentionState, Gate, Governor, StarvationReport,
};
use crate::driver::{ParallelSystem, SystemStats, Tick, TmSystem, Worker};
use crate::util::{is_conflict, pull_committed_lenient};

/// Read-validation flavour of the optimistic system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadPolicy {
    /// Pull committed state once at begin; validate lazily at commit
    /// (TL2-style).
    #[default]
    Snapshot,
    /// Additionally re-pull committed effects before every APP
    /// (TinySTM-style incremental validation; fewer doomed executions).
    Refresh,
}

/// Per-thread driver phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Needs its begin-time snapshot.
    Begin,
    /// Applying operations locally.
    Running,
}

/// An optimistic system over any specification.
///
/// # Examples
///
/// ```
/// use pushpull_tm::optimistic::{OptimisticSystem, ReadPolicy};
/// use pushpull_tm::driver::{Tick, TmSystem};
/// use pushpull_spec::counter::{Counter, CtrMethod};
/// use pushpull_core::lang::Code;
/// use pushpull_core::op::ThreadId;
///
/// let mut sys = OptimisticSystem::new(
///     Counter::new(),
///     vec![
///         vec![Code::method(CtrMethod::Add(1))],
///         vec![Code::method(CtrMethod::Add(1))],
///     ],
///     ReadPolicy::Snapshot,
/// );
/// while !sys.is_done() {
///     for t in 0..sys.thread_count() {
///         sys.tick(ThreadId(t))?;
///     }
/// }
/// assert_eq!(sys.stats().commits, 2);
/// # Ok::<(), pushpull_core::error::MachineError>(())
/// ```
#[derive(Debug)]
pub struct OptimisticSystem<S: SeqSpec> {
    machine: Machine<S>,
    policy: ReadPolicy,
    threads: Vec<OptThread>,
    contention: Arc<ContentionState>,
    governors: Vec<Governor>,
}

impl<S: SeqSpec> Clone for OptimisticSystem<S>
where
    Machine<S>: Clone,
{
    fn clone(&self) -> Self {
        let contention = self.contention.fork();
        let governors = contention.governors(self.threads.len());
        Self {
            machine: self.machine.clone(),
            policy: self.policy,
            threads: self.threads.clone(),
            contention,
            governors,
        }
    }
}

/// Per-thread driver state: owned by exactly one worker, so ticking never
/// contends on it.
#[derive(Debug, Clone)]
struct OptThread {
    phase: Phase,
    stats: SystemStats,
}

impl Default for OptThread {
    fn default() -> Self {
        Self {
            phase: Phase::Begin,
            stats: SystemStats::default(),
        }
    }
}

/// One optimistic tick for one thread, touching only that thread's
/// [`TxnHandle`] and driver state — the whole fast path (APP, local
/// bookkeeping) runs without any system-wide lock.
fn tick_thread<S: SeqSpec>(
    policy: ReadPolicy,
    h: &mut TxnHandle<S>,
    t: &mut OptThread,
    gov: &mut Governor,
) -> Result<Tick, MachineError> {
    match gov.gate(h) {
        Gate::Done => return Ok(Tick::Done),
        Gate::Park => {
            t.stats.blocked_ticks += 1;
            return Ok(Tick::Blocked);
        }
        Gate::Kill => return abort_thread(h, t, gov),
        Gate::Run => {}
    }
    if t.phase == Phase::Begin {
        // Begin-time snapshot: PULL all committed operations.
        pull_committed_lenient(h)?;
        t.phase = Phase::Running;
        return Ok(Tick::Progress);
    }
    // Raw stepping flattens tx/otx markers; settle first so nested
    // scopes open and merge exactly as under the settling executors.
    h.settle()?;
    // Commit as soon as CMT criterion (i) — fin(c) — holds: for
    // straight-line code that is exactly "no method remains", and it
    // terminates looping programs `(c)*` (which always offer another
    // iteration) by taking the skip branch.
    if h.can_finish()? {
        // Commit phase: PUSH everything in APP order, then CMT.
        return match h.push_all_and_commit() {
            Ok(_) => {
                t.phase = Phase::Begin;
                t.stats.commits += 1;
                gov.on_commit();
                Ok(Tick::Committed)
            }
            Err(e) if is_conflict(&e) => abort_thread(h, t, gov),
            Err(e) => Err(e),
        };
    }
    if policy == ReadPolicy::Refresh {
        pull_committed_lenient(h)?;
    }
    // Resolve program nondeterminism by taking the LAST step option —
    // `(method, continuation)` as a pair, since the same method name
    // can appear in both a loop-iteration continuation and an exit
    // continuation. `step(c₁;c₂)` lists loop-iteration continuations
    // before the continuations that exit toward the mandatory
    // remainder, so the lazy choice always makes progress toward
    // `fin`; picking the first option would iterate `(c)*` on the
    // left of a `;` forever.
    let (method, cont) = h
        .step_options()?
        .pop()
        .ok_or(MachineError::NoSuchStep(h.tid()))?;
    let ret = match h.allowed_results(&method)?.into_iter().next() {
        Some(r) => r,
        None => return abort_thread(h, t, gov), // doomed local view: retry
    };
    match h.app(method, cont, ret) {
        Ok(_) => {
            gov.on_progress();
            Ok(Tick::Progress)
        }
        Err(MachineError::NoAllowedResult(_)) => abort_thread(h, t, gov),
        Err(e) if is_conflict(&e) => abort_thread(h, t, gov),
        Err(e) => Err(e),
    }
}

fn abort_thread<S: SeqSpec>(
    h: &mut TxnHandle<S>,
    t: &mut OptThread,
    gov: &mut Governor,
) -> Result<Tick, MachineError> {
    // §6.2: "simply perform UNAPP repeatedly and needn't UNPUSH" —
    // nothing was pushed; rewinding also unpulls the stale snapshot.
    h.abort_and_retry()?;
    t.phase = Phase::Begin;
    t.stats.aborts += 1;
    gov.on_abort();
    Ok(Tick::Aborted)
}

impl<S: SeqSpec> OptimisticSystem<S> {
    /// Creates a system running `programs[i]` on thread `i` under the
    /// given read policy.
    pub fn new(spec: S, programs: Vec<Vec<Code<S::Method>>>, policy: ReadPolicy) -> Self {
        Self::with_contention(spec, programs, policy, default_manager())
    }

    /// Creates a system with an explicit contention-management policy.
    pub fn with_contention(
        spec: S,
        programs: Vec<Vec<Code<S::Method>>>,
        policy: ReadPolicy,
        cm: Arc<dyn ContentionManager>,
    ) -> Self {
        let mut machine = Machine::new(spec);
        let n = programs.len();
        for p in programs {
            machine.add_thread(p);
        }
        let contention = ContentionState::new(cm);
        let governors = contention.governors(n);
        Self {
            machine,
            policy,
            threads: vec![OptThread::default(); n],
            contention,
            governors,
        }
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Machine<S> {
        &self.machine
    }

    /// Accumulated statistics (summed over threads).
    pub fn stats(&self) -> SystemStats {
        let mut stats: SystemStats = self.threads.iter().map(|t| t.stats).sum();
        self.contention.fold_into(&mut stats);
        crate::driver::fold_machine_counters(&self.machine, &mut stats);
        stats
    }
}

impl<S: SeqSpec> TmSystem for OptimisticSystem<S> {
    fn tick(&mut self, tid: ThreadId) -> Result<Tick, MachineError> {
        tick_thread(
            self.policy,
            self.machine.handle_mut(tid)?,
            &mut self.threads[tid.0],
            &mut self.governors[tid.0],
        )
    }

    fn thread_count(&self) -> usize {
        self.machine.thread_count()
    }

    fn is_done(&self) -> bool {
        (0..self.machine.thread_count()).all(|t| {
            self.machine
                .thread(ThreadId(t))
                .map(|t| t.is_done())
                .unwrap_or(true)
        })
    }

    fn name(&self) -> &'static str {
        match self.policy {
            ReadPolicy::Snapshot => "optimistic-snapshot",
            ReadPolicy::Refresh => "optimistic-refresh",
        }
    }

    fn starvation(&self) -> Option<StarvationReport> {
        Some(self.contention.report())
    }

    crate::driver::forward_machine_hooks!();
}

impl<S> ParallelSystem for OptimisticSystem<S>
where
    S: SeqSpec + Send + Sync,
    S::Method: Send + Sync,
    S::Ret: Send + Sync,
    S::State: Send + Sync,
{
    fn workers(&mut self) -> Vec<Worker<'_>> {
        let policy = self.policy;
        self.machine
            .handles_mut()
            .iter_mut()
            .zip(self.threads.iter_mut())
            .zip(self.governors.iter_mut())
            .map(|((h, t), gov)| Box::new(move || tick_thread(policy, h, t, gov)) as Worker<'_>)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushpull_core::opacity::{check_trace, OpacityVerdict};
    use pushpull_core::serializability::check_machine;
    use pushpull_spec::counter::{Counter, CtrMethod};
    use pushpull_spec::rwmem::{Loc, MemMethod, RwMem};

    fn run_round_robin<S: SeqSpec>(sys: &mut OptimisticSystem<S>, max_ticks: usize) {
        let n = sys.thread_count();
        for i in 0..max_ticks {
            if sys.is_done() {
                return;
            }
            let _ = sys.tick(ThreadId(i % n)).unwrap();
        }
        panic!("system did not terminate within {max_ticks} ticks");
    }

    #[test]
    fn commuting_adds_commit_without_aborts() {
        let mut sys = OptimisticSystem::new(
            Counter::new(),
            vec![
                vec![Code::method(CtrMethod::Add(1))],
                vec![Code::method(CtrMethod::Add(2))],
            ],
            ReadPolicy::Snapshot,
        );
        run_round_robin(&mut sys, 1000);
        assert_eq!(sys.stats().commits, 2);
        assert_eq!(sys.stats().aborts, 0);
        assert!(check_machine(sys.machine()).is_serializable());
    }

    #[test]
    fn conflicting_reads_retry_and_stay_serializable() {
        // Both threads read then write the same location: the classic
        // lost-update workload. At most one can win each round; the other
        // must abort and retry with the fresh value.
        let prog = || {
            vec![Code::seq_all(vec![
                Code::method(MemMethod::Read(Loc(0))),
                Code::method(MemMethod::Write(Loc(0), 1)),
            ])]
        };
        let mut sys =
            OptimisticSystem::new(RwMem::new(), vec![prog(), prog()], ReadPolicy::Snapshot);
        run_round_robin(&mut sys, 4000);
        assert_eq!(sys.stats().commits, 2);
        let report = check_machine(sys.machine());
        assert!(report.is_serializable(), "{report}");
    }

    #[test]
    fn stale_snapshot_aborts_at_commit() {
        // T1 snapshots, T0 commits an inc, T1's get(=0) then fails commit
        // validation (PUSH criterion (iii)) and retries observing 1.
        let mut sys = OptimisticSystem::new(
            Counter::new(),
            vec![
                vec![Code::method(CtrMethod::Add(1))],
                vec![Code::method(CtrMethod::Get)],
            ],
            ReadPolicy::Snapshot,
        );
        // T1 snapshot + app (observes 0).
        sys.tick(ThreadId(1)).unwrap();
        sys.tick(ThreadId(1)).unwrap();
        // T0 runs to commit.
        while sys.machine().thread(ThreadId(0)).unwrap().commits() == 0 {
            sys.tick(ThreadId(0)).unwrap();
        }
        // T1 commit attempt must abort, then succeed on retry.
        let t = sys.tick(ThreadId(1)).unwrap();
        assert_eq!(t, Tick::Aborted);
        run_round_robin(&mut sys, 1000);
        assert_eq!(sys.stats().commits, 2);
        assert_eq!(sys.stats().aborts, 1);
        let report = check_machine(sys.machine());
        assert!(report.is_serializable(), "{report}");
        // The committed get observed 1.
        let committed = sys.machine().committed_txns();
        let get_txn = committed.iter().find(|t| t.thread == ThreadId(1)).unwrap();
        assert_eq!(get_txn.ops[0].ret, pushpull_spec::counter::CtrRet::Val(1));
    }

    #[test]
    fn optimistic_runs_are_opaque() {
        // §6.1: optimistic transactions never PULL uncommitted effects.
        let prog = || {
            vec![Code::seq_all(vec![
                Code::method(CtrMethod::Get),
                Code::method(CtrMethod::Add(1)),
            ])]
        };
        let mut sys =
            OptimisticSystem::new(Counter::new(), vec![prog(), prog()], ReadPolicy::Refresh);
        run_round_robin(&mut sys, 4000);
        assert_eq!(check_trace(&sys.machine().trace()), OpacityVerdict::Opaque);
        assert!(check_machine(sys.machine()).is_serializable());
    }

    #[test]
    fn refresh_policy_sees_later_commits() {
        let mut sys = OptimisticSystem::new(
            Counter::new(),
            vec![
                vec![Code::method(CtrMethod::Add(1))],
                vec![Code::method(CtrMethod::Get)],
            ],
            ReadPolicy::Refresh,
        );
        // T1 takes its snapshot first…
        sys.tick(ThreadId(1)).unwrap();
        // …then T0 commits an inc…
        while sys.machine().thread(ThreadId(0)).unwrap().commits() == 0 {
            sys.tick(ThreadId(0)).unwrap();
        }
        // …and T1's APP-time refresh pulls it in: no abort needed.
        run_round_robin(&mut sys, 1000);
        assert_eq!(sys.stats().commits, 2);
        assert_eq!(sys.stats().aborts, 0);
    }
}
