//! Small helpers shared by the algorithm drivers.

use pushpull_core::error::MachineError;
use pushpull_core::log::GlobalFlag;
use pushpull_core::op::OpId;
use pushpull_core::spec::SeqSpec;
use pushpull_core::TxnHandle;

/// Pulls every *committed* global operation not yet in the thread's local
/// log, in global-log order, skipping (rather than failing on) operations
/// whose PULL criteria do not hold — the lenient snapshot refresh drivers
/// perform before applying an operation.
///
/// A skipped operation leaves the local view behind the shared view; any
/// resulting inconsistency surfaces later as a PUSH criterion (iii)
/// failure, which the drivers treat as a conflict. Returns the number of
/// operations pulled.
///
/// Takes the thread's own [`TxnHandle`], so concurrent workers can refresh
/// their snapshots without serializing through the whole machine:
/// committed entries never leave the shared log, so the candidate list
/// stays valid even while other threads push and commit.
///
/// # Errors
///
/// Propagates only structural errors; criterion failures are skipped by
/// design.
pub fn pull_committed_lenient<S: SeqSpec>(h: &mut TxnHandle<S>) -> Result<usize, MachineError> {
    let candidates: Vec<OpId> = h
        .global_snapshot()
        .iter()
        .filter(|e| e.flag == GlobalFlag::Committed && !h.local().contains_id(e.op.id))
        .map(|e| e.op.id)
        .collect();
    let mut pulled = 0;
    for id in candidates {
        match h.pull(id) {
            Ok(()) => pulled += 1,
            Err(MachineError::Criterion(_)) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(pulled)
}

/// Is this error a criterion violation (an expected conflict, from a
/// driver's point of view)?
pub fn is_conflict(e: &MachineError) -> bool {
    e.is_criterion()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushpull_core::lang::Code;
    use pushpull_core::machine::Machine;
    use pushpull_core::toy::{CounterMethod, ToyCounter};

    #[test]
    fn lenient_pull_skips_conflicting_ops() {
        let mut m = Machine::new(ToyCounter::with_bound(4));
        let a = m.add_thread(vec![Code::method(CounterMethod::Inc)]);
        let b = m.add_thread(vec![Code::method(CounterMethod::Get)]);
        // a commits enough incs to exceed what b's local log can absorb…
        // actually: make b's local log conflict by giving it a stale get.
        let ia = m.app_auto(a).unwrap();
        m.push(a, ia).unwrap();
        m.commit(a).unwrap();
        // b observes get()=0 against its empty local view (stale).
        m.app_auto(b).unwrap();
        // Pulling a's committed inc now violates PULL (iii): b's get(=0)
        // does not move right of inc. Lenient pull skips it.
        let pulled = pull_committed_lenient(m.handle_mut(b).unwrap()).unwrap();
        assert_eq!(pulled, 0);
    }

    #[test]
    fn lenient_pull_takes_everything_when_clean() {
        let mut m = Machine::new(ToyCounter::with_bound(4));
        let a = m.add_thread(vec![Code::method(CounterMethod::Inc)]);
        let b = m.add_thread(vec![Code::method(CounterMethod::Get)]);
        let ia = m.app_auto(a).unwrap();
        m.push(a, ia).unwrap();
        m.commit(a).unwrap();
        let pulled = pull_committed_lenient(m.handle_mut(b).unwrap()).unwrap();
        assert_eq!(pulled, 1);
    }
}
