//! Pluggable contention management: *when to retry, how long to wait,
//! and when to stop being polite*.
//!
//! The §6/§7 algorithm classes differ in which rules they take after a
//! criterion fails, but every driver also needs a *liveness* policy —
//! how long to wait on a blocked rule before aborting, and how soon to
//! retry an aborted transaction. PR 1 buried that policy in per-driver
//! magic constants (a blocked-streak threshold per driver); this module
//! makes it a first-class, pluggable [`ContentionManager`] shared by all
//! ten drivers:
//!
//! * [`ImmediateRetry`] — the naive baseline: retry at once, wait
//!   forever. Reproduces the checkpoint commit livelock PR 1 patched
//!   around, so the regression tests can show the other policies resolve
//!   it.
//! * [`ExponentialBackoff`] — seeded, deterministic, *tick-based*
//!   binary exponential backoff (no wall clock anywhere: a backoff of k
//!   parks the thread for k scheduler ticks).
//! * [`KarmaAging`] — priority aging: every abort earns karma; the
//!   thread with the most karma retries immediately while the others
//!   yield to it, so long-suffering transactions win races.
//! * [`GracefulDegradation`] — the default: bounded backoff below a
//!   retry budget, then *degrade* — escalate the starving transaction to
//!   solo (irrevocable-style) execution behind a global degrade token,
//!   generalizing both the §7 HTM→boosting fallback and the blocked-
//!   streak hack.
//!
//! Drivers talk to the policy through a per-thread [`Governor`], which
//! also owns the degradation token protocol, the injected kill/stall
//! faults of the [`FaultHook`](pushpull_core::FaultHook) layer, and the
//! starvation metrics reported as [`StarvationReport`].
//!
//! ## Degradation protocol
//!
//! When the policy answers [`Recovery::Degrade`], the thread's governor
//! (whose driver has just rolled the transaction back, releasing every
//! pushed-uncommitted operation) competes for a single shared token.
//! While a degraded thread holds the token, every other thread whose
//! transaction holds no pushed-uncommitted operations *parks*; threads
//! that do hold pushed state keep running until their own policy makes
//! them give up and roll back (a [`WaitVerdict::GiveUp`] is guaranteed
//! eventually for every non-naive policy), after which they park too.
//! The degraded thread therefore converges to running alone and commits.
//! Parking is bounded by a safety valve ([`TOKEN_PARK_PATIENCE`]): a
//! parked thread that holds a driver-level resource (an abstract lock,
//! say) the degraded thread needs would otherwise deadlock the protocol.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use pushpull_core::faults::BoundaryFault;
use pushpull_core::op::ThreadId;
use pushpull_core::spec::SeqSpec;
use pushpull_core::TxnHandle;

use crate::driver::SystemStats;

/// What a thread should do after an abort, as decided by the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// Begin the retry immediately.
    Retry,
    /// Park for this many scheduler ticks before retrying.
    Backoff(u64),
    /// Escalate to degraded (solo) execution behind the degrade token.
    Degrade,
}

/// Whether a blocked thread should keep waiting or roll back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitVerdict {
    /// Stay blocked; retry the rule next tick.
    Wait,
    /// Stop waiting: abort the transaction and retry.
    GiveUp,
}

/// A contention-management policy, shared by every thread of a system.
///
/// Implementations must be deterministic functions of their inputs and
/// their own state (tick counts, never wall clocks), and `Sync` — the
/// parallel harness consults them from concurrent workers.
pub trait ContentionManager: std::fmt::Debug + Send + Sync {
    /// Short policy name (for reports and sweep labels).
    fn name(&self) -> &'static str;

    /// Called after `tid`'s `streak`-th consecutive abort (`streak ≥ 1`).
    fn after_abort(&self, tid: ThreadId, streak: u32) -> Recovery;

    /// Called after `tid` has been blocked for `blocked_streak`
    /// consecutive ticks (`blocked_streak ≥ 1`) on a rule it may
    /// legitimately give up on.
    fn on_blocked(&self, tid: ThreadId, blocked_streak: u32) -> WaitVerdict;

    /// Called when `tid` commits (for policies that age state per
    /// transaction).
    fn on_commit(&self, tid: ThreadId) {
        let _ = tid;
    }
}

/// Blocked-streak patience shared by the bounded policies: the value the
/// pre-contention-manager drivers hard-coded.
pub const DEFAULT_PATIENCE: u32 = 24;

/// Ticks a thread parked by the degrade token waits before proceeding
/// anyway — the safety valve that keeps a parked lock-holder from
/// deadlocking the degraded thread.
pub const TOKEN_PARK_PATIENCE: u32 = 64;

/// Retry immediately, wait forever: the policy every naive driver
/// implicitly had, kept as the adversarial baseline. Under symmetric
/// conflicts it livelocks (see the checkpoint regression test); the
/// harness watchdog is what catches it.
#[derive(Debug, Clone, Copy, Default)]
pub struct ImmediateRetry;

impl ContentionManager for ImmediateRetry {
    fn name(&self) -> &'static str {
        "immediate-retry"
    }

    fn after_abort(&self, _tid: ThreadId, _streak: u32) -> Recovery {
        Recovery::Retry
    }

    fn on_blocked(&self, _tid: ThreadId, _blocked_streak: u32) -> WaitVerdict {
        WaitVerdict::Wait
    }
}

/// SplitMix64: the deterministic hash behind the seeded backoff jitter.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seeded binary exponential backoff, measured in scheduler ticks. The
/// delay after the n-th consecutive abort is drawn deterministically
/// from `[1, min(cap, 2ⁿ)]` by hashing `(seed, thread, streak)` — two
/// runs with the same seed and schedule back off identically.
#[derive(Debug, Clone, Copy)]
pub struct ExponentialBackoff {
    /// Jitter seed.
    pub seed: u64,
    /// Largest window, in ticks.
    pub cap: u64,
    /// Blocked ticks tolerated before giving up.
    pub patience: u32,
}

impl ExponentialBackoff {
    /// Backoff with the given seed and default window/patience.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            cap: 256,
            patience: DEFAULT_PATIENCE,
        }
    }
}

impl ContentionManager for ExponentialBackoff {
    fn name(&self) -> &'static str {
        "exponential-backoff"
    }

    fn after_abort(&self, tid: ThreadId, streak: u32) -> Recovery {
        let window = self.cap.min(1u64 << streak.min(62));
        let jitter = splitmix64(self.seed ^ ((tid.0 as u64) << 32) ^ u64::from(streak));
        Recovery::Backoff(1 + jitter % window)
    }

    fn on_blocked(&self, _tid: ThreadId, blocked_streak: u32) -> WaitVerdict {
        if blocked_streak >= self.patience {
            WaitVerdict::GiveUp
        } else {
            WaitVerdict::Wait
        }
    }
}

/// Karma/priority aging: every abort earns the thread one karma point;
/// on each abort the thread with the (weakly) highest karma retries
/// immediately while poorer threads back off in proportion to their
/// karma deficit, so the longest-suffering transaction wins the next
/// race. Karma resets on commit.
#[derive(Debug)]
pub struct KarmaAging {
    karma: Mutex<Vec<u64>>,
    /// Blocked ticks tolerated before giving up.
    pub patience: u32,
}

impl KarmaAging {
    /// A fresh karma table.
    pub fn new() -> Self {
        Self {
            karma: Mutex::new(Vec::new()),
            patience: DEFAULT_PATIENCE,
        }
    }

    fn with_slot<R>(&self, tid: ThreadId, f: impl FnOnce(&mut Vec<u64>) -> R) -> R {
        let mut k = self.karma.lock().expect("karma table poisoned");
        if k.len() <= tid.0 {
            k.resize(tid.0 + 1, 0);
        }
        f(&mut k)
    }
}

impl Default for KarmaAging {
    fn default() -> Self {
        Self::new()
    }
}

impl ContentionManager for KarmaAging {
    fn name(&self) -> &'static str {
        "karma-aging"
    }

    fn after_abort(&self, tid: ThreadId, _streak: u32) -> Recovery {
        self.with_slot(tid, |k| {
            k[tid.0] += 1;
            let richest = k.iter().copied().max().unwrap_or(0);
            let deficit = richest - k[tid.0];
            if deficit == 0 {
                Recovery::Retry
            } else {
                Recovery::Backoff(deficit.min(64))
            }
        })
    }

    fn on_blocked(&self, _tid: ThreadId, blocked_streak: u32) -> WaitVerdict {
        if blocked_streak >= self.patience {
            WaitVerdict::GiveUp
        } else {
            WaitVerdict::Wait
        }
    }

    fn on_commit(&self, tid: ThreadId) {
        self.with_slot(tid, |k| k[tid.0] = 0);
    }
}

/// The default policy: bounded backoff below a retry budget, then
/// escalate the starving transaction to degraded (solo) execution — the
/// §7 "fall back from HTM to something that cannot lose" move,
/// generalized to every driver.
#[derive(Debug, Clone, Copy)]
pub struct GracefulDegradation {
    /// Consecutive aborts tolerated before degrading.
    pub retry_budget: u32,
    /// Blocked ticks tolerated before giving up.
    pub patience: u32,
}

impl GracefulDegradation {
    /// The default budget/patience.
    pub fn new() -> Self {
        Self {
            retry_budget: 8,
            patience: DEFAULT_PATIENCE,
        }
    }
}

impl Default for GracefulDegradation {
    fn default() -> Self {
        Self::new()
    }
}

impl ContentionManager for GracefulDegradation {
    fn name(&self) -> &'static str {
        "graceful-degradation"
    }

    fn after_abort(&self, _tid: ThreadId, streak: u32) -> Recovery {
        if streak >= self.retry_budget {
            Recovery::Degrade
        } else {
            Recovery::Backoff(u64::from(streak.min(4)))
        }
    }

    fn on_blocked(&self, _tid: ThreadId, blocked_streak: u32) -> WaitVerdict {
        if blocked_streak >= self.patience {
            WaitVerdict::GiveUp
        } else {
            WaitVerdict::Wait
        }
    }
}

/// The policy every driver runs unless told otherwise.
pub fn default_manager() -> Arc<dyn ContentionManager> {
    Arc::new(GracefulDegradation::default())
}

// ---------------------------------------------------------------------
// The transport side of the policy seam: the same tuned policies that
// govern abort-retry waiting also govern transport-retry waiting.
// ---------------------------------------------------------------------

/// [`ExponentialBackoff`] doubles as a transport
/// [`RetryBackoff`](pushpull_core::RetryBackoff): delivery attempt `k`
/// waits exactly what the `k`-th consecutive abort would have — same
/// seed, same jitter, same windows — so a sweep tuning one policy tunes
/// both.
impl pushpull_core::RetryBackoff for ExponentialBackoff {
    fn backoff_ticks(&self, tid: ThreadId, attempt: u32) -> u64 {
        match self.after_abort(tid, attempt) {
            Recovery::Backoff(ticks) => ticks.max(1),
            Recovery::Retry => 1,
            Recovery::Degrade => self.cap,
        }
    }
}

/// Adapts *any* [`ContentionManager`] to the transport
/// [`RetryBackoff`](pushpull_core::RetryBackoff) seam, so all four
/// policies (immediate, exponential, karma, graceful-degradation) can
/// pace transport retries. `Retry` maps to the minimum wait (1 tick),
/// `Backoff(t)` to `t` ticks, and `Degrade` to the full 256-tick window
/// (the transport has its own degradation ladder past the retry budget,
/// so the policy's escalation becomes its longest patience here).
///
/// Stateful policies see transport retries through the same
/// `after_abort` entry point as real aborts — under [`KarmaAging`],
/// retrying against a flaky shard earns karma exactly like losing a
/// conflict race does, which is the intended fairness coupling.
pub struct CmBackoff {
    cm: Arc<dyn ContentionManager>,
}

impl CmBackoff {
    /// Wraps a contention policy for transport use.
    pub fn new(cm: Arc<dyn ContentionManager>) -> Self {
        Self { cm }
    }
}

impl std::fmt::Debug for CmBackoff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CmBackoff")
            .field("policy", &self.cm.name())
            .finish()
    }
}

impl pushpull_core::RetryBackoff for CmBackoff {
    fn backoff_ticks(&self, tid: ThreadId, attempt: u32) -> u64 {
        match self.cm.after_abort(tid, attempt) {
            Recovery::Backoff(ticks) => ticks.max(1),
            Recovery::Retry => 1,
            Recovery::Degrade => 256,
        }
    }
}

/// Starvation metrics accumulated by a system's governors.
#[derive(Debug, Clone, PartialEq)]
pub struct StarvationReport {
    /// The longest run of consecutive aborts any single thread suffered.
    pub max_consecutive_aborts: u64,
    /// 99th percentile of aborts-before-commit over committed
    /// transactions (0 when nothing committed).
    pub p99_retries_to_commit: f64,
    /// Transactions escalated to degraded execution.
    pub degradations: u64,
    /// Committed transactions sampled for the percentile.
    pub commits_sampled: usize,
}

#[derive(Debug, Default)]
struct MetricsInner {
    retries_to_commit: Vec<u32>,
    max_consecutive_aborts: u64,
    degradations: u64,
}

/// The per-system half of contention management: the policy, the
/// degrade token and the starvation metrics, shared by every thread's
/// [`Governor`] through an `Arc`.
#[derive(Debug)]
pub struct ContentionState {
    cm: Arc<dyn ContentionManager>,
    /// Degrade token: 0 when free, `tid + 1` when held.
    token: AtomicUsize,
    metrics: Mutex<MetricsInner>,
}

impl ContentionState {
    /// Fresh shared state running `cm`.
    pub fn new(cm: Arc<dyn ContentionManager>) -> Arc<Self> {
        Arc::new(Self {
            cm,
            token: AtomicUsize::new(0),
            metrics: Mutex::new(MetricsInner::default()),
        })
    }

    /// The policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.cm.name()
    }

    /// One governor per model thread.
    pub fn governors(self: &Arc<Self>, n: usize) -> Vec<Governor> {
        (0..n).map(|t| Governor::new(self, ThreadId(t))).collect()
    }

    /// A fresh state (same policy, zeroed token and metrics) for system
    /// clones, which must share nothing with the original.
    pub fn fork(&self) -> Arc<Self> {
        Self::new(Arc::clone(&self.cm))
    }

    /// The accumulated starvation metrics.
    pub fn report(&self) -> StarvationReport {
        let m = self.metrics.lock().expect("contention metrics poisoned");
        let mut samples = m.retries_to_commit.clone();
        samples.sort_unstable();
        let p99 = if samples.is_empty() {
            0.0
        } else {
            let idx = ((samples.len() - 1) as f64 * 0.99).ceil() as usize;
            f64::from(samples[idx])
        };
        StarvationReport {
            max_consecutive_aborts: m.max_consecutive_aborts,
            p99_retries_to_commit: p99,
            degradations: m.degradations,
            commits_sampled: samples.len(),
        }
    }

    /// Folds the starvation counters into a stats value (drivers call
    /// this from their `stats()`).
    pub fn fold_into(&self, stats: &mut SystemStats) {
        let r = self.report();
        stats.degradations = r.degradations;
        stats.max_abort_streak = r.max_consecutive_aborts;
    }
}

/// What the governor decides a thread should do this tick, before the
/// driver runs any rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// The thread has no transactions left.
    Done,
    /// Park this tick (backoff, injected stall, or yielding to a
    /// degraded thread); report `Tick::Blocked`.
    Park,
    /// An injected fault killed the transaction: the driver must roll it
    /// back through its own abort path.
    Kill,
    /// Run the tick normally.
    Run,
}

/// The per-thread half of contention management. Drivers call
/// [`Governor::gate`] at the top of every tick, [`Governor::on_abort`]
/// from their abort paths, [`Governor::on_blocked`] from their wait
/// paths, and [`Governor::on_commit`] after a commit.
#[derive(Debug)]
pub struct Governor {
    shared: Arc<ContentionState>,
    tid: ThreadId,
    /// Consecutive aborts (reset on commit).
    streak: u32,
    /// Consecutive blocked ticks (reset on progress/abort/commit).
    blocked_streak: u32,
    /// Aborts since the last commit.
    retries: u32,
    /// Remaining backoff ticks.
    backoff: u64,
    /// Remaining injected-stall ticks.
    stall: u64,
    /// Ticks spent parked waiting on another thread's degrade token.
    parked: u32,
    /// This thread decided to degrade and is competing for the token.
    degrade_pending: bool,
    /// This thread holds the degrade token.
    degraded: bool,
}

impl Governor {
    fn new(shared: &Arc<ContentionState>, tid: ThreadId) -> Self {
        Self {
            shared: Arc::clone(shared),
            tid,
            streak: 0,
            blocked_streak: 0,
            retries: 0,
            backoff: 0,
            stall: 0,
            parked: 0,
            degrade_pending: false,
            degraded: false,
        }
    }

    /// The shared contention state this governor reports to.
    pub fn shared(&self) -> &Arc<ContentionState> {
        &self.shared
    }

    /// Is this thread currently running degraded (token held)?
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    fn token_ticket(&self) -> usize {
        self.tid.0 + 1
    }

    fn release_token(&mut self) {
        if self.degraded {
            self.degraded = false;
            let _ = self.shared.token.compare_exchange(
                self.token_ticket(),
                0,
                Ordering::AcqRel,
                Ordering::Relaxed,
            );
        }
        self.degrade_pending = false;
    }

    /// Decides this tick before the driver runs any rule: counts down
    /// backoff and injected stalls, fires injected kill/stall faults at
    /// the rule boundary, and runs the degrade-token protocol.
    pub fn gate<S: SeqSpec>(&mut self, h: &TxnHandle<S>) -> Gate {
        if h.is_done() {
            self.release_token();
            return Gate::Done;
        }
        if self.stall > 0 {
            self.stall -= 1;
            return Gate::Park;
        }
        if self.backoff > 0 {
            self.backoff -= 1;
            return Gate::Park;
        }
        match h.fault_at_boundary() {
            Some(BoundaryFault::Kill) => return Gate::Kill,
            Some(BoundaryFault::Stall(k)) => {
                self.stall = k;
                if self.stall > 0 {
                    self.stall -= 1;
                    return Gate::Park;
                }
            }
            None => {}
        }
        if self.degrade_pending {
            let claimed = self
                .shared
                .token
                .compare_exchange(0, self.token_ticket(), Ordering::AcqRel, Ordering::Relaxed)
                .is_ok();
            if claimed {
                self.degrade_pending = false;
                self.degraded = true;
            } else {
                return Gate::Park;
            }
        }
        if !self.degraded {
            let holder = self.shared.token.load(Ordering::Acquire);
            let has_pushed = h.local().iter().any(|e| e.flag.is_pushed());
            if holder != 0 && !has_pushed {
                // Yield to the degraded thread — but never forever: a
                // parked thread may hold a driver-level lock the
                // degraded thread needs.
                self.parked += 1;
                if self.parked <= TOKEN_PARK_PATIENCE {
                    return Gate::Park;
                }
            }
        }
        self.parked = 0;
        Gate::Run
    }

    /// Records an abort and applies the policy's recovery decision.
    /// Call from the driver's abort path, *after* the transaction has
    /// been rolled back (so pushed-uncommitted state is released before
    /// any degradation parks other threads).
    pub fn on_abort(&mut self) {
        self.streak += 1;
        self.retries += 1;
        self.blocked_streak = 0;
        {
            let mut m = self
                .shared
                .metrics
                .lock()
                .expect("contention metrics poisoned");
            m.max_consecutive_aborts = m.max_consecutive_aborts.max(u64::from(self.streak));
        }
        if self.degraded {
            // Already running solo; keep the token and retry at once.
            return;
        }
        match self.shared.cm.after_abort(self.tid, self.streak) {
            Recovery::Retry => {}
            Recovery::Backoff(ticks) => self.backoff = ticks,
            Recovery::Degrade => {
                if !self.degrade_pending {
                    self.degrade_pending = true;
                    self.shared
                        .metrics
                        .lock()
                        .expect("contention metrics poisoned")
                        .degradations += 1;
                }
            }
        }
    }

    /// Records one blocked tick and asks the policy whether to keep
    /// waiting. On [`WaitVerdict::GiveUp`] the driver must roll the
    /// transaction back through its abort path.
    pub fn on_blocked(&mut self) -> WaitVerdict {
        self.blocked_streak += 1;
        self.shared.cm.on_blocked(self.tid, self.blocked_streak)
    }

    /// Records rule progress (resets the blocked streak).
    pub fn on_progress(&mut self) {
        self.blocked_streak = 0;
    }

    /// Records a commit: samples retries-to-commit, resets the streaks
    /// and releases the degrade token.
    pub fn on_commit(&mut self) {
        {
            let mut m = self
                .shared
                .metrics
                .lock()
                .expect("contention metrics poisoned");
            m.retries_to_commit.push(self.retries);
        }
        self.shared.cm.on_commit(self.tid);
        self.streak = 0;
        self.blocked_streak = 0;
        self.retries = 0;
        self.release_token();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_retry_never_yields() {
        let cm = ImmediateRetry;
        assert_eq!(cm.after_abort(ThreadId(0), 1000), Recovery::Retry);
        assert_eq!(cm.on_blocked(ThreadId(0), 1000), WaitVerdict::Wait);
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_growing() {
        let cm = ExponentialBackoff::new(42);
        for streak in 1..20 {
            let Recovery::Backoff(a) = cm.after_abort(ThreadId(3), streak) else {
                panic!("backoff policy must back off");
            };
            let Recovery::Backoff(b) = cm.after_abort(ThreadId(3), streak) else {
                panic!()
            };
            assert_eq!(a, b, "same inputs, same delay");
            assert!(a >= 1 && a <= cm.cap);
        }
        // Different seeds decorrelate the jitter.
        let other = ExponentialBackoff::new(43);
        let delays = |cm: &ExponentialBackoff| -> Vec<Recovery> {
            (1..12).map(|s| cm.after_abort(ThreadId(0), s)).collect()
        };
        assert_ne!(delays(&cm), delays(&other));
        assert_eq!(
            cm.on_blocked(ThreadId(0), DEFAULT_PATIENCE),
            WaitVerdict::GiveUp
        );
    }

    #[test]
    fn karma_prioritizes_the_long_sufferer() {
        let cm = KarmaAging::new();
        // Thread 0 aborts three times, thread 1 once: thread 0 is now
        // richest and retries immediately; thread 1 must yield.
        for _ in 0..3 {
            cm.after_abort(ThreadId(0), 1);
        }
        assert_eq!(cm.after_abort(ThreadId(1), 1), Recovery::Backoff(2));
        assert_eq!(cm.after_abort(ThreadId(0), 4), Recovery::Retry);
        // Commit resets the winner's karma; the other thread catches up.
        cm.on_commit(ThreadId(0));
        assert_eq!(cm.after_abort(ThreadId(1), 2), Recovery::Retry);
    }

    #[test]
    fn degradation_fires_at_the_budget() {
        let cm = GracefulDegradation::new();
        let b = cm.retry_budget;
        assert!(matches!(
            cm.after_abort(ThreadId(0), b - 1),
            Recovery::Backoff(_)
        ));
        assert_eq!(cm.after_abort(ThreadId(0), b), Recovery::Degrade);
    }

    #[test]
    fn governor_token_protocol_is_exclusive() {
        let state = ContentionState::new(Arc::new(GracefulDegradation::new()));
        let mut govs = state.governors(2);
        // Simulate both threads deciding to degrade.
        for g in &mut govs {
            for _ in 0..GracefulDegradation::new().retry_budget {
                g.on_abort();
            }
        }
        assert!(govs[0].degrade_pending && govs[1].degrade_pending);
        assert_eq!(state.report().degradations, 2);
        // First claimer wins the token; the second must keep pending.
        assert!(state
            .token
            .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok());
        assert!(state
            .token
            .compare_exchange(0, 2, Ordering::AcqRel, Ordering::Relaxed)
            .is_err());
    }

    #[test]
    fn report_percentile_and_fork() {
        let state = ContentionState::new(Arc::new(ImmediateRetry));
        let mut g = state.governors(1).remove(0);
        for retries in [0u32, 0, 1, 9] {
            for _ in 0..retries {
                g.on_abort();
            }
            g.on_commit();
        }
        let r = state.report();
        assert_eq!(r.commits_sampled, 4);
        assert_eq!(r.max_consecutive_aborts, 9);
        assert_eq!(r.p99_retries_to_commit, 9.0);
        // A fork shares the policy but none of the counters.
        assert_eq!(state.fork().report().commits_sampled, 0);
    }

    #[test]
    fn transport_backoff_bridge_matches_abort_policy() {
        use pushpull_core::RetryBackoff;
        let policy = ExponentialBackoff::new(42);
        for tid in 0..3usize {
            for attempt in 0..8u32 {
                let expect = match policy.after_abort(ThreadId(tid), attempt) {
                    Recovery::Backoff(t) => t.max(1),
                    Recovery::Retry => 1,
                    Recovery::Degrade => policy.cap,
                };
                assert_eq!(policy.backoff_ticks(ThreadId(tid), attempt), expect);
                // Windows stay bounded by the policy cap.
                assert!(policy.backoff_ticks(ThreadId(tid), attempt) <= policy.cap.max(1));
            }
        }
        // The erased adapter maps every verdict to a positive wait.
        let karma = CmBackoff::new(Arc::new(KarmaAging::default()));
        let eager = CmBackoff::new(Arc::new(ImmediateRetry));
        for attempt in 0..8u32 {
            assert!(karma.backoff_ticks(ThreadId(0), attempt) >= 1);
            assert_eq!(eager.backoff_ticks(ThreadId(0), attempt), 1);
        }
        assert!(format!("{karma:?}").contains("karma"));
    }
}
