//! Strict two-phase locking over read/write memory — the lock-based
//! atomic sections the paper cites as pessimistic \[4\] (Cherem, Chilimbi
//! & Gulwani: inferring locks for atomic sections), §6.3's family.
//!
//! Rule pattern: acquire the location's lock in the right mode
//! (shared for reads — readers run in parallel, the refinement
//! exclusive-keyed boosting cannot express), then **APP;PUSH** eagerly;
//! locks are held to CMT (strictness); deadlocks abort (UNPUSH;UNAPP).
//!
//! Because reads hold shared locks, a pushed `Read` can still meet a
//! foreign uncommitted `Read` of the same location in PUSH criterion
//! (ii) — reads move across reads, so the criterion holds; writes never
//! meet anything, the exclusive lock fenced them. The audit tests verify
//! this pattern: a 2PL run discharges PUSH obligations but never
//! violates one.

use std::sync::{Arc, Mutex};

use pushpull_core::error::MachineError;
use pushpull_core::machine::Machine;
use pushpull_core::op::ThreadId;
use pushpull_core::{Code, TxnHandle};
use pushpull_ds::rwlocks::{Mode, RwLockTable, RwOutcome};
use pushpull_spec::rwmem::{Loc, MemMethod, RwMem};

use crate::contention::{
    default_manager, ContentionManager, ContentionState, Gate, Governor, StarvationReport,
    WaitVerdict,
};
use crate::driver::{ParallelSystem, SystemStats, Tick, TmSystem, Worker};
use crate::util::{is_conflict, pull_committed_lenient};

/// A strict two-phase-locking system over [`RwMem`].
///
/// # Examples
///
/// ```
/// use pushpull_tm::twophase::TwoPhaseLocking;
/// use pushpull_tm::driver::TmSystem;
/// use pushpull_spec::rwmem::{MemMethod, Loc};
/// use pushpull_core::lang::Code;
/// use pushpull_core::op::ThreadId;
///
/// let mut sys = TwoPhaseLocking::new(vec![
///     vec![Code::method(MemMethod::Read(Loc(0)))],
///     vec![Code::method(MemMethod::Read(Loc(0)))], // readers share
/// ]);
/// while !sys.is_done() {
///     for t in 0..sys.thread_count() {
///         sys.tick(ThreadId(t))?;
///     }
/// }
/// assert_eq!(sys.stats().commits, 2);
/// assert_eq!(sys.stats().blocked_ticks, 0, "shared reads never block");
/// # Ok::<(), pushpull_core::error::MachineError>(())
/// ```
#[derive(Debug)]
pub struct TwoPhaseLocking {
    machine: Machine<RwMem>,
    /// The shared lock table — the algorithm's only cross-thread state,
    /// behind a short-held mutex.
    locks: Mutex<RwLockTable<Loc>>,
    threads: Vec<TplThread>,
    contention: Arc<ContentionState>,
    governors: Vec<Governor>,
}

/// Per-thread driver state, owned by exactly one worker.
#[derive(Debug, Clone, Default)]
struct TplThread {
    stats: SystemStats,
}

fn abort_thread(
    locks: &Mutex<RwLockTable<Loc>>,
    h: &mut TxnHandle<RwMem>,
    t: &mut TplThread,
    gov: &mut Governor,
) -> Result<Tick, MachineError> {
    let txn = h.txn();
    h.abort_and_retry()?;
    locks.lock().expect("lock table poisoned").release_all(txn);
    t.stats.aborts += 1;
    gov.on_abort();
    Ok(Tick::Aborted)
}

fn blocked_thread(
    locks: &Mutex<RwLockTable<Loc>>,
    h: &mut TxnHandle<RwMem>,
    t: &mut TplThread,
    gov: &mut Governor,
) -> Result<Tick, MachineError> {
    t.stats.blocked_ticks += 1;
    match gov.on_blocked() {
        WaitVerdict::GiveUp => abort_thread(locks, h, t, gov),
        WaitVerdict::Wait => Ok(Tick::Blocked),
    }
}

/// One 2PL tick for one thread: the lock table is consulted briefly per
/// access; APP runs on the thread's own handle with no system-wide lock.
fn tick_thread(
    locks: &Mutex<RwLockTable<Loc>>,
    h: &mut TxnHandle<RwMem>,
    t: &mut TplThread,
    gov: &mut Governor,
) -> Result<Tick, MachineError> {
    match gov.gate(h) {
        Gate::Done => return Ok(Tick::Done),
        Gate::Park => {
            t.stats.blocked_ticks += 1;
            return Ok(Tick::Blocked);
        }
        Gate::Kill => return abort_thread(locks, h, t, gov),
        Gate::Run => {}
    }
    let txn = h.txn();
    let options = h.step_options()?;
    if options.is_empty() {
        let committed = match h.commit() {
            Ok(committed) => committed,
            // Natural CMT failures cannot happen (everything was pushed
            // under locks); an injected denial aborts like a deadlock.
            Err(e) if is_conflict(&e) => return abort_thread(locks, h, t, gov),
            Err(e) => return Err(e),
        };
        locks
            .lock()
            .expect("lock table poisoned")
            .release_all(committed);
        t.stats.commits += 1;
        gov.on_commit();
        return Ok(Tick::Committed);
    }
    let method = options[0].0;
    let (loc, mode) = match method {
        MemMethod::Read(l) => (l, Mode::Shared),
        MemMethod::Write(l, _) => (l, Mode::Exclusive),
    };
    // Bind the outcome first: matching on the locked expression would
    // hold the guard across the abort path and self-deadlock.
    let outcome = locks
        .lock()
        .expect("lock table poisoned")
        .try_lock(txn, loc, mode);
    match outcome {
        RwOutcome::Granted => {}
        RwOutcome::Busy { .. } => return blocked_thread(locks, h, t, gov),
        RwOutcome::WouldDeadlock => return abort_thread(locks, h, t, gov),
    }
    // Lock held: refresh committed view, then APP;PUSH eagerly.
    pull_committed_lenient(h)?;
    let op = match h.app_method(&method) {
        Ok(op) => op,
        Err(MachineError::NoAllowedResult(_)) => return abort_thread(locks, h, t, gov),
        Err(e) if is_conflict(&e) => return abort_thread(locks, h, t, gov),
        Err(e) => return Err(e),
    };
    match h.push(op) {
        Ok(()) => {
            gov.on_progress();
            Ok(Tick::Progress)
        }
        Err(e) if is_conflict(&e) => {
            // Shared-read vs shared-read pushes always commute, so
            // this only fires for exotic interleavings the lock order
            // didn't cover; treat as a wait.
            h.unapp()?;
            blocked_thread(locks, h, t, gov)
        }
        Err(e) => Err(e),
    }
}

impl TwoPhaseLocking {
    /// Creates a system running `programs[i]` on thread `i` under the
    /// default contention manager.
    pub fn new(programs: Vec<Vec<Code<MemMethod>>>) -> Self {
        Self::with_contention(programs, default_manager())
    }

    /// Creates a system with an explicit contention-management policy.
    pub fn with_contention(
        programs: Vec<Vec<Code<MemMethod>>>,
        cm: Arc<dyn ContentionManager>,
    ) -> Self {
        let mut machine = Machine::new(RwMem::new());
        let n = programs.len();
        for p in programs {
            machine.add_thread(p);
        }
        let contention = ContentionState::new(cm);
        let governors = contention.governors(n);
        Self {
            machine,
            locks: Mutex::new(RwLockTable::new()),
            threads: vec![TplThread::default(); n],
            contention,
            governors,
        }
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Machine<RwMem> {
        &self.machine
    }

    /// Accumulated statistics (summed over threads).
    pub fn stats(&self) -> SystemStats {
        let mut stats: SystemStats = self.threads.iter().map(|t| t.stats).sum();
        self.contention.fold_into(&mut stats);
        crate::driver::fold_machine_counters(&self.machine, &mut stats);
        stats
    }
}

impl Clone for TwoPhaseLocking {
    fn clone(&self) -> Self {
        let contention = self.contention.fork();
        let governors = contention.governors(self.threads.len());
        Self {
            machine: self.machine.clone(),
            locks: Mutex::new(self.locks.lock().expect("lock table poisoned").clone()),
            threads: self.threads.clone(),
            contention,
            governors,
        }
    }
}

impl TmSystem for TwoPhaseLocking {
    fn tick(&mut self, tid: ThreadId) -> Result<Tick, MachineError> {
        tick_thread(
            &self.locks,
            self.machine.handle_mut(tid)?,
            &mut self.threads[tid.0],
            &mut self.governors[tid.0],
        )
    }

    fn thread_count(&self) -> usize {
        self.machine.thread_count()
    }

    fn is_done(&self) -> bool {
        (0..self.machine.thread_count()).all(|t| {
            self.machine
                .thread(ThreadId(t))
                .map(|t| t.is_done())
                .unwrap_or(true)
        })
    }

    fn name(&self) -> &'static str {
        "two-phase-locking"
    }

    fn starvation(&self) -> Option<StarvationReport> {
        Some(self.contention.report())
    }

    crate::driver::forward_machine_hooks!();
}

impl ParallelSystem for TwoPhaseLocking {
    fn workers(&mut self) -> Vec<Worker<'_>> {
        let locks = &self.locks;
        self.machine
            .handles_mut()
            .iter_mut()
            .zip(self.threads.iter_mut())
            .zip(self.governors.iter_mut())
            .map(|((h, t), gov)| Box::new(move || tick_thread(locks, h, t, gov)) as Worker<'_>)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushpull_core::error::{Clause, Rule};
    use pushpull_core::opacity::{check_trace, OpacityVerdict};
    use pushpull_core::serializability::check_machine;

    fn run_round_robin(sys: &mut TwoPhaseLocking, max_ticks: usize) {
        let n = sys.thread_count();
        for i in 0..max_ticks {
            if sys.is_done() {
                return;
            }
            let _ = sys.tick(ThreadId(i % n)).unwrap();
        }
        panic!("system did not terminate within {max_ticks} ticks");
    }

    fn rmw(l: u32, v: i64) -> Vec<Code<MemMethod>> {
        vec![Code::seq_all(vec![
            Code::method(MemMethod::Read(Loc(l))),
            Code::method(MemMethod::Write(Loc(l), v)),
        ])]
    }

    #[test]
    fn readers_run_in_parallel() {
        let prog = || vec![Code::method(MemMethod::Read(Loc(0)))];
        let mut sys = TwoPhaseLocking::new(vec![prog(), prog(), prog()]);
        run_round_robin(&mut sys, 1000);
        assert_eq!(sys.stats().commits, 3);
        assert_eq!(sys.stats().blocked_ticks, 0);
        assert_eq!(sys.stats().aborts, 0);
        assert!(check_machine(sys.machine()).is_serializable());
    }

    #[test]
    fn writers_serialize_and_never_violate_push_criteria() {
        let mut sys = TwoPhaseLocking::new(vec![rmw(0, 1), rmw(0, 2)]);
        run_round_robin(&mut sys, 4000);
        assert_eq!(sys.stats().commits, 2);
        assert!(
            sys.stats().blocked_ticks > 0,
            "second RMW must wait on the lock"
        );
        let audit = sys.machine().audit();
        assert_eq!(audit.violated_count(Rule::Push, Clause::Ii), 0);
        assert_eq!(audit.violated_count(Rule::Push, Clause::Iii), 0);
        assert!(check_machine(sys.machine()).is_serializable());
    }

    #[test]
    fn upgrade_deadlock_breaks_via_abort() {
        // Both threads read loc 0 then write it: shared-then-upgrade is
        // the classic conversion deadlock; one must abort.
        let mut sys = TwoPhaseLocking::new(vec![rmw(0, 1), rmw(0, 2)]);
        // Interleave the reads first.
        sys.tick(ThreadId(0)).unwrap();
        sys.tick(ThreadId(1)).unwrap();
        run_round_robin(&mut sys, 4000);
        assert_eq!(sys.stats().commits, 2);
        assert!(
            sys.stats().aborts >= 1,
            "conversion deadlock must abort someone"
        );
        assert!(check_machine(sys.machine()).is_serializable());
    }

    #[test]
    fn runs_are_opaque() {
        let mut sys = TwoPhaseLocking::new(vec![rmw(0, 1), rmw(1, 2)]);
        run_round_robin(&mut sys, 2000);
        assert_eq!(check_trace(&sys.machine().trace()), OpacityVerdict::Opaque);
    }

    #[test]
    fn random_interleavings_serializable() {
        for seed in 1..=15u64 {
            let mut state = seed;
            let mut sys = TwoPhaseLocking::new(vec![rmw(0, 1), rmw(1, 2), rmw(0, 3)]);
            let mut ticks = 0;
            while !sys.is_done() {
                let mut x = state.max(1);
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                state = x;
                sys.tick(ThreadId((x % 3) as usize)).unwrap();
                ticks += 1;
                assert!(ticks < 1_000_000, "seed {seed} diverged");
            }
            assert_eq!(sys.stats().commits, 3, "seed {seed}");
            assert!(
                check_machine(sys.machine()).is_serializable(),
                "seed {seed}"
            );
        }
    }
}
