//! Strict two-phase locking over read/write memory — the lock-based
//! atomic sections the paper cites as pessimistic \[4\] (Cherem, Chilimbi
//! & Gulwani: inferring locks for atomic sections), §6.3's family.
//!
//! Rule pattern: acquire the location's lock in the right mode
//! (shared for reads — readers run in parallel, the refinement
//! exclusive-keyed boosting cannot express), then **APP;PUSH** eagerly;
//! locks are held to CMT (strictness); deadlocks abort (UNPUSH;UNAPP).
//!
//! Because reads hold shared locks, a pushed `Read` can still meet a
//! foreign uncommitted `Read` of the same location in PUSH criterion
//! (ii) — reads move across reads, so the criterion holds; writes never
//! meet anything, the exclusive lock fenced them. The audit tests verify
//! this pattern: a 2PL run discharges PUSH obligations but never
//! violates one.

use pushpull_core::error::MachineError;
use pushpull_core::machine::Machine;
use pushpull_core::op::ThreadId;
use pushpull_core::Code;
use pushpull_ds::rwlocks::{Mode, RwLockTable, RwOutcome};
use pushpull_spec::rwmem::{Loc, MemMethod, RwMem};

use crate::driver::{SystemStats, Tick, TmSystem};
use crate::util::{is_conflict, pull_committed_lenient};

/// Consecutive blocked ticks tolerated before aborting.
const BLOCK_ABORT_THRESHOLD: u32 = 24;

/// A strict two-phase-locking system over [`RwMem`].
///
/// # Examples
///
/// ```
/// use pushpull_tm::twophase::TwoPhaseLocking;
/// use pushpull_tm::driver::TmSystem;
/// use pushpull_spec::rwmem::{MemMethod, Loc};
/// use pushpull_core::lang::Code;
/// use pushpull_core::op::ThreadId;
///
/// let mut sys = TwoPhaseLocking::new(vec![
///     vec![Code::method(MemMethod::Read(Loc(0)))],
///     vec![Code::method(MemMethod::Read(Loc(0)))], // readers share
/// ]);
/// while !sys.is_done() {
///     for t in 0..sys.thread_count() {
///         sys.tick(ThreadId(t))?;
///     }
/// }
/// assert_eq!(sys.stats().commits, 2);
/// assert_eq!(sys.stats().blocked_ticks, 0, "shared reads never block");
/// # Ok::<(), pushpull_core::error::MachineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TwoPhaseLocking {
    machine: Machine<RwMem>,
    locks: RwLockTable<Loc>,
    blocked_streak: Vec<u32>,
    stats: SystemStats,
}

impl TwoPhaseLocking {
    /// Creates a system running `programs[i]` on thread `i`.
    pub fn new(programs: Vec<Vec<Code<MemMethod>>>) -> Self {
        let mut machine = Machine::new(RwMem::new());
        let n = programs.len();
        for p in programs {
            machine.add_thread(p);
        }
        Self {
            machine,
            locks: RwLockTable::new(),
            blocked_streak: vec![0; n],
            stats: SystemStats::default(),
        }
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Machine<RwMem> {
        &self.machine
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> SystemStats {
        self.stats
    }

    fn abort(&mut self, tid: ThreadId) -> Result<Tick, MachineError> {
        let txn = self.machine.thread(tid)?.txn();
        self.machine.abort_and_retry(tid)?;
        self.locks.release_all(txn);
        self.blocked_streak[tid.0] = 0;
        self.stats.aborts += 1;
        Ok(Tick::Aborted)
    }

    fn blocked(&mut self, tid: ThreadId) -> Result<Tick, MachineError> {
        self.blocked_streak[tid.0] += 1;
        self.stats.blocked_ticks += 1;
        if self.blocked_streak[tid.0] >= BLOCK_ABORT_THRESHOLD {
            return self.abort(tid);
        }
        Ok(Tick::Blocked)
    }
}

impl TmSystem for TwoPhaseLocking {
    fn tick(&mut self, tid: ThreadId) -> Result<Tick, MachineError> {
        if self.machine.thread(tid)?.is_done() {
            return Ok(Tick::Done);
        }
        let txn = self.machine.thread(tid)?.txn();
        let options = self.machine.step_options(tid)?;
        if options.is_empty() {
            let committed = self.machine.commit(tid)?;
            self.locks.release_all(committed);
            self.blocked_streak[tid.0] = 0;
            self.stats.commits += 1;
            return Ok(Tick::Committed);
        }
        let method = options[0].0;
        let (loc, mode) = match method {
            MemMethod::Read(l) => (l, Mode::Shared),
            MemMethod::Write(l, _) => (l, Mode::Exclusive),
        };
        match self.locks.try_lock(txn, loc, mode) {
            RwOutcome::Granted => {}
            RwOutcome::Busy { .. } => return self.blocked(tid),
            RwOutcome::WouldDeadlock => return self.abort(tid),
        }
        // Lock held: refresh committed view, then APP;PUSH eagerly.
        pull_committed_lenient(&mut self.machine, tid)?;
        let op = match self.machine.app_method(tid, &method) {
            Ok(op) => op,
            Err(MachineError::NoAllowedResult(_)) => return self.abort(tid),
            Err(e) => return Err(e),
        };
        match self.machine.push(tid, op) {
            Ok(()) => {
                self.blocked_streak[tid.0] = 0;
                Ok(Tick::Progress)
            }
            Err(e) if is_conflict(&e) => {
                // Shared-read vs shared-read pushes always commute, so
                // this only fires for exotic interleavings the lock order
                // didn't cover; treat as a wait.
                self.machine.unapp(tid)?;
                self.blocked(tid)
            }
            Err(e) => Err(e),
        }
    }

    fn thread_count(&self) -> usize {
        self.machine.thread_count()
    }

    fn is_done(&self) -> bool {
        (0..self.machine.thread_count())
            .all(|t| self.machine.thread(ThreadId(t)).map(|t| t.is_done()).unwrap_or(true))
    }

    fn name(&self) -> &'static str {
        "two-phase-locking"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushpull_core::error::{Clause, Rule};
    use pushpull_core::opacity::{check_trace, OpacityVerdict};
    use pushpull_core::serializability::check_machine;

    fn run_round_robin(sys: &mut TwoPhaseLocking, max_ticks: usize) {
        let n = sys.thread_count();
        for i in 0..max_ticks {
            if sys.is_done() {
                return;
            }
            let _ = sys.tick(ThreadId(i % n)).unwrap();
        }
        panic!("system did not terminate within {max_ticks} ticks");
    }

    fn rmw(l: u32, v: i64) -> Vec<Code<MemMethod>> {
        vec![Code::seq_all(vec![
            Code::method(MemMethod::Read(Loc(l))),
            Code::method(MemMethod::Write(Loc(l), v)),
        ])]
    }

    #[test]
    fn readers_run_in_parallel() {
        let prog = || vec![Code::method(MemMethod::Read(Loc(0)))];
        let mut sys = TwoPhaseLocking::new(vec![prog(), prog(), prog()]);
        run_round_robin(&mut sys, 1000);
        assert_eq!(sys.stats().commits, 3);
        assert_eq!(sys.stats().blocked_ticks, 0);
        assert_eq!(sys.stats().aborts, 0);
        assert!(check_machine(sys.machine()).is_serializable());
    }

    #[test]
    fn writers_serialize_and_never_violate_push_criteria() {
        let mut sys = TwoPhaseLocking::new(vec![rmw(0, 1), rmw(0, 2)]);
        run_round_robin(&mut sys, 4000);
        assert_eq!(sys.stats().commits, 2);
        assert!(sys.stats().blocked_ticks > 0, "second RMW must wait on the lock");
        let audit = sys.machine().audit();
        assert_eq!(audit.violated_count(Rule::Push, Clause::Ii), 0);
        assert_eq!(audit.violated_count(Rule::Push, Clause::Iii), 0);
        assert!(check_machine(sys.machine()).is_serializable());
    }

    #[test]
    fn upgrade_deadlock_breaks_via_abort() {
        // Both threads read loc 0 then write it: shared-then-upgrade is
        // the classic conversion deadlock; one must abort.
        let mut sys = TwoPhaseLocking::new(vec![rmw(0, 1), rmw(0, 2)]);
        // Interleave the reads first.
        sys.tick(ThreadId(0)).unwrap();
        sys.tick(ThreadId(1)).unwrap();
        run_round_robin(&mut sys, 4000);
        assert_eq!(sys.stats().commits, 2);
        assert!(sys.stats().aborts >= 1, "conversion deadlock must abort someone");
        assert!(check_machine(sys.machine()).is_serializable());
    }

    #[test]
    fn runs_are_opaque() {
        let mut sys = TwoPhaseLocking::new(vec![rmw(0, 1), rmw(1, 2)]);
        run_round_robin(&mut sys, 2000);
        assert_eq!(check_trace(sys.machine().trace()), OpacityVerdict::Opaque);
    }

    #[test]
    fn random_interleavings_serializable() {
        for seed in 1..=15u64 {
            let mut state = seed;
            let mut sys = TwoPhaseLocking::new(vec![rmw(0, 1), rmw(1, 2), rmw(0, 3)]);
            let mut ticks = 0;
            while !sys.is_done() {
                let mut x = state.max(1);
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                state = x;
                sys.tick(ThreadId((x % 3) as usize)).unwrap();
                ticks += 1;
                assert!(ticks < 1_000_000, "seed {seed} diverged");
            }
            assert_eq!(sys.stats().commits, 3, "seed {seed}");
            assert!(check_machine(sys.machine()).is_serializable(), "seed {seed}");
        }
    }
}
