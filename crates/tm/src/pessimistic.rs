//! Pessimistic transactions in the style of Matveev & Shavit \[25\]
//! (paper §6.3): write operations are *delayed* to the commit phase, and
//! commit phases are serialized, so "write transactions appear to occur
//! instantaneously at the commit point: all write operations are PUSHed
//! just before CMT, with no interleaved transactions. Consequently, read
//! operations perform PULL only on committed effects."
//!
//! The commit-phase serialization is realized with a *commit token*: a
//! thread entering its commit phase takes the token, performs
//! PUSH*… CMT in one burst, and releases it. Because writers only ever
//! publish while holding the token, PUSH criterion (ii) meets no foreign
//! uncommitted operations — writers never abort. Read-only transactions
//! validate at commit like everyone else; a reader that raced a writer
//! re-runs (our multiversion-free approximation of MS-TM's abort-free
//! readers, recorded in DESIGN.md).

use std::sync::{Arc, Mutex};

use pushpull_core::error::MachineError;
use pushpull_core::machine::Machine;
use pushpull_core::op::ThreadId;
use pushpull_core::spec::SeqSpec;
use pushpull_core::{Code, TxnHandle};

use crate::contention::{
    default_manager, ContentionManager, ContentionState, Gate, Governor, StarvationReport,
};
use crate::driver::{ParallelSystem, SystemStats, Tick, TmSystem, Worker};
use crate::util::{is_conflict, pull_committed_lenient};

/// A Matveev–Shavit-style pessimistic system.
///
/// # Examples
///
/// ```
/// use pushpull_tm::pessimistic::MatveevShavitSystem;
/// use pushpull_tm::driver::TmSystem;
/// use pushpull_spec::rwmem::{RwMem, MemMethod, Loc};
/// use pushpull_core::lang::Code;
/// use pushpull_core::op::ThreadId;
///
/// let mut sys = MatveevShavitSystem::new(
///     RwMem::new(),
///     vec![
///         vec![Code::method(MemMethod::Write(Loc(0), 1))],
///         vec![Code::method(MemMethod::Write(Loc(0), 2))],
///     ],
/// );
/// while !sys.is_done() {
///     for t in 0..sys.thread_count() {
///         sys.tick(ThreadId(t))?;
///     }
/// }
/// assert_eq!(sys.stats().commits, 2);
/// # Ok::<(), pushpull_core::error::MachineError>(())
/// ```
#[derive(Debug)]
pub struct MatveevShavitSystem<S: SeqSpec> {
    machine: Machine<S>,
    /// Which thread holds the commit token, if any. The token is the
    /// algorithm's single serialization point; workers touch it only in
    /// their commit phase.
    token: Mutex<Option<ThreadId>>,
    threads: Vec<MsThread>,
    contention: Arc<ContentionState>,
    governors: Vec<Governor>,
}

/// Per-thread driver state, owned by exactly one worker.
#[derive(Debug, Clone, Default)]
struct MsThread {
    started: bool,
    stats: SystemStats,
}

/// One tick for one thread: APP and local bookkeeping run lock-free; only
/// the commit burst contends on the token.
fn tick_thread<S: SeqSpec>(
    token: &Mutex<Option<ThreadId>>,
    h: &mut TxnHandle<S>,
    t: &mut MsThread,
    gov: &mut Governor,
) -> Result<Tick, MachineError> {
    match gov.gate(h) {
        Gate::Done => {
            let mut tok = token.lock().expect("token lock poisoned");
            if *tok == Some(h.tid()) {
                *tok = None;
            }
            return Ok(Tick::Done);
        }
        Gate::Park => {
            t.stats.blocked_ticks += 1;
            return Ok(Tick::Blocked);
        }
        Gate::Kill => {
            h.abort_and_retry()?;
            t.started = false;
            t.stats.aborts += 1;
            gov.on_abort();
            return Ok(Tick::Aborted);
        }
        Gate::Run => {}
    }
    if !t.started {
        // Reads PULL committed effects only.
        pull_committed_lenient(h)?;
        t.started = true;
        return Ok(Tick::Progress);
    }
    let options = h.step_options()?;
    if !options.is_empty() {
        // Apply locally (writes are buffered — delayed to commit).
        let method = options[0].0.clone();
        return match h.app_method(&method) {
            Ok(_) => {
                gov.on_progress();
                Ok(Tick::Progress)
            }
            Err(MachineError::NoAllowedResult(_)) | Err(MachineError::Criterion(_)) => {
                h.abort_and_retry()?;
                t.started = false;
                t.stats.aborts += 1;
                gov.on_abort();
                Ok(Tick::Aborted)
            }
            Err(e) => Err(e),
        };
    }
    // Commit phase: take the token so the PUSH*;CMT burst is
    // uninterleaved.
    {
        let mut tok = token.lock().expect("token lock poisoned");
        match *tok {
            Some(holder) if holder != h.tid() => {
                // The commit-token wait deliberately does NOT consult the
                // contention manager: MS writers never abort, and the
                // token is released within the holder's same tick, so the
                // wait is always short and bounded.
                t.stats.blocked_ticks += 1;
                return Ok(Tick::Blocked);
            }
            _ => *tok = Some(h.tid()),
        }
    }
    let result = h.push_all_and_commit();
    *token.lock().expect("token lock poisoned") = None;
    match result {
        Ok(_) => {
            t.started = false;
            t.stats.commits += 1;
            gov.on_commit();
            Ok(Tick::Committed)
        }
        Err(e) if is_conflict(&e) => {
            // A reader that raced a writer: re-run on fresh state.
            h.abort_and_retry()?;
            t.started = false;
            t.stats.aborts += 1;
            gov.on_abort();
            Ok(Tick::Aborted)
        }
        Err(e) => Err(e),
    }
}

impl<S: SeqSpec> MatveevShavitSystem<S> {
    /// Creates a system running `programs[i]` on thread `i` under the
    /// default contention manager.
    pub fn new(spec: S, programs: Vec<Vec<Code<S::Method>>>) -> Self {
        Self::with_contention(spec, programs, default_manager())
    }

    /// Creates a system with an explicit contention-management policy.
    pub fn with_contention(
        spec: S,
        programs: Vec<Vec<Code<S::Method>>>,
        cm: Arc<dyn ContentionManager>,
    ) -> Self {
        let mut machine = Machine::new(spec);
        let n = programs.len();
        for p in programs {
            machine.add_thread(p);
        }
        let contention = ContentionState::new(cm);
        let governors = contention.governors(n);
        Self {
            machine,
            token: Mutex::new(None),
            threads: vec![MsThread::default(); n],
            contention,
            governors,
        }
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Machine<S> {
        &self.machine
    }

    /// Accumulated statistics (summed over threads).
    pub fn stats(&self) -> SystemStats {
        let mut stats: SystemStats = self.threads.iter().map(|t| t.stats).sum();
        self.contention.fold_into(&mut stats);
        crate::driver::fold_machine_counters(&self.machine, &mut stats);
        stats
    }
}

impl<S: SeqSpec + Clone> Clone for MatveevShavitSystem<S> {
    fn clone(&self) -> Self {
        let contention = self.contention.fork();
        let governors = contention.governors(self.threads.len());
        Self {
            machine: self.machine.clone(),
            token: Mutex::new(*self.token.lock().expect("token lock poisoned")),
            threads: self.threads.clone(),
            contention,
            governors,
        }
    }
}

impl<S: SeqSpec> TmSystem for MatveevShavitSystem<S> {
    fn tick(&mut self, tid: ThreadId) -> Result<Tick, MachineError> {
        tick_thread(
            &self.token,
            self.machine.handle_mut(tid)?,
            &mut self.threads[tid.0],
            &mut self.governors[tid.0],
        )
    }

    fn thread_count(&self) -> usize {
        self.machine.thread_count()
    }

    fn is_done(&self) -> bool {
        (0..self.machine.thread_count()).all(|t| {
            self.machine
                .thread(ThreadId(t))
                .map(|t| t.is_done())
                .unwrap_or(true)
        })
    }

    fn name(&self) -> &'static str {
        "pessimistic-ms"
    }

    fn starvation(&self) -> Option<StarvationReport> {
        Some(self.contention.report())
    }

    crate::driver::forward_machine_hooks!();
}

impl<S> ParallelSystem for MatveevShavitSystem<S>
where
    S: SeqSpec + Send + Sync,
    S::Method: Send + Sync,
    S::Ret: Send + Sync,
    S::State: Send + Sync,
{
    fn workers(&mut self) -> Vec<Worker<'_>> {
        let token = &self.token;
        self.machine
            .handles_mut()
            .iter_mut()
            .zip(self.threads.iter_mut())
            .zip(self.governors.iter_mut())
            .map(|((h, t), gov)| Box::new(move || tick_thread(token, h, t, gov)) as Worker<'_>)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushpull_core::opacity::{check_trace, OpacityVerdict};
    use pushpull_core::serializability::check_machine;
    use pushpull_spec::rwmem::{Loc, MemMethod, RwMem};

    fn run_round_robin<S: SeqSpec>(sys: &mut MatveevShavitSystem<S>, max_ticks: usize) {
        let n = sys.thread_count();
        for i in 0..max_ticks {
            if sys.is_done() {
                return;
            }
            let _ = sys.tick(ThreadId(i % n)).unwrap();
        }
        panic!("system did not terminate within {max_ticks} ticks");
    }

    #[test]
    fn write_only_transactions_never_abort() {
        let progs: Vec<_> = (0..4)
            .map(|t| {
                vec![Code::seq_all(vec![
                    Code::method(MemMethod::Write(Loc(t), 1)),
                    Code::method(MemMethod::Write(Loc(t + 4), 2)),
                ])]
            })
            .collect();
        let mut sys = MatveevShavitSystem::new(RwMem::new(), progs);
        run_round_robin(&mut sys, 4000);
        assert_eq!(sys.stats().commits, 4);
        assert_eq!(sys.stats().aborts, 0, "MS writers never abort");
        assert!(check_machine(sys.machine()).is_serializable());
    }

    #[test]
    fn even_conflicting_writers_never_abort() {
        // Blind writes to the SAME location: writes are total, pushes
        // under the token meet no uncommitted ops — still no aborts.
        let prog = |v: i64| vec![Code::method(MemMethod::Write(Loc(0), v))];
        let mut sys = MatveevShavitSystem::new(RwMem::new(), vec![prog(1), prog(2)]);
        run_round_robin(&mut sys, 2000);
        assert_eq!(sys.stats().commits, 2);
        assert_eq!(sys.stats().aborts, 0);
        assert!(check_machine(sys.machine()).is_serializable());
    }

    #[test]
    fn runs_are_opaque() {
        let prog = |l: u32| {
            vec![Code::seq_all(vec![
                Code::method(MemMethod::Read(Loc(l))),
                Code::method(MemMethod::Write(Loc(l), 1)),
            ])]
        };
        let mut sys = MatveevShavitSystem::new(RwMem::new(), vec![prog(0), prog(1)]);
        run_round_robin(&mut sys, 2000);
        assert_eq!(check_trace(&sys.machine().trace()), OpacityVerdict::Opaque);
        assert!(check_machine(sys.machine()).is_serializable());
    }

    #[test]
    fn racing_reader_rolls_forward() {
        // Reader reads loc 0; writer writes loc 0. If the reader's
        // snapshot went stale it re-runs; either way both commit and the
        // run is serializable.
        let mut sys = MatveevShavitSystem::new(
            RwMem::new(),
            vec![
                vec![Code::method(MemMethod::Read(Loc(0)))],
                vec![Code::method(MemMethod::Write(Loc(0), 9))],
            ],
        );
        run_round_robin(&mut sys, 2000);
        assert_eq!(sys.stats().commits, 2);
        assert!(check_machine(sys.machine()).is_serializable());
    }
}
