//! Abstract conflict keys: which abstract locks a method must hold.
//!
//! Transactional boosting maps each method to a set of abstract locks
//! such that any two methods whose lock sets are disjoint commute (the
//! mover tables in `pushpull-spec` are the proof obligations). The
//! checked machine independently re-verifies commutativity at every PUSH,
//! so an imperfect lock discipline degrades into conflict-retry rather
//! than into a correctness bug — which is also how we handle methods
//! whose conflict structure exclusive locks cannot express (a commutative
//! `Counter::Add` takes no lock at all; a `Size` read takes a global
//! lock and relies on criterion (ii) to fence presence-changing writers).

use std::fmt::Debug;
use std::hash::Hash;

use pushpull_core::spec::SeqSpec;
use pushpull_spec::bank::{Bank, BankMethod};
use pushpull_spec::composite::{Either, Product};
use pushpull_spec::counter::{Counter, CtrMethod};
use pushpull_spec::kvmap::{KvMap, MapMethod};
use pushpull_spec::queue::{QueueMethod, QueueSpec};
use pushpull_spec::rwmem::{MemMethod, RwMem};
use pushpull_spec::set::{SetMethod, SetSpec};

/// A specification whose methods carry abstract lock keys.
pub trait ConflictKeyed: SeqSpec {
    /// The abstract lock key type.
    type LockKey: Clone + Eq + Hash + Ord + Debug;

    /// The abstract locks to hold before applying `method`. An empty set
    /// means the method commutes with everything that also takes no lock
    /// it would conflict with (e.g. commutative counter increments).
    fn lock_keys(&self, method: &Self::Method) -> Vec<Self::LockKey>;
}

/// Lock keys of the key-value map: per key, plus a whole-map key for
/// `Size`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MapLockKey {
    /// A single key.
    Key(u64),
    /// The whole map (taken by `Size`).
    Whole,
}

impl ConflictKeyed for KvMap {
    type LockKey = MapLockKey;

    fn lock_keys(&self, method: &MapMethod) -> Vec<MapLockKey> {
        match method.key() {
            Some(k) => vec![MapLockKey::Key(k)],
            None => vec![MapLockKey::Whole],
        }
    }
}

impl ConflictKeyed for SetSpec {
    type LockKey = u64;

    fn lock_keys(&self, method: &SetMethod) -> Vec<u64> {
        vec![method.elem()]
    }
}

/// Lock keys of the counter: increments are lock-free (they commute),
/// reads take the whole counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CounterLockKey;

impl ConflictKeyed for Counter {
    type LockKey = CounterLockKey;

    fn lock_keys(&self, method: &CtrMethod) -> Vec<CounterLockKey> {
        match method {
            CtrMethod::Add(_) => vec![],
            CtrMethod::Get => vec![CounterLockKey],
        }
    }
}

impl ConflictKeyed for Bank {
    type LockKey = u32;

    fn lock_keys(&self, method: &BankMethod) -> Vec<u32> {
        vec![method.acct()]
    }
}

/// Lock key of the queue: the whole queue (FIFO order is globally
/// observable, nothing commutes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueueLockKey;

impl ConflictKeyed for QueueSpec {
    type LockKey = QueueLockKey;

    fn lock_keys(&self, _method: &QueueMethod) -> Vec<QueueLockKey> {
        vec![QueueLockKey]
    }
}

impl ConflictKeyed for RwMem {
    type LockKey = u32;

    fn lock_keys(&self, method: &MemMethod) -> Vec<u32> {
        vec![method.loc().0]
    }
}

impl<A: ConflictKeyed, B: ConflictKeyed> ConflictKeyed for Product<A, B> {
    type LockKey = Either<A::LockKey, B::LockKey>;

    fn lock_keys(&self, method: &Either<A::Method, B::Method>) -> Vec<Self::LockKey> {
        match method {
            Either::L(m) => self
                .left()
                .lock_keys(m)
                .into_iter()
                .map(Either::L)
                .collect(),
            Either::R(m) => self
                .right()
                .lock_keys(m)
                .into_iter()
                .map(Either::R)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_keys_are_per_key_except_size() {
        let spec = KvMap::new();
        assert_eq!(
            spec.lock_keys(&MapMethod::Put(3, 1)),
            vec![MapLockKey::Key(3)]
        );
        assert_eq!(spec.lock_keys(&MapMethod::Size), vec![MapLockKey::Whole]);
    }

    #[test]
    fn counter_adds_take_no_lock() {
        let spec = Counter::new();
        assert!(spec.lock_keys(&CtrMethod::Add(5)).is_empty());
        assert_eq!(spec.lock_keys(&CtrMethod::Get), vec![CounterLockKey]);
    }

    #[test]
    fn product_lock_keys_delegate() {
        let spec = Product::new(SetSpec::new(), Counter::new());
        assert_eq!(
            spec.lock_keys(&Either::L(SetMethod::Add(7))),
            vec![Either::L(7)]
        );
        assert!(spec.lock_keys(&Either::R(CtrMethod::Add(1))).is_empty());
    }
}
