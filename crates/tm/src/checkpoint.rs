//! Checkpoints / partial abort (§6.2's extension: "Transactions that use
//! checkpoints \[19\] … are similar to the above optimistic models, except
//! that placemarkers are set so that, if an abort is detected, UNAPP only
//! needs to be performed for some operations").
//!
//! The placemarkers are first-class *checkpoint scopes*
//! ([`TxnHandle::begin_checkpoint`]): one closed marker frame before
//! every operation. On a commit-time conflict this driver does not throw
//! the whole transaction away: it locates the *first* operation the
//! shared log no longer admits and aborts the scope suffix from that
//! checkpoint ([`TxnHandle::abort_to_checkpoint`]), refreshes its view,
//! and re-executes only the invalidated suffix. Thanks to UNAPP's saved
//! code/stack snapshots, the machine restores the continuation for free —
//! the paper's point that the model "permits threads to roll backwards to
//! any execution point".

use std::sync::Arc;

use pushpull_core::error::MachineError;
use pushpull_core::machine::Machine;
use pushpull_core::op::ThreadId;
use pushpull_core::spec::SeqSpec;
use pushpull_core::{Code, TxnHandle};

use crate::contention::{
    default_manager, ContentionManager, ContentionState, Gate, Governor, StarvationReport,
    WaitVerdict,
};
use crate::driver::{ParallelSystem, SystemStats, Tick, TmSystem, Worker};
use crate::util::{is_conflict, pull_committed_lenient};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Begin,
    Running,
}

/// An optimistic system with checkpoint-based partial aborts.
///
/// # Examples
///
/// ```
/// use pushpull_tm::checkpoint::CheckpointOptimistic;
/// use pushpull_tm::driver::TmSystem;
/// use pushpull_spec::counter::{Counter, CtrMethod};
/// use pushpull_core::lang::Code;
/// use pushpull_core::op::ThreadId;
///
/// let prog = vec![Code::seq_all(vec![
///     Code::method(CtrMethod::Add(1)),
///     Code::method(CtrMethod::Get),
/// ])];
/// let mut sys = CheckpointOptimistic::new(Counter::new(), vec![prog]);
/// while !sys.is_done() {
///     sys.tick(ThreadId(0))?;
/// }
/// assert_eq!(sys.stats().commits, 1);
/// # Ok::<(), pushpull_core::error::MachineError>(())
/// ```
#[derive(Debug)]
pub struct CheckpointOptimistic<S: SeqSpec> {
    machine: Machine<S>,
    threads: Vec<CkptThread>,
    contention: Arc<ContentionState>,
    governors: Vec<Governor>,
}

impl<S: SeqSpec> Clone for CheckpointOptimistic<S>
where
    Machine<S>: Clone,
{
    fn clone(&self) -> Self {
        let contention = self.contention.fork();
        let governors = contention.governors(self.threads.len());
        Self {
            machine: self.machine.clone(),
            threads: self.threads.clone(),
            contention,
            governors,
        }
    }
}

/// Per-thread driver state, owned by exactly one worker. Checkpointing
/// has no cross-thread driver state at all.
#[derive(Debug, Clone)]
struct CkptThread {
    phase: Phase,
    stats: SystemStats,
    partial_rewinds: u64,
    ops_salvaged: u64,
}

impl Default for CkptThread {
    fn default() -> Self {
        Self {
            phase: Phase::Begin,
            stats: SystemStats::default(),
            partial_rewinds: 0,
            ops_salvaged: 0,
        }
    }
}

fn abort_thread<S: SeqSpec>(
    h: &mut TxnHandle<S>,
    t: &mut CkptThread,
    gov: &mut Governor,
) -> Result<Tick, MachineError> {
    h.abort_and_retry()?;
    t.phase = Phase::Begin;
    t.stats.aborts += 1;
    gov.on_abort();
    Ok(Tick::Aborted)
}

/// Validates the thread's own operations against the current shared log,
/// returning the index (into the local log) of the first entry that is no
/// longer admissible, if any.
fn first_invalid<S: SeqSpec>(h: &TxnHandle<S>) -> Option<usize> {
    let mut prefix = h.global_snapshot().committed_ops();
    for (idx, e) in h.local().iter().enumerate() {
        if e.flag.is_pulled() {
            // Pulled entries either are still in G (fine) or belong
            // to the prefix already; skip membership bookkeeping —
            // the machine's CMT criteria re-check them anyway.
            continue;
        }
        if !h.spec().allows(&prefix, &e.op) {
            return Some(idx);
        }
        prefix.push(e.op.clone());
    }
    None
}

/// One checkpointing tick for one thread: validation and partial rewinds
/// run entirely on the thread's own handle against a consistent snapshot.
fn tick_thread<S: SeqSpec>(
    h: &mut TxnHandle<S>,
    t: &mut CkptThread,
    gov: &mut Governor,
) -> Result<Tick, MachineError> {
    match gov.gate(h) {
        Gate::Done => return Ok(Tick::Done),
        Gate::Park => {
            t.stats.blocked_ticks += 1;
            return Ok(Tick::Blocked);
        }
        Gate::Kill => return abort_thread(h, t, gov),
        Gate::Run => {}
    }
    if t.phase == Phase::Begin {
        pull_committed_lenient(h)?;
        t.phase = Phase::Running;
        return Ok(Tick::Progress);
    }
    let options = h.step_options()?;
    if !options.is_empty() {
        let method = options[0].0.clone();
        // The §6.2 placemarker: a checkpoint scope before every
        // operation, so any suffix is later abortable on its own.
        h.begin_checkpoint()?;
        return match h.app_method(&method) {
            Ok(_) => Ok(Tick::Progress),
            Err(MachineError::NoAllowedResult(_)) | Err(MachineError::Criterion(_)) => {
                // Local view wedged: partial-abort to the checkpoint
                // before the first invalid entry instead of a full
                // abort.
                match first_invalid(h) {
                    Some(idx) => {
                        let salvaged = idx as u64;
                        h.abort_to_checkpoint(idx)?;
                        pull_committed_lenient(h)?;
                        t.partial_rewinds += 1;
                        t.ops_salvaged += salvaged;
                        Ok(Tick::Progress)
                    }
                    None => abort_thread(h, t, gov),
                }
            }
            Err(e) => Err(e),
        };
    }
    // Commit phase.
    match first_invalid(h) {
        None => match h.push_all_and_commit() {
            Ok(_) => {
                t.phase = Phase::Begin;
                t.stats.commits += 1;
                gov.on_commit();
                Ok(Tick::Committed)
            }
            Err(e) if is_conflict(&e) => {
                // Raced between validation and push: fall through to a
                // partial rewind on the next tick — but let the
                // contention manager bound the wait, since the conflict
                // may be with another thread's *uncommitted* pushed
                // ops, which validation cannot see: two threads whose
                // uncommitted pushed ops conflict would otherwise block
                // each other forever (`push_all_and_commit` does not
                // unwind partial pushes). A full abort UNPUSHes
                // everything and breaks the cycle.
                t.stats.blocked_ticks += 1;
                match gov.on_blocked() {
                    WaitVerdict::GiveUp => abort_thread(h, t, gov),
                    WaitVerdict::Wait => Ok(Tick::Blocked),
                }
            }
            Err(e) => Err(e),
        },
        Some(idx) => {
            // The §6.2 move: abort the scope suffix, UNAPPing only the
            // invalidated operations.
            let salvaged = idx as u64;
            h.abort_to_checkpoint(idx)?;
            pull_committed_lenient(h)?;
            gov.on_progress();
            t.partial_rewinds += 1;
            t.ops_salvaged += salvaged;
            Ok(Tick::Progress)
        }
    }
}

impl<S: SeqSpec> CheckpointOptimistic<S> {
    /// Creates a system running `programs[i]` on thread `i` under the
    /// default contention manager.
    pub fn new(spec: S, programs: Vec<Vec<Code<S::Method>>>) -> Self {
        Self::with_contention(spec, programs, default_manager())
    }

    /// Creates a system with an explicit contention-management policy.
    pub fn with_contention(
        spec: S,
        programs: Vec<Vec<Code<S::Method>>>,
        cm: Arc<dyn ContentionManager>,
    ) -> Self {
        let mut machine = Machine::new(spec);
        let n = programs.len();
        for p in programs {
            machine.add_thread(p);
        }
        let contention = ContentionState::new(cm);
        let governors = contention.governors(n);
        Self {
            machine,
            threads: vec![CkptThread::default(); n],
            contention,
            governors,
        }
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Machine<S> {
        &self.machine
    }

    /// Accumulated statistics (summed over threads). `aborts` counts
    /// *full* aborts only; see [`CheckpointOptimistic::partial_rewinds`].
    pub fn stats(&self) -> SystemStats {
        let mut stats: SystemStats = self.threads.iter().map(|t| t.stats).sum();
        self.contention.fold_into(&mut stats);
        crate::driver::fold_machine_counters(&self.machine, &mut stats);
        stats
    }

    /// Conflicts resolved by rewinding to a checkpoint rather than
    /// restarting the transaction.
    pub fn partial_rewinds(&self) -> u64 {
        self.threads.iter().map(|t| t.partial_rewinds).sum()
    }

    /// Operations that survived partial rewinds (work saved vs a full
    /// abort).
    pub fn ops_salvaged(&self) -> u64 {
        self.threads.iter().map(|t| t.ops_salvaged).sum()
    }
}

impl<S: SeqSpec> TmSystem for CheckpointOptimistic<S> {
    fn tick(&mut self, tid: ThreadId) -> Result<Tick, MachineError> {
        tick_thread(
            self.machine.handle_mut(tid)?,
            &mut self.threads[tid.0],
            &mut self.governors[tid.0],
        )
    }

    fn thread_count(&self) -> usize {
        self.machine.thread_count()
    }

    fn is_done(&self) -> bool {
        (0..self.machine.thread_count()).all(|t| {
            self.machine
                .thread(ThreadId(t))
                .map(|t| t.is_done())
                .unwrap_or(true)
        })
    }

    fn name(&self) -> &'static str {
        "checkpoint-optimistic"
    }

    fn starvation(&self) -> Option<StarvationReport> {
        Some(self.contention.report())
    }

    crate::driver::forward_machine_hooks!();
}

impl<S> ParallelSystem for CheckpointOptimistic<S>
where
    S: SeqSpec + Send + Sync,
    S::Method: Send + Sync,
    S::Ret: Send + Sync,
    S::State: Send + Sync,
{
    fn workers(&mut self) -> Vec<Worker<'_>> {
        self.machine
            .handles_mut()
            .iter_mut()
            .zip(self.threads.iter_mut())
            .zip(self.governors.iter_mut())
            .map(|((h, t), gov)| Box::new(move || tick_thread(h, t, gov)) as Worker<'_>)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushpull_core::serializability::check_machine;
    use pushpull_spec::counter::{Counter, CtrMethod};
    use pushpull_spec::rwmem::{Loc, MemMethod, RwMem};

    fn run_round_robin<S: SeqSpec>(sys: &mut CheckpointOptimistic<S>, max_ticks: usize) {
        let n = sys.thread_count();
        for i in 0..max_ticks {
            if sys.is_done() {
                return;
            }
            let _ = sys.tick(ThreadId(i % n)).unwrap();
        }
        panic!("system did not terminate within {max_ticks} ticks");
    }

    #[test]
    fn clean_runs_commit_without_rewinds() {
        let mut sys = CheckpointOptimistic::new(
            RwMem::new(),
            vec![
                vec![Code::method(MemMethod::Write(Loc(0), 1))],
                vec![Code::method(MemMethod::Write(Loc(1), 2))],
            ],
        );
        run_round_robin(&mut sys, 1000);
        assert_eq!(sys.stats().commits, 2);
        assert_eq!(sys.partial_rewinds(), 0);
        assert!(check_machine(sys.machine()).is_serializable());
    }

    #[test]
    fn conflict_in_suffix_is_rewound_partially() {
        // T1: write(5); write(7); get-of-0 — the first two ops touch
        // private locations, only the read of loc 0 is invalidated when
        // T0 commits a write to loc 0 in between.
        let mut sys = CheckpointOptimistic::new(
            RwMem::new(),
            vec![
                vec![Code::method(MemMethod::Write(Loc(0), 9))],
                vec![Code::seq_all(vec![
                    Code::method(MemMethod::Write(Loc(5), 1)),
                    Code::method(MemMethod::Write(Loc(7), 2)),
                    Code::method(MemMethod::Read(Loc(0))),
                ])],
            ],
        );
        let (a, b) = (ThreadId(0), ThreadId(1));
        // T1 applies everything against the empty snapshot (read -> 0).
        sys.tick(b).unwrap(); // begin
        sys.tick(b).unwrap();
        sys.tick(b).unwrap();
        sys.tick(b).unwrap(); // read loc0 = 0
                              // T0 commits its write to loc 0.
        while sys.machine().thread(a).unwrap().commits() == 0 {
            sys.tick(a).unwrap();
        }
        // T1's commit detects the stale read and rewinds ONLY it.
        let t = sys.tick(b).unwrap();
        assert_eq!(t, Tick::Progress);
        assert_eq!(sys.partial_rewinds(), 1);
        assert_eq!(sys.ops_salvaged(), 2, "the two private writes survive");
        assert_eq!(sys.stats().aborts, 0);
        run_round_robin(&mut sys, 1000);
        assert_eq!(sys.stats().commits, 2);
        let report = check_machine(sys.machine());
        assert!(report.is_serializable(), "{report}");
        // The re-executed read observed 9.
        let committed = sys.machine().committed_txns();
        let txn = committed.iter().find(|t| t.thread == b).unwrap();
        assert_eq!(
            txn.ops.last().unwrap().ret,
            pushpull_spec::rwmem::MemRet::Val(9)
        );
    }

    #[test]
    fn conflict_at_head_degenerates_to_full_abort_semantics() {
        // Everything depends on the stale read at position 0: rewind to 0
        // (equivalent to an abort, but through the checkpoint path).
        let mut sys = CheckpointOptimistic::new(
            Counter::new(),
            vec![
                vec![Code::method(CtrMethod::Add(1))],
                vec![Code::seq_all(vec![
                    Code::method(CtrMethod::Get),
                    Code::method(CtrMethod::Add(1)),
                ])],
            ],
        );
        let (a, b) = (ThreadId(0), ThreadId(1));
        sys.tick(b).unwrap(); // begin
        sys.tick(b).unwrap(); // get -> 0
        sys.tick(b).unwrap(); // add
        while sys.machine().thread(a).unwrap().commits() == 0 {
            sys.tick(a).unwrap();
        }
        run_round_robin(&mut sys, 1000);
        assert_eq!(sys.stats().commits, 2);
        assert!(sys.partial_rewinds() >= 1);
        assert!(check_machine(sys.machine()).is_serializable());
    }

    #[test]
    fn randomized_checkpoint_runs_serializable() {
        use pushpull_spec::rwmem::RwMem;
        for seed in 1..=10u64 {
            let mut state = seed;
            let prog = |l0: u32, l1: u32| {
                vec![Code::seq_all(vec![
                    Code::method(MemMethod::Read(Loc(l0))),
                    Code::method(MemMethod::Write(Loc(l1), 1)),
                ])]
            };
            let mut sys =
                CheckpointOptimistic::new(RwMem::new(), vec![prog(0, 1), prog(1, 0), prog(0, 0)]);
            let mut ticks = 0;
            while !sys.is_done() {
                let mut x = state.max(1);
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                state = x;
                let t = (x % 3) as usize;
                sys.tick(ThreadId(t)).unwrap();
                ticks += 1;
                assert!(ticks < 1_000_000, "seed {seed} diverged");
            }
            assert_eq!(sys.stats().commits, 3, "seed {seed}");
            assert!(
                check_machine(sys.machine()).is_serializable(),
                "seed {seed}"
            );
        }
    }
}
