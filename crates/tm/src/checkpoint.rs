//! Checkpoints / partial abort (§6.2's extension: "Transactions that use
//! checkpoints \[19\] … are similar to the above optimistic models, except
//! that placemarkers are set so that, if an abort is detected, UNAPP only
//! needs to be performed for some operations").
//!
//! On a commit-time conflict this driver does not throw the whole
//! transaction away: it locates the *first* operation the shared log no
//! longer admits, rewinds exactly to the placemarker before it
//! ([`Machine::rewind_to`]), refreshes its view, and re-executes only the
//! invalidated suffix. Thanks to UNAPP's saved code/stack snapshots, the
//! machine restores the continuation for free — the paper's point that
//! the model "permits threads to roll backwards to any execution point".

use pushpull_core::error::MachineError;
use pushpull_core::machine::Machine;
use pushpull_core::op::ThreadId;
use pushpull_core::spec::SeqSpec;
use pushpull_core::Code;

use crate::driver::{SystemStats, Tick, TmSystem};
use crate::util::{is_conflict, pull_committed_lenient};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Begin,
    Running,
}

/// An optimistic system with checkpoint-based partial aborts.
///
/// # Examples
///
/// ```
/// use pushpull_tm::checkpoint::CheckpointOptimistic;
/// use pushpull_tm::driver::TmSystem;
/// use pushpull_spec::counter::{Counter, CtrMethod};
/// use pushpull_core::lang::Code;
/// use pushpull_core::op::ThreadId;
///
/// let prog = vec![Code::seq_all(vec![
///     Code::method(CtrMethod::Add(1)),
///     Code::method(CtrMethod::Get),
/// ])];
/// let mut sys = CheckpointOptimistic::new(Counter::new(), vec![prog]);
/// while !sys.is_done() {
///     sys.tick(ThreadId(0))?;
/// }
/// assert_eq!(sys.stats().commits, 1);
/// # Ok::<(), pushpull_core::error::MachineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CheckpointOptimistic<S: SeqSpec> {
    machine: Machine<S>,
    phase: Vec<Phase>,
    stats: SystemStats,
    partial_rewinds: u64,
    ops_salvaged: u64,
}

impl<S: SeqSpec> CheckpointOptimistic<S> {
    /// Creates a system running `programs[i]` on thread `i`.
    pub fn new(spec: S, programs: Vec<Vec<Code<S::Method>>>) -> Self {
        let mut machine = Machine::new(spec);
        let n = programs.len();
        for p in programs {
            machine.add_thread(p);
        }
        Self {
            machine,
            phase: vec![Phase::Begin; n],
            stats: SystemStats::default(),
            partial_rewinds: 0,
            ops_salvaged: 0,
        }
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Machine<S> {
        &self.machine
    }

    /// Accumulated statistics. `aborts` counts *full* aborts only;
    /// see [`CheckpointOptimistic::partial_rewinds`].
    pub fn stats(&self) -> SystemStats {
        self.stats
    }

    /// Conflicts resolved by rewinding to a checkpoint rather than
    /// restarting the transaction.
    pub fn partial_rewinds(&self) -> u64 {
        self.partial_rewinds
    }

    /// Operations that survived partial rewinds (work saved vs a full
    /// abort).
    pub fn ops_salvaged(&self) -> u64 {
        self.ops_salvaged
    }

    /// Validates the thread's own operations against the current shared
    /// log, returning the index (into the local log) of the first entry
    /// that is no longer admissible, if any.
    fn first_invalid(&self, tid: ThreadId) -> Option<usize> {
        let t = self.machine.thread(tid).ok()?;
        let spec = self.machine.spec();
        let mut prefix = self.machine.global().committed_ops();
        for (idx, e) in t.local().iter().enumerate() {
            if e.flag.is_pulled() {
                // Pulled entries either are still in G (fine) or belong
                // to the prefix already; skip membership bookkeeping —
                // the machine's CMT criteria re-check them anyway.
                continue;
            }
            if !spec.allows(&prefix, &e.op) {
                return Some(idx);
            }
            prefix.push(e.op.clone());
        }
        None
    }
}

impl<S: SeqSpec> TmSystem for CheckpointOptimistic<S> {
    fn tick(&mut self, tid: ThreadId) -> Result<Tick, MachineError> {
        if self.machine.thread(tid)?.is_done() {
            return Ok(Tick::Done);
        }
        if self.phase[tid.0] == Phase::Begin {
            pull_committed_lenient(&mut self.machine, tid)?;
            self.phase[tid.0] = Phase::Running;
            return Ok(Tick::Progress);
        }
        let options = self.machine.step_options(tid)?;
        if !options.is_empty() {
            let method = options[0].0.clone();
            return match self.machine.app_method(tid, &method) {
                Ok(_) => Ok(Tick::Progress),
                Err(MachineError::NoAllowedResult(_)) | Err(MachineError::Criterion(_)) => {
                    // Local view wedged: partial-rewind to the first
                    // invalid entry instead of full abort.
                    match self.first_invalid(tid) {
                        Some(idx) => {
                            let salvaged = idx as u64;
                            self.machine.rewind_to(tid, idx)?;
                            pull_committed_lenient(&mut self.machine, tid)?;
                            self.partial_rewinds += 1;
                            self.ops_salvaged += salvaged;
                            Ok(Tick::Progress)
                        }
                        None => {
                            self.machine.abort_and_retry(tid)?;
                            self.phase[tid.0] = Phase::Begin;
                            self.stats.aborts += 1;
                            Ok(Tick::Aborted)
                        }
                    }
                }
                Err(e) => Err(e),
            };
        }
        // Commit phase.
        match self.first_invalid(tid) {
            None => match self.machine.push_all_and_commit(tid) {
                Ok(_) => {
                    self.phase[tid.0] = Phase::Begin;
                    self.stats.commits += 1;
                    Ok(Tick::Committed)
                }
                Err(e) if is_conflict(&e) => {
                    // Raced between validation and push: fall through to
                    // a partial rewind on the next tick.
                    self.stats.blocked_ticks += 1;
                    Ok(Tick::Blocked)
                }
                Err(e) => Err(e),
            },
            Some(idx) => {
                // The §6.2 move: UNAPP only the invalidated suffix.
                let salvaged = idx as u64;
                self.machine.rewind_to(tid, idx)?;
                pull_committed_lenient(&mut self.machine, tid)?;
                self.partial_rewinds += 1;
                self.ops_salvaged += salvaged;
                Ok(Tick::Progress)
            }
        }
    }

    fn thread_count(&self) -> usize {
        self.machine.thread_count()
    }

    fn is_done(&self) -> bool {
        (0..self.machine.thread_count())
            .all(|t| self.machine.thread(ThreadId(t)).map(|t| t.is_done()).unwrap_or(true))
    }

    fn name(&self) -> &'static str {
        "checkpoint-optimistic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushpull_core::serializability::check_machine;
    use pushpull_spec::counter::{Counter, CtrMethod};
    use pushpull_spec::rwmem::{Loc, MemMethod, RwMem};

    fn run_round_robin<S: SeqSpec>(sys: &mut CheckpointOptimistic<S>, max_ticks: usize) {
        let n = sys.thread_count();
        for i in 0..max_ticks {
            if sys.is_done() {
                return;
            }
            let _ = sys.tick(ThreadId(i % n)).unwrap();
        }
        panic!("system did not terminate within {max_ticks} ticks");
    }

    #[test]
    fn clean_runs_commit_without_rewinds() {
        let mut sys = CheckpointOptimistic::new(
            RwMem::new(),
            vec![
                vec![Code::method(MemMethod::Write(Loc(0), 1))],
                vec![Code::method(MemMethod::Write(Loc(1), 2))],
            ],
        );
        run_round_robin(&mut sys, 1000);
        assert_eq!(sys.stats().commits, 2);
        assert_eq!(sys.partial_rewinds(), 0);
        assert!(check_machine(sys.machine()).is_serializable());
    }

    #[test]
    fn conflict_in_suffix_is_rewound_partially() {
        // T1: write(5); write(7); get-of-0 — the first two ops touch
        // private locations, only the read of loc 0 is invalidated when
        // T0 commits a write to loc 0 in between.
        let mut sys = CheckpointOptimistic::new(
            RwMem::new(),
            vec![
                vec![Code::method(MemMethod::Write(Loc(0), 9))],
                vec![Code::seq_all(vec![
                    Code::method(MemMethod::Write(Loc(5), 1)),
                    Code::method(MemMethod::Write(Loc(7), 2)),
                    Code::method(MemMethod::Read(Loc(0))),
                ])],
            ],
        );
        let (a, b) = (ThreadId(0), ThreadId(1));
        // T1 applies everything against the empty snapshot (read -> 0).
        sys.tick(b).unwrap(); // begin
        sys.tick(b).unwrap();
        sys.tick(b).unwrap();
        sys.tick(b).unwrap(); // read loc0 = 0
        // T0 commits its write to loc 0.
        while sys.machine().thread(a).unwrap().commits() == 0 {
            sys.tick(a).unwrap();
        }
        // T1's commit detects the stale read and rewinds ONLY it.
        let t = sys.tick(b).unwrap();
        assert_eq!(t, Tick::Progress);
        assert_eq!(sys.partial_rewinds(), 1);
        assert_eq!(sys.ops_salvaged(), 2, "the two private writes survive");
        assert_eq!(sys.stats().aborts, 0);
        run_round_robin(&mut sys, 1000);
        assert_eq!(sys.stats().commits, 2);
        let report = check_machine(sys.machine());
        assert!(report.is_serializable(), "{report}");
        // The re-executed read observed 9.
        let txn = sys
            .machine()
            .committed_txns()
            .iter()
            .find(|t| t.thread == b)
            .unwrap();
        assert_eq!(txn.ops.last().unwrap().ret, pushpull_spec::rwmem::MemRet::Val(9));
    }

    #[test]
    fn conflict_at_head_degenerates_to_full_abort_semantics() {
        // Everything depends on the stale read at position 0: rewind to 0
        // (equivalent to an abort, but through the checkpoint path).
        let mut sys = CheckpointOptimistic::new(
            Counter::new(),
            vec![
                vec![Code::method(CtrMethod::Add(1))],
                vec![Code::seq_all(vec![
                    Code::method(CtrMethod::Get),
                    Code::method(CtrMethod::Add(1)),
                ])],
            ],
        );
        let (a, b) = (ThreadId(0), ThreadId(1));
        sys.tick(b).unwrap(); // begin
        sys.tick(b).unwrap(); // get -> 0
        sys.tick(b).unwrap(); // add
        while sys.machine().thread(a).unwrap().commits() == 0 {
            sys.tick(a).unwrap();
        }
        run_round_robin(&mut sys, 1000);
        assert_eq!(sys.stats().commits, 2);
        assert!(sys.partial_rewinds() >= 1);
        assert!(check_machine(sys.machine()).is_serializable());
    }

    #[test]
    fn randomized_checkpoint_runs_serializable() {
        use pushpull_spec::rwmem::RwMem;
        for seed in 1..=10u64 {
            let mut state = seed;
            let prog = |l0: u32, l1: u32| {
                vec![Code::seq_all(vec![
                    Code::method(MemMethod::Read(Loc(l0))),
                    Code::method(MemMethod::Write(Loc(l1), 1)),
                ])]
            };
            let mut sys = CheckpointOptimistic::new(
                RwMem::new(),
                vec![prog(0, 1), prog(1, 0), prog(0, 0)],
            );
            let mut ticks = 0;
            while !sys.is_done() {
                let mut x = state.max(1);
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                state = x;
                let t = (x % 3) as usize;
                sys.tick(ThreadId(t)).unwrap();
                ticks += 1;
                assert!(ticks < 1_000_000, "seed {seed} diverged");
            }
            assert_eq!(sys.stats().commits, 3, "seed {seed}");
            assert!(check_machine(sys.machine()).is_serializable(), "seed {seed}");
        }
    }
}
