//! TL2 (Dice, Shalev & Shavit \[6\]) — the concrete optimistic STM of
//! §6.2, implemented with its *real* metadata: a global version clock,
//! per-location versions, commit-time locks, and a read set.
//!
//! Where [`crate::optimistic`] captures the optimistic *rule pattern*
//! generically, this driver reproduces the published algorithm:
//!
//! * **begin**: sample the global clock into `rv`;
//! * **read(l)**: abort if `l`'s version exceeds `rv` or `l` is locked;
//!   otherwise record `(l, version)` in the read set and APP;
//! * **write(l,v)**: buffer locally (APP only);
//! * **commit**: lock the write set, take `wv = clock.tick()`, validate
//!   the read set, then PUSH\*;CMT and publish the new versions.
//!
//! The experimentally checked claim (see the tests): whenever TL2's
//! metadata checks pass, the machine's PUSH/CMT criteria pass too — the
//! read/write-set discipline is a *sound approximation* of the model's
//! exact commutativity checks, exactly as §6.2 says ("which is
//! approximated via read/write sets").

use std::sync::{Arc, Mutex};

use pushpull_core::error::MachineError;
use pushpull_core::machine::Machine;
use pushpull_core::op::ThreadId;
use pushpull_core::{Code, TxnHandle};
use pushpull_ds::memory::{GlobalClock, VersionedMemory};
use pushpull_spec::rwmem::{Loc, MemMethod, RwMem};

use crate::contention::{
    default_manager, ContentionManager, ContentionState, Gate, Governor, StarvationReport,
};
use crate::driver::{ParallelSystem, SystemStats, Tick, TmSystem, Worker};
use crate::util::{is_conflict, pull_committed_lenient};

#[derive(Debug, Clone, Default)]
struct Tl2Txn {
    /// Read version: global-clock sample at begin.
    rv: u64,
    /// Read set: location and the version observed.
    read_set: Vec<(Loc, u64)>,
    /// Write set: locations buffered for commit-time locking.
    write_set: Vec<Loc>,
    started: bool,
}

/// A TL2 system over read/write memory.
///
/// # Examples
///
/// ```
/// use pushpull_tm::tl2::Tl2System;
/// use pushpull_tm::driver::TmSystem;
/// use pushpull_spec::rwmem::{MemMethod, Loc};
/// use pushpull_core::lang::Code;
/// use pushpull_core::op::ThreadId;
///
/// let mut sys = Tl2System::new(vec![
///     vec![Code::method(MemMethod::Write(Loc(0), 1))],
///     vec![Code::method(MemMethod::Read(Loc(0)))],
/// ]);
/// while !sys.is_done() {
///     for t in 0..sys.thread_count() {
///         sys.tick(ThreadId(t))?;
///     }
/// }
/// assert_eq!(sys.stats().commits, 2);
/// # Ok::<(), pushpull_core::error::MachineError>(())
/// ```
#[derive(Debug)]
pub struct Tl2System {
    machine: Machine<RwMem>,
    shared: Tl2Shared,
    threads: Vec<Tl2Thread>,
    contention: Arc<ContentionState>,
    governors: Vec<Governor>,
}

/// TL2's shared metadata: the global version clock (already atomic) and
/// the versioned memory with its commit-time location locks (behind a
/// short-held mutex — the per-location locks inside are the real
/// protocol; the mutex only guards the table itself).
#[derive(Debug)]
struct Tl2Shared {
    clock: GlobalClock,
    vmem: Mutex<VersionedMemory<Loc>>,
}

/// Per-thread driver state, owned by exactly one worker.
#[derive(Debug, Clone, Default)]
struct Tl2Thread {
    txn: Tl2Txn,
    stats: SystemStats,
    criteria_surprises: u64,
}

fn abort_thread(
    shared: &Tl2Shared,
    h: &mut TxnHandle<RwMem>,
    t: &mut Tl2Thread,
    gov: &mut Governor,
) -> Result<Tick, MachineError> {
    let txn = h.txn();
    shared
        .vmem
        .lock()
        .expect("vmem lock poisoned")
        .unlock_all(txn);
    h.abort_and_retry()?;
    t.txn = Tl2Txn::default();
    t.stats.aborts += 1;
    gov.on_abort();
    Ok(Tick::Aborted)
}

/// One TL2 tick for one thread. Reads/writes APP without any system-wide
/// lock; the vmem mutex is taken per metadata operation only.
fn tick_thread(
    shared: &Tl2Shared,
    h: &mut TxnHandle<RwMem>,
    t: &mut Tl2Thread,
    gov: &mut Governor,
) -> Result<Tick, MachineError> {
    match gov.gate(h) {
        Gate::Done => return Ok(Tick::Done),
        Gate::Park => {
            t.stats.blocked_ticks += 1;
            return Ok(Tick::Blocked);
        }
        Gate::Kill => return abort_thread(shared, h, t, gov),
        Gate::Run => {}
    }
    let txn = h.txn();
    if !t.txn.started {
        // Begin: rv := GV; snapshot the committed state.
        t.txn.rv = shared.clock.now();
        pull_committed_lenient(h)?;
        t.txn.started = true;
        return Ok(Tick::Progress);
    }
    let options = h.step_options()?;
    if options.is_empty() {
        // Commit phase.
        // 1. Lock the write set.
        let write_set = t.txn.write_set.clone();
        for l in &write_set {
            if !shared
                .vmem
                .lock()
                .expect("vmem lock poisoned")
                .try_lock(txn, *l)
            {
                return abort_thread(shared, h, t, gov);
            }
        }
        // 2. wv := GV.tick().
        let wv = shared.clock.tick();
        // 3. Validate the read set.
        let read_set = t.txn.read_set.clone();
        if !shared
            .vmem
            .lock()
            .expect("vmem lock poisoned")
            .validate(txn, &read_set)
        {
            return abort_thread(shared, h, t, gov);
        }
        // 4. Publish: PUSH*;CMT on the machine, then bump versions.
        match h.push_all_and_commit() {
            Ok(_) => {
                shared
                    .vmem
                    .lock()
                    .expect("vmem lock poisoned")
                    .publish(txn, &write_set, wv);
                t.txn = Tl2Txn::default();
                t.stats.commits += 1;
                gov.on_commit();
                Ok(Tick::Committed)
            }
            Err(MachineError::Criterion(v)) => {
                // TL2 said yes but the exact criteria said no: record
                // the surprise (the soundness tests require zero) —
                // unless a fault hook is armed, in which case the
                // denial is injected, not a soundness gap.
                if h.global_state().fault_hook().is_none() {
                    t.criteria_surprises += 1;
                }
                shared
                    .vmem
                    .lock()
                    .expect("vmem lock poisoned")
                    .unlock_all(txn);
                let _ = v;
                abort_thread(shared, h, t, gov)
            }
            Err(e) => Err(e),
        }
    } else {
        let method = options[0].0;
        match method {
            MemMethod::Read(l) => {
                // TL2 read rule: version must not exceed rv; the
                // location must not be commit-locked by another txn.
                let (ver, locked_by_other) = {
                    let vmem = shared.vmem.lock().expect("vmem lock poisoned");
                    (vmem.version(&l), vmem.locked_by_other(&l, txn))
                };
                if ver > t.txn.rv || locked_by_other {
                    return abort_thread(shared, h, t, gov);
                }
                t.txn.read_set.push((l, ver));
                match h.app_method(&method) {
                    Ok(_) => {
                        gov.on_progress();
                        Ok(Tick::Progress)
                    }
                    Err(MachineError::NoAllowedResult(_)) => abort_thread(shared, h, t, gov),
                    Err(e) if is_conflict(&e) => abort_thread(shared, h, t, gov),
                    Err(e) => Err(e),
                }
            }
            MemMethod::Write(l, _) => {
                if !t.txn.write_set.contains(&l) {
                    t.txn.write_set.push(l);
                }
                match h.app_method(&method) {
                    Ok(_) => {
                        gov.on_progress();
                        Ok(Tick::Progress)
                    }
                    Err(e) if is_conflict(&e) => abort_thread(shared, h, t, gov),
                    Err(e) => Err(e),
                }
            }
        }
    }
}

impl Tl2System {
    /// Creates a system running `programs[i]` on thread `i` under the
    /// default contention manager.
    pub fn new(programs: Vec<Vec<Code<MemMethod>>>) -> Self {
        Self::with_contention(programs, default_manager())
    }

    /// Creates a system with an explicit contention-management policy.
    pub fn with_contention(
        programs: Vec<Vec<Code<MemMethod>>>,
        cm: Arc<dyn ContentionManager>,
    ) -> Self {
        let mut machine = Machine::new(RwMem::new());
        let n = programs.len();
        for p in programs {
            machine.add_thread(p);
        }
        let contention = ContentionState::new(cm);
        let governors = contention.governors(n);
        Self {
            machine,
            shared: Tl2Shared {
                clock: GlobalClock::new(),
                vmem: Mutex::new(VersionedMemory::new()),
            },
            threads: vec![Tl2Thread::default(); n],
            contention,
            governors,
        }
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Machine<RwMem> {
        &self.machine
    }

    /// Accumulated statistics (summed over threads).
    pub fn stats(&self) -> SystemStats {
        let mut stats: SystemStats = self.threads.iter().map(|t| t.stats).sum();
        self.contention.fold_into(&mut stats);
        crate::driver::fold_machine_counters(&self.machine, &mut stats);
        stats
    }

    /// Times the machine's criteria rejected a commit that TL2's own
    /// validation had accepted. Zero on every run ⇒ the read/write-set
    /// discipline soundly approximates the model's criteria.
    pub fn criteria_surprises(&self) -> u64 {
        self.threads.iter().map(|t| t.criteria_surprises).sum()
    }
}

impl Clone for Tl2System {
    fn clone(&self) -> Self {
        let contention = self.contention.fork();
        let governors = contention.governors(self.threads.len());
        Self {
            machine: self.machine.clone(),
            shared: Tl2Shared {
                clock: self.shared.clock.clone(),
                vmem: Mutex::new(self.shared.vmem.lock().expect("vmem lock poisoned").clone()),
            },
            threads: self.threads.clone(),
            contention,
            governors,
        }
    }
}

impl TmSystem for Tl2System {
    fn tick(&mut self, tid: ThreadId) -> Result<Tick, MachineError> {
        tick_thread(
            &self.shared,
            self.machine.handle_mut(tid)?,
            &mut self.threads[tid.0],
            &mut self.governors[tid.0],
        )
    }

    fn thread_count(&self) -> usize {
        self.machine.thread_count()
    }

    fn is_done(&self) -> bool {
        (0..self.machine.thread_count()).all(|t| {
            self.machine
                .thread(ThreadId(t))
                .map(|t| t.is_done())
                .unwrap_or(true)
        })
    }

    fn name(&self) -> &'static str {
        "tl2"
    }

    fn starvation(&self) -> Option<StarvationReport> {
        Some(self.contention.report())
    }

    crate::driver::forward_machine_hooks!();
}

impl ParallelSystem for Tl2System {
    fn workers(&mut self) -> Vec<Worker<'_>> {
        let shared = &self.shared;
        self.machine
            .handles_mut()
            .iter_mut()
            .zip(self.threads.iter_mut())
            .zip(self.governors.iter_mut())
            .map(|((h, t), gov)| Box::new(move || tick_thread(shared, h, t, gov)) as Worker<'_>)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushpull_core::opacity::{check_trace, OpacityVerdict};
    use pushpull_core::serializability::check_machine;

    fn run_round_robin(sys: &mut Tl2System, max_ticks: usize) {
        let n = sys.thread_count();
        for i in 0..max_ticks {
            if sys.is_done() {
                return;
            }
            let _ = sys.tick(ThreadId(i % n)).unwrap();
        }
        panic!("system did not terminate within {max_ticks} ticks");
    }

    fn rmw(l: u32, v: i64) -> Vec<Code<MemMethod>> {
        vec![Code::seq_all(vec![
            Code::method(MemMethod::Read(Loc(l))),
            Code::method(MemMethod::Write(Loc(l), v)),
        ])]
    }

    #[test]
    fn disjoint_transactions_commit() {
        let mut sys = Tl2System::new(vec![rmw(0, 1), rmw(1, 2)]);
        run_round_robin(&mut sys, 2000);
        assert_eq!(sys.stats().commits, 2);
        assert_eq!(sys.stats().aborts, 0);
        assert_eq!(sys.criteria_surprises(), 0);
        assert!(check_machine(sys.machine()).is_serializable());
    }

    #[test]
    fn version_clock_catches_stale_reads() {
        let mut sys = Tl2System::new(vec![rmw(0, 1), rmw(0, 2)]);
        run_round_robin(&mut sys, 4000);
        assert_eq!(sys.stats().commits, 2);
        assert!(sys.stats().aborts >= 1, "same-loc RMWs must conflict");
        assert_eq!(sys.criteria_surprises(), 0);
        assert!(check_machine(sys.machine()).is_serializable());
    }

    #[test]
    fn tl2_runs_are_opaque() {
        let mut sys = Tl2System::new(vec![rmw(0, 1), rmw(1, 2), rmw(0, 3)]);
        run_round_robin(&mut sys, 8000);
        assert_eq!(check_trace(&sys.machine().trace()), OpacityVerdict::Opaque);
        assert!(check_machine(sys.machine()).is_serializable());
    }

    /// The headline experiment: across many seeds and contended
    /// workloads, TL2's metadata validation is never contradicted by the
    /// machine's exact criteria — read/write sets soundly approximate
    /// PUSH criterion (ii)/(iii).
    #[test]
    fn tl2_validation_approximates_criteria_soundly() {
        use pushpull_harness_seedless::rand_sched;
        for seed in 1..=30u64 {
            let mut sys = Tl2System::new(vec![rmw(0, 1), rmw(0, 2), rmw(1, 3), rmw(1, 4)]);
            let mut state = seed;
            let mut ticks = 0;
            while !sys.is_done() {
                let t = rand_sched(&mut state, sys.thread_count());
                sys.tick(ThreadId(t)).unwrap();
                ticks += 1;
                assert!(ticks < 500_000, "seed {seed} diverged");
            }
            assert_eq!(sys.criteria_surprises(), 0, "seed {seed}");
            assert!(
                check_machine(sys.machine()).is_serializable(),
                "seed {seed}"
            );
        }
    }

    /// Tiny local xorshift scheduler so this crate's tests do not depend
    /// on the harness crate (which depends on this crate).
    mod pushpull_harness_seedless {
        pub fn rand_sched(state: &mut u64, n: usize) -> usize {
            let mut x = (*state).max(1);
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *state = x;
            (x % n as u64) as usize
        }
    }
}
