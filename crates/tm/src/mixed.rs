//! Mixed Boosting + HTM transactions — paper §7.
//!
//! One transaction touches *boosted* objects (a skip-list set and a hash
//! table, guarded by abstract locks, PUSHed at APP) and *HTM-managed*
//! integers (`size`, `x`, `y`: word-granularity eager conflict detection,
//! PUSHed at commit). The payoff of the PUSH/PULL model is that an HTM
//! abort can discard the cheap HTM effects while **leaving the expensive
//! boosted effects in the shared view**: UNPUSH the HTM words (possibly
//! out of the order they were pushed), UNAPP back past the aborted
//! access, and march forward again — Figure 7's rule sequence.
//!
//! [`MixedSpec`] is the product specification; [`MixedSystem`] is the
//! generic driver used by the benchmarks. The exact Figure 7 trace is
//! reproduced by driving the machine directly (see
//! `examples/boosting_htm.rs` and `tests/fig7_mixed.rs`).

use std::sync::{Arc, Mutex};

use pushpull_core::error::MachineError;
use pushpull_core::faults::HtmFault;
use pushpull_core::log::LocalFlag;
use pushpull_core::machine::Machine;
use pushpull_core::op::{OpId, ThreadId};
use pushpull_core::{Code, TxnHandle};
use pushpull_ds::locks::{AbstractLockManager, LockOutcome};
use pushpull_ds::memory::HtmConflicts;
use pushpull_spec::composite::{Either, Product};
use pushpull_spec::counter::{Counter, CtrMethod, CtrRet};
use pushpull_spec::kvmap::{KvMap, MapMethod, MapRet};
use pushpull_spec::rwmem::{Loc, MemMethod, MemRet, RwMem};
use pushpull_spec::set::{SetMethod, SetRet, SetSpec};

use crate::conflict::ConflictKeyed;
use crate::contention::{
    default_manager, ContentionManager, ContentionState, Gate, Governor, StarvationReport,
    WaitVerdict,
};
use crate::driver::{ParallelSystem, SystemStats, Tick, TmSystem, Worker};
use crate::util::{is_conflict, pull_committed_lenient};

/// The §7 composite specification: `((skiplist, hashT), (size, memory))`.
pub type MixedSpec = Product<Product<SetSpec, KvMap>, Product<Counter, RwMem>>;

/// Methods of [`MixedSpec`].
pub type MixedMethod = Either<Either<SetMethod, MapMethod>, Either<CtrMethod, MemMethod>>;

/// Return values of [`MixedSpec`].
pub type MixedRet = Either<Either<SetRet, MapRet>, Either<CtrRet, MemRet>>;

/// Builds the standard §7 specification instance.
pub fn mixed_spec() -> MixedSpec {
    Product::new(
        Product::new(SetSpec::new(), KvMap::new()),
        Product::new(Counter::new(), RwMem::new()),
    )
}

/// Method constructors mirroring §7's program text.
pub mod methods {
    use super::*;

    /// `skiplist.insert/remove/contains(x)`.
    pub fn skiplist(m: SetMethod) -> MixedMethod {
        Either::L(Either::L(m))
    }

    /// `hashT.put/get/…`.
    pub fn hash_table(m: MapMethod) -> MixedMethod {
        Either::L(Either::R(m))
    }

    /// `size++` / `size` reads (HTM-managed counter).
    pub fn size(m: CtrMethod) -> MixedMethod {
        Either::R(Either::L(m))
    }

    /// HTM-managed integer reads/writes (`x`, `y`, …).
    pub fn mem(m: MemMethod) -> MixedMethod {
        Either::R(Either::R(m))
    }
}

/// HTM access-tracking granules of the mixed system: the `size` word and
/// the memory words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HtmWord {
    /// The boosted-at-memory-level `size` integer.
    Size,
    /// An ordinary memory word.
    Mem(Loc),
}

/// Is this method HTM-managed (right component)?
pub fn is_htm(m: &MixedMethod) -> bool {
    matches!(m, Either::R(_))
}

fn htm_access(m: &MixedMethod) -> Option<(HtmWord, bool)> {
    // (word, is_write)
    match m {
        Either::R(Either::L(CtrMethod::Add(_))) => Some((HtmWord::Size, true)),
        Either::R(Either::L(CtrMethod::Get)) => Some((HtmWord::Size, false)),
        Either::R(Either::R(MemMethod::Read(l))) => Some((HtmWord::Mem(*l), false)),
        Either::R(Either::R(MemMethod::Write(l, _))) => Some((HtmWord::Mem(*l), true)),
        Either::L(_) => None,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Begin,
    Running,
}

/// The mixed Boosting + HTM driver.
///
/// # Examples
///
/// ```
/// use pushpull_tm::mixed::{MixedSystem, methods, mixed_spec};
/// use pushpull_tm::driver::TmSystem;
/// use pushpull_spec::set::SetMethod;
/// use pushpull_spec::counter::CtrMethod;
/// use pushpull_core::lang::Code;
/// use pushpull_core::op::ThreadId;
///
/// let prog = vec![Code::seq_all(vec![
///     Code::method(methods::skiplist(SetMethod::Add(1))),
///     Code::method(methods::size(CtrMethod::Add(1))),
/// ])];
/// let mut sys = MixedSystem::new(mixed_spec(), vec![prog]);
/// while !sys.is_done() {
///     sys.tick(ThreadId(0))?;
/// }
/// assert_eq!(sys.stats().commits, 1);
/// # Ok::<(), pushpull_core::error::MachineError>(())
/// ```
#[derive(Debug)]
pub struct MixedSystem {
    machine: Machine<MixedSpec>,
    shared: MixedShared,
    threads: Vec<MixedThread>,
    contention: Arc<ContentionState>,
    governors: Vec<Governor>,
}

/// The mixed driver's cross-thread state: abstract locks for the boosted
/// components, the simulated HTM tracker for the word components. Each
/// sits behind a short-held mutex.
#[derive(Debug)]
struct MixedShared {
    locks: Mutex<AbstractLockManager<<MixedSpec as ConflictKeyed>::LockKey>>,
    tracker: Mutex<HtmConflicts<HtmWord>>,
}

/// Per-thread driver state, owned by exactly one worker.
#[derive(Debug, Clone)]
struct MixedThread {
    phase: Phase,
    stats: SystemStats,
    partial_htm_aborts: u64,
}

impl Default for MixedThread {
    fn default() -> Self {
        Self {
            phase: Phase::Begin,
            stats: SystemStats::default(),
            partial_htm_aborts: 0,
        }
    }
}

fn full_abort(
    shared: &MixedShared,
    h: &mut TxnHandle<MixedSpec>,
    t: &mut MixedThread,
    gov: &mut Governor,
) -> Result<Tick, MachineError> {
    let txn = h.txn();
    h.abort_and_retry()?;
    shared
        .locks
        .lock()
        .expect("lock manager poisoned")
        .release_all(txn);
    shared
        .tracker
        .lock()
        .expect("conflict tracker poisoned")
        .clear(txn);
    t.phase = Phase::Begin;
    t.stats.aborts += 1;
    gov.on_abort();
    Ok(Tick::Aborted)
}

/// The §7 move: discard trailing (necessarily HTM) unpushed effects
/// while leaving the pushed boosted effects in the shared view, then
/// resume forward execution. Re-records the surviving HTM accesses.
fn partial_htm_abort(
    shared: &MixedShared,
    h: &mut TxnHandle<MixedSpec>,
    t: &mut MixedThread,
    gov: &mut Governor,
) -> Result<Tick, MachineError> {
    let txn = h.txn();
    // UNAPP the trailing npshd entries (HTM ops are npshd until
    // commit; boosted ops are pushed at APP, so a pshd entry is the
    // rewind boundary).
    loop {
        let last_is_npshd = h
            .local()
            .entries()
            .last()
            .map(|e| e.flag.is_not_pushed())
            .unwrap_or(false);
        if !last_is_npshd {
            break;
        }
        h.unapp()?;
    }
    // Rebuild the tracker from the surviving npshd entries (there are
    // none at the tail now, but earlier HTM ops may survive between
    // pushed boosted ops — they cannot, actually: npshd entries are
    // contiguous at the tail only when every boosted op pushed at
    // APP; re-scan to stay robust).
    shared
        .tracker
        .lock()
        .expect("conflict tracker poisoned")
        .clear(txn);
    let survivors: Vec<MixedMethod> = h
        .local()
        .iter()
        .filter(|e| matches!(e.flag, LocalFlag::NotPushed { .. }))
        .map(|e| e.op.method)
        .collect();
    for m in survivors {
        if let Some((w, is_write)) = htm_access(&m) {
            let res = {
                let mut tr = shared.tracker.lock().expect("conflict tracker poisoned");
                if is_write {
                    tr.record_write(txn, w)
                } else {
                    tr.record_read(txn, w)
                }
            };
            if res.is_err() {
                // A surviving access still conflicts: give up fully.
                return full_abort(shared, h, t, gov);
            }
        }
    }
    t.partial_htm_aborts += 1;
    t.stats.aborts += 1;
    gov.on_abort();
    Ok(Tick::Aborted)
}

fn blocked_thread(
    shared: &MixedShared,
    h: &mut TxnHandle<MixedSpec>,
    t: &mut MixedThread,
    gov: &mut Governor,
) -> Result<Tick, MachineError> {
    t.stats.blocked_ticks += 1;
    match gov.on_blocked() {
        WaitVerdict::GiveUp => full_abort(shared, h, t, gov),
        WaitVerdict::Wait => Ok(Tick::Blocked),
    }
}

fn tick_boosted(
    shared: &MixedShared,
    h: &mut TxnHandle<MixedSpec>,
    t: &mut MixedThread,
    gov: &mut Governor,
    method: MixedMethod,
) -> Result<Tick, MachineError> {
    let txn = h.txn();
    for key in h.spec().lock_keys(&method) {
        // Bind the outcome first: matching on the locked expression would
        // hold the guard across the abort path and self-deadlock.
        let outcome = shared
            .locks
            .lock()
            .expect("lock manager poisoned")
            .try_lock(txn, key);
        match outcome {
            LockOutcome::Acquired | LockOutcome::AlreadyHeld => {}
            LockOutcome::Busy { .. } => return blocked_thread(shared, h, t, gov),
            LockOutcome::WouldDeadlock { .. } => return full_abort(shared, h, t, gov),
        }
    }
    pull_committed_lenient(h)?;
    let op: OpId = match h.app_method(&method) {
        Ok(op) => op,
        Err(MachineError::NoAllowedResult(_)) => return full_abort(shared, h, t, gov),
        Err(e) if is_conflict(&e) => return full_abort(shared, h, t, gov),
        Err(e) => return Err(e),
    };
    match h.push(op) {
        Ok(()) => {
            gov.on_progress();
            Ok(Tick::Progress)
        }
        Err(e) if is_conflict(&e) => {
            h.unapp()?;
            blocked_thread(shared, h, t, gov)
        }
        Err(e) => Err(e),
    }
}

fn tick_htm(
    shared: &MixedShared,
    h: &mut TxnHandle<MixedSpec>,
    t: &mut MixedThread,
    gov: &mut Governor,
    method: MixedMethod,
) -> Result<Tick, MachineError> {
    let txn = h.txn();
    // Injected hardware faults: a spurious coherence conflict takes the
    // §7 partial-rewind path; a capacity overflow discards the whole
    // transaction (overflow invalidates the entire HTM write buffer).
    match h.fault_at_htm_access() {
        Some(HtmFault::Conflict) => return partial_htm_abort(shared, h, t, gov),
        Some(HtmFault::Capacity) => return full_abort(shared, h, t, gov),
        None => {}
    }
    if let Some((w, is_write)) = htm_access(&method) {
        let res = {
            let mut tr = shared.tracker.lock().expect("conflict tracker poisoned");
            if is_write {
                tr.record_write(txn, w)
            } else {
                tr.record_read(txn, w)
            }
        };
        if res.is_err() {
            // HTM signals abort: rewind only the HTM suffix (§7).
            return partial_htm_abort(shared, h, t, gov);
        }
    }
    pull_committed_lenient(h)?;
    match h.app_method(&method) {
        Ok(_) => {
            gov.on_progress();
            Ok(Tick::Progress)
        }
        Err(MachineError::NoAllowedResult(_)) => full_abort(shared, h, t, gov),
        Err(e) if is_conflict(&e) => full_abort(shared, h, t, gov),
        Err(e) => Err(e),
    }
}

/// One mixed tick for one thread; dispatches each method to its boosted
/// or HTM path.
fn tick_thread(
    shared: &MixedShared,
    h: &mut TxnHandle<MixedSpec>,
    t: &mut MixedThread,
    gov: &mut Governor,
) -> Result<Tick, MachineError> {
    match gov.gate(h) {
        Gate::Done => return Ok(Tick::Done),
        Gate::Park => {
            t.stats.blocked_ticks += 1;
            return Ok(Tick::Blocked);
        }
        Gate::Kill => return full_abort(shared, h, t, gov),
        Gate::Run => {}
    }
    if t.phase == Phase::Begin {
        pull_committed_lenient(h)?;
        t.phase = Phase::Running;
        return Ok(Tick::Progress);
    }
    let options = h.step_options()?;
    if options.is_empty() {
        // Uninterleaved commit: PUSH the HTM suffix, then CMT.
        let txn = h.txn();
        return match h.push_all_and_commit() {
            Ok(committed) => {
                shared
                    .locks
                    .lock()
                    .expect("lock manager poisoned")
                    .release_all(committed);
                shared
                    .tracker
                    .lock()
                    .expect("conflict tracker poisoned")
                    .clear(txn);
                t.phase = Phase::Begin;
                t.stats.commits += 1;
                gov.on_commit();
                Ok(Tick::Committed)
            }
            Err(e) if is_conflict(&e) => full_abort(shared, h, t, gov),
            Err(e) => Err(e),
        };
    }
    let method = options[0].0;
    if is_htm(&method) {
        tick_htm(shared, h, t, gov, method)
    } else {
        tick_boosted(shared, h, t, gov, method)
    }
}

impl MixedSystem {
    /// Creates a system running `programs[i]` on thread `i` under the
    /// default contention manager.
    pub fn new(spec: MixedSpec, programs: Vec<Vec<Code<MixedMethod>>>) -> Self {
        Self::with_contention(spec, programs, default_manager())
    }

    /// Creates a system with an explicit contention-management policy.
    pub fn with_contention(
        spec: MixedSpec,
        programs: Vec<Vec<Code<MixedMethod>>>,
        cm: Arc<dyn ContentionManager>,
    ) -> Self {
        let mut machine = Machine::new(spec);
        let n = programs.len();
        for p in programs {
            machine.add_thread(p);
        }
        let contention = ContentionState::new(cm);
        let governors = contention.governors(n);
        Self {
            machine,
            shared: MixedShared {
                locks: Mutex::new(AbstractLockManager::new()),
                tracker: Mutex::new(HtmConflicts::new()),
            },
            threads: vec![MixedThread::default(); n],
            contention,
            governors,
        }
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Machine<MixedSpec> {
        &self.machine
    }

    /// Accumulated statistics (summed over threads).
    pub fn stats(&self) -> SystemStats {
        let mut stats: SystemStats = self.threads.iter().map(|t| t.stats).sum();
        self.contention.fold_into(&mut stats);
        crate::driver::fold_machine_counters(&self.machine, &mut stats);
        stats
    }

    /// HTM aborts resolved by *partial* rewind (boosted effects kept).
    pub fn partial_htm_aborts(&self) -> u64 {
        self.threads.iter().map(|t| t.partial_htm_aborts).sum()
    }
}

impl Clone for MixedSystem {
    fn clone(&self) -> Self {
        let contention = self.contention.fork();
        let governors = contention.governors(self.threads.len());
        Self {
            machine: self.machine.clone(),
            shared: MixedShared {
                locks: Mutex::new(
                    self.shared
                        .locks
                        .lock()
                        .expect("lock manager poisoned")
                        .clone(),
                ),
                tracker: Mutex::new(
                    self.shared
                        .tracker
                        .lock()
                        .expect("conflict tracker poisoned")
                        .clone(),
                ),
            },
            threads: self.threads.clone(),
            contention,
            governors,
        }
    }
}

impl TmSystem for MixedSystem {
    fn tick(&mut self, tid: ThreadId) -> Result<Tick, MachineError> {
        tick_thread(
            &self.shared,
            self.machine.handle_mut(tid)?,
            &mut self.threads[tid.0],
            &mut self.governors[tid.0],
        )
    }

    fn thread_count(&self) -> usize {
        self.machine.thread_count()
    }

    fn is_done(&self) -> bool {
        (0..self.machine.thread_count()).all(|t| {
            self.machine
                .thread(ThreadId(t))
                .map(|t| t.is_done())
                .unwrap_or(true)
        })
    }

    fn name(&self) -> &'static str {
        "mixed-boosting-htm"
    }

    fn starvation(&self) -> Option<StarvationReport> {
        Some(self.contention.report())
    }

    crate::driver::forward_machine_hooks!();
}

impl ParallelSystem for MixedSystem {
    fn workers(&mut self) -> Vec<Worker<'_>> {
        let shared = &self.shared;
        self.machine
            .handles_mut()
            .iter_mut()
            .zip(self.threads.iter_mut())
            .zip(self.governors.iter_mut())
            .map(|((h, t), gov)| Box::new(move || tick_thread(shared, h, t, gov)) as Worker<'_>)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::methods::*;
    use super::*;
    use pushpull_core::serializability::check_machine;

    fn run_round_robin(sys: &mut MixedSystem, max_ticks: usize) {
        let n = sys.thread_count();
        for i in 0..max_ticks {
            if sys.is_done() {
                return;
            }
            let _ = sys.tick(ThreadId(i % n)).unwrap();
        }
        panic!("system did not terminate within {max_ticks} ticks");
    }

    /// The §7 transaction: skiplist.insert(k); size++; hashT.put(k,v); x++.
    fn section7_prog(k: u64, x_loc: u32) -> Vec<Code<MixedMethod>> {
        vec![Code::seq_all(vec![
            Code::method(skiplist(SetMethod::Add(k))),
            Code::method(size(CtrMethod::Add(1))),
            Code::method(hash_table(MapMethod::Put(k, k as i64))),
            Code::method(mem(MemMethod::Write(Loc(x_loc), 1))),
        ])]
    }

    #[test]
    fn solo_mixed_transaction_commits() {
        let mut sys = MixedSystem::new(mixed_spec(), vec![section7_prog(1, 0)]);
        run_round_robin(&mut sys, 200);
        assert_eq!(sys.stats().commits, 1);
        assert_eq!(sys.stats().aborts, 0);
        assert!(check_machine(sys.machine()).is_serializable());
        // Boosted ops pushed at APP; HTM ops pushed in the commit burst.
        let names = sys.machine().trace().rule_names(ThreadId(0));
        let apps = names.iter().filter(|n| **n == "APP").count();
        let pushes = names.iter().filter(|n| **n == "PUSH").count();
        assert_eq!(apps, 4);
        assert_eq!(pushes, 4);
    }

    #[test]
    fn disjoint_mixed_transactions_run_concurrently() {
        let mut sys =
            MixedSystem::new(mixed_spec(), vec![section7_prog(1, 0), section7_prog(2, 1)]);
        run_round_robin(&mut sys, 2000);
        assert_eq!(sys.stats().commits, 2);
        let report = check_machine(sys.machine());
        assert!(report.is_serializable(), "{report}");
    }

    #[test]
    fn htm_word_contention_causes_aborts_but_stays_serializable() {
        // Same x word: HTM conflict; same size word: size++ commutes at
        // the counter level BUT is HTM-tracked here, so it conflicts too.
        let mut sys =
            MixedSystem::new(mixed_spec(), vec![section7_prog(1, 0), section7_prog(2, 0)]);
        run_round_robin(&mut sys, 4000);
        assert_eq!(sys.stats().commits, 2);
        assert!(sys.stats().aborts >= 1);
        assert!(check_machine(sys.machine()).is_serializable());
    }

    #[test]
    fn partial_htm_abort_preserves_boosted_pushes() {
        // T0 runs the §7 transaction up to (and including) size++ and
        // x-write applied; T1 then writes x via HTM, forcing T0's next
        // HTM access… instead, script T0 past its HTM ops, then have T1
        // conflict on the size word so T0's *surviving* access conflicts.
        let mut sys = MixedSystem::new(
            mixed_spec(),
            vec![
                section7_prog(1, 0),
                vec![Code::method(mem(MemMethod::Write(Loc(0), 7)))],
            ],
        );
        // T0: begin, insert(boosted), size++(HTM), put(boosted), x-write(HTM app only).
        for _ in 0..5 {
            sys.tick(ThreadId(0)).unwrap();
        }
        assert_eq!(sys.machine().global().len(), 2, "two boosted pushes in G");
        // T1 begins, then its write to word x conflicts with T0's tracked
        // write → T1 aborts itself (requester-loses).
        assert_eq!(sys.tick(ThreadId(1)).unwrap(), Tick::Progress);
        let t = sys.tick(ThreadId(1)).unwrap();
        assert_eq!(t, Tick::Aborted);
        // T0 commits: pushes size++ and x, CMT.
        let t = sys.tick(ThreadId(0)).unwrap();
        assert_eq!(t, Tick::Committed);
        run_round_robin(&mut sys, 2000);
        assert_eq!(sys.stats().commits, 2);
        assert!(check_machine(sys.machine()).is_serializable());
    }
}
