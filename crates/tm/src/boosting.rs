//! Transactional boosting (Herlihy & Koskinen \[11\]) — the pessimistic,
//! abstract-conflict algorithm of Figure 2 and §6.3.
//!
//! Rule pattern (Figure 2's right column):
//!
//! * on each operation: acquire the method's abstract lock(s), implicitly
//!   PULL the committed shared state, then **APP; PUSH** — effects go to
//!   the shared view immediately ("modifications are made directly to the
//!   shared state");
//! * on abort (deadlock or forced): **UNPUSH; UNAPP** in reverse order —
//!   realized by real implementations as inverse operations;
//! * on completion: **CMT**, then release the abstract locks.
//!
//! The abstract locks make PUSH criterion (ii) hold by construction for
//! key-local methods (distinct keys ⇒ movers, per the spec's tables).
//! For methods whose conflicts exclusive locks cannot express (e.g.
//! lock-free commutative `Add` vs a `Get`), a failing PUSH criterion is
//! handled as a conflict: the driver waits briefly, then aborts — the
//! checked machine guarantees nothing unserializable ever slips through.

use std::sync::Mutex;

use pushpull_core::error::MachineError;
use pushpull_core::machine::Machine;
use pushpull_core::op::{OpId, ThreadId};
use pushpull_core::{Code, TxnHandle};
use pushpull_ds::locks::{AbstractLockManager, LockOutcome};

use crate::conflict::ConflictKeyed;
use crate::driver::{ParallelSystem, SystemStats, Tick, TmSystem, Worker};
use crate::util::{is_conflict, pull_committed_lenient};

/// How many consecutive blocked ticks a thread tolerates before aborting
/// (breaks push-wait/lock-wait livelocks the waits-for graph cannot see).
const BLOCK_ABORT_THRESHOLD: u32 = 24;

/// A transactional-boosting system over any [`ConflictKeyed`]
/// specification.
///
/// # Examples
///
/// ```
/// use pushpull_tm::boosting::BoostingSystem;
/// use pushpull_tm::driver::{Tick, TmSystem};
/// use pushpull_spec::kvmap::{KvMap, MapMethod};
/// use pushpull_core::lang::Code;
/// use pushpull_core::op::ThreadId;
///
/// // Two single-op transactions on distinct keys run without conflict.
/// let mut sys = BoostingSystem::new(
///     KvMap::new(),
///     vec![
///         vec![Code::method(MapMethod::Put(1, 10))],
///         vec![Code::method(MapMethod::Put(2, 20))],
///     ],
/// );
/// while !sys.is_done() {
///     for t in 0..sys.thread_count() {
///         sys.tick(ThreadId(t))?;
///     }
/// }
/// assert_eq!(sys.stats().commits, 2);
/// assert_eq!(sys.stats().aborts, 0);
/// # Ok::<(), pushpull_core::error::MachineError>(())
/// ```
#[derive(Debug)]
pub struct BoostingSystem<S: ConflictKeyed> {
    machine: Machine<S>,
    shared: BoostShared<S::LockKey>,
    threads: Vec<BoostThread>,
}

/// Boosting's cross-thread state: the abstract lock manager and the
/// forced-abort test hook, each behind a short-held mutex.
#[derive(Debug)]
struct BoostShared<K> {
    locks: Mutex<AbstractLockManager<K>>,
    /// Thread indices that must abort at their next tick (test hook for
    /// the Figure 2 abort path).
    forced_aborts: Mutex<Vec<ThreadId>>,
}

/// Per-thread driver state, owned by exactly one worker.
#[derive(Debug, Clone, Default)]
struct BoostThread {
    blocked_streak: u32,
    stats: SystemStats,
}

fn abort_thread<S: ConflictKeyed>(
    shared: &BoostShared<S::LockKey>,
    h: &mut TxnHandle<S>,
    t: &mut BoostThread,
) -> Result<Tick, MachineError> {
    let txn = h.txn();
    // Figure 2's abort path: UNPUSH; UNAPP in reverse order
    // (rewind_all walks the local log from the tail), then unlock.
    h.abort_and_retry()?;
    shared
        .locks
        .lock()
        .expect("lock manager poisoned")
        .release_all(txn);
    t.blocked_streak = 0;
    t.stats.aborts += 1;
    Ok(Tick::Aborted)
}

fn blocked_thread<S: ConflictKeyed>(
    shared: &BoostShared<S::LockKey>,
    h: &mut TxnHandle<S>,
    t: &mut BoostThread,
) -> Result<Tick, MachineError> {
    t.blocked_streak += 1;
    t.stats.blocked_ticks += 1;
    if t.blocked_streak >= BLOCK_ABORT_THRESHOLD {
        return abort_thread(shared, h, t);
    }
    Ok(Tick::Blocked)
}

/// One boosting tick for one thread: abstract locks are taken briefly per
/// method; APP runs on the thread's own handle with no system-wide lock.
fn tick_thread<S: ConflictKeyed>(
    shared: &BoostShared<S::LockKey>,
    h: &mut TxnHandle<S>,
    t: &mut BoostThread,
) -> Result<Tick, MachineError> {
    if h.is_done() {
        return Ok(Tick::Done);
    }
    {
        let mut forced = shared
            .forced_aborts
            .lock()
            .expect("forced-abort list poisoned");
        if let Some(pos) = forced.iter().position(|f| *f == h.tid()) {
            forced.remove(pos);
            drop(forced);
            return abort_thread(shared, h, t);
        }
    }
    let txn = h.txn();
    // Commit once no method remains: boosting runs each transaction
    // to completion in program order.
    let options = h.step_options()?;
    if options.is_empty() {
        let committed = h.commit()?;
        shared
            .locks
            .lock()
            .expect("lock manager poisoned")
            .release_all(committed);
        t.blocked_streak = 0;
        t.stats.commits += 1;
        return Ok(Tick::Committed);
    }
    let (method, _) = &options[0];
    // Acquire this method's abstract locks (2PL: held to commit).
    for key in h.spec().lock_keys(method) {
        // Bind the outcome first: matching on the locked expression would
        // hold the guard across the abort path and self-deadlock.
        let outcome = shared
            .locks
            .lock()
            .expect("lock manager poisoned")
            .try_lock(txn, key);
        match outcome {
            LockOutcome::Acquired | LockOutcome::AlreadyHeld => {}
            LockOutcome::Busy { .. } => return blocked_thread(shared, h, t),
            LockOutcome::WouldDeadlock { .. } => return abort_thread(shared, h, t),
        }
    }
    // Implicit PULL: refresh the committed shared view (the paper's
    // "the local view is the same as the shared view").
    pull_committed_lenient(h)?;
    // APP, then immediately PUSH.
    let method = method.clone();
    let op: OpId = match h.app_method(&method) {
        Ok(op) => op,
        Err(MachineError::NoAllowedResult(_)) => return abort_thread(shared, h, t),
        Err(e) => return Err(e),
    };
    match h.push(op) {
        Ok(()) => {
            t.blocked_streak = 0;
            Ok(Tick::Progress)
        }
        Err(e) if is_conflict(&e) => {
            // Criterion (ii)/(iii) conflict the locks could not
            // express: undo the APP and wait for the conflicting
            // transaction to commit (abort if it takes too long).
            h.unapp()?;
            blocked_thread(shared, h, t)
        }
        Err(e) => Err(e),
    }
}

impl<S: ConflictKeyed> BoostingSystem<S> {
    /// Creates a system running `programs[i]` (a list of transaction
    /// bodies) on thread `i`.
    pub fn new(spec: S, programs: Vec<Vec<Code<S::Method>>>) -> Self {
        let mut machine = Machine::new(spec);
        let n = programs.len();
        for p in programs {
            machine.add_thread(p);
        }
        Self {
            machine,
            shared: BoostShared {
                locks: Mutex::new(AbstractLockManager::new()),
                forced_aborts: Mutex::new(Vec::new()),
            },
            threads: vec![BoostThread::default(); n],
        }
    }

    /// The underlying machine (for oracles, traces, invariant checks).
    pub fn machine(&self) -> &Machine<S> {
        &self.machine
    }

    /// Accumulated statistics (summed over threads).
    pub fn stats(&self) -> SystemStats {
        self.threads.iter().map(|t| t.stats).sum()
    }

    /// Forces the thread's current transaction to abort at its next tick
    /// — the Figure 2 "if aborting" path, exercised by tests and the
    /// examples.
    pub fn force_abort(&mut self, tid: ThreadId) {
        self.shared
            .forced_aborts
            .lock()
            .expect("forced-abort list poisoned")
            .push(tid);
    }
}

impl<S: ConflictKeyed + Clone> Clone for BoostingSystem<S>
where
    S::LockKey: Clone,
{
    fn clone(&self) -> Self {
        Self {
            machine: self.machine.clone(),
            shared: BoostShared {
                locks: Mutex::new(
                    self.shared
                        .locks
                        .lock()
                        .expect("lock manager poisoned")
                        .clone(),
                ),
                forced_aborts: Mutex::new(
                    self.shared
                        .forced_aborts
                        .lock()
                        .expect("forced-abort list poisoned")
                        .clone(),
                ),
            },
            threads: self.threads.clone(),
        }
    }
}

impl<S: ConflictKeyed> TmSystem for BoostingSystem<S> {
    fn tick(&mut self, tid: ThreadId) -> Result<Tick, MachineError> {
        tick_thread(
            &self.shared,
            self.machine.handle_mut(tid)?,
            &mut self.threads[tid.0],
        )
    }

    fn thread_count(&self) -> usize {
        self.machine.thread_count()
    }

    fn is_done(&self) -> bool {
        (0..self.machine.thread_count()).all(|t| {
            self.machine
                .thread(ThreadId(t))
                .map(|t| t.is_done())
                .unwrap_or(true)
        })
    }

    fn name(&self) -> &'static str {
        "boosting"
    }
}

impl<S> ParallelSystem for BoostingSystem<S>
where
    S: ConflictKeyed + Send + Sync,
    S::Method: Send,
    S::Ret: Send,
    S::State: Send,
    S::LockKey: Send,
{
    fn workers(&mut self) -> Vec<Worker<'_>> {
        let shared = &self.shared;
        self.machine
            .handles_mut()
            .iter_mut()
            .zip(self.threads.iter_mut())
            .map(|(h, t)| Box::new(move || tick_thread(shared, h, t)) as Worker<'_>)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushpull_core::serializability::check_machine;
    use pushpull_spec::kvmap::{KvMap, MapMethod};
    use pushpull_spec::set::{SetMethod, SetSpec};

    fn run_round_robin<S: ConflictKeyed>(sys: &mut BoostingSystem<S>, max_ticks: usize) {
        let n = sys.thread_count();
        for i in 0..max_ticks {
            if sys.is_done() {
                return;
            }
            let _ = sys.tick(ThreadId(i % n)).unwrap();
        }
        panic!("system did not terminate within {max_ticks} ticks");
    }

    #[test]
    fn disjoint_key_transactions_commit_without_aborts() {
        let mut sys = BoostingSystem::new(
            KvMap::new(),
            vec![
                vec![Code::seq_all(vec![
                    Code::method(MapMethod::Put(1, 10)),
                    Code::method(MapMethod::Get(1)),
                ])],
                vec![Code::seq_all(vec![
                    Code::method(MapMethod::Put(2, 20)),
                    Code::method(MapMethod::Get(2)),
                ])],
            ],
        );
        run_round_robin(&mut sys, 1000);
        assert_eq!(sys.stats().commits, 2);
        assert_eq!(sys.stats().aborts, 0);
        assert!(check_machine(sys.machine()).is_serializable());
    }

    #[test]
    fn same_key_transactions_serialize_via_lock() {
        let mut sys = BoostingSystem::new(
            KvMap::new(),
            vec![
                vec![Code::seq_all(vec![
                    Code::method(MapMethod::Put(1, 10)),
                    Code::method(MapMethod::Get(1)),
                ])],
                vec![Code::seq_all(vec![
                    Code::method(MapMethod::Put(1, 20)),
                    Code::method(MapMethod::Get(1)),
                ])],
            ],
        );
        run_round_robin(&mut sys, 2000);
        assert_eq!(sys.stats().commits, 2);
        let report = check_machine(sys.machine());
        assert!(report.is_serializable(), "{report}");
        assert!(
            sys.stats().blocked_ticks > 0,
            "second thread must have waited"
        );
    }

    #[test]
    fn forced_abort_takes_the_unpush_unapp_path() {
        let mut sys = BoostingSystem::new(
            SetSpec::new(),
            vec![vec![Code::seq_all(vec![
                Code::method(SetMethod::Add(1)),
                Code::method(SetMethod::Add(2)),
            ])]],
        );
        // Apply+push the first op.
        assert_eq!(sys.tick(ThreadId(0)).unwrap(), Tick::Progress);
        sys.force_abort(ThreadId(0));
        assert_eq!(sys.tick(ThreadId(0)).unwrap(), Tick::Aborted);
        let names = sys.machine().trace().rule_names(ThreadId(0));
        // …, APP, PUSH, UNPUSH, UNAPP, abort, begin
        assert!(names.windows(2).any(|w| w == ["UNPUSH", "UNAPP"]));
        // Retry runs to completion.
        run_round_robin(&mut sys, 1000);
        assert_eq!(sys.stats().commits, 1);
        assert!(check_machine(sys.machine()).is_serializable());
    }

    #[test]
    fn deadlock_is_broken_by_abort() {
        // T0 locks key 1 then wants key 2; T1 locks key 2 then wants key 1.
        let prog = |a: u64, b: u64| {
            vec![Code::seq_all(vec![
                Code::method(MapMethod::Put(a, 1)),
                Code::method(MapMethod::Put(b, 2)),
            ])]
        };
        let mut sys = BoostingSystem::new(KvMap::new(), vec![prog(1, 2), prog(2, 1)]);
        run_round_robin(&mut sys, 4000);
        assert_eq!(sys.stats().commits, 2);
        assert!(
            sys.stats().aborts >= 1,
            "deadlock must have aborted someone"
        );
        assert!(check_machine(sys.machine()).is_serializable());
    }

    #[test]
    fn boosted_reads_see_committed_state() {
        let mut sys = BoostingSystem::new(
            KvMap::new(),
            vec![
                vec![Code::method(MapMethod::Put(7, 42))],
                vec![Code::method(MapMethod::Get(7))],
            ],
        );
        // Run T0 to commit first.
        while sys.machine().thread(ThreadId(0)).unwrap().commits() == 0 {
            sys.tick(ThreadId(0)).unwrap();
        }
        run_round_robin(&mut sys, 1000);
        // T1's get observed Some(42).
        let committed = sys.machine().committed_txns();
        let get_txn = committed.iter().find(|t| t.thread == ThreadId(1)).unwrap();
        assert_eq!(
            get_txn.ops[0].ret,
            pushpull_spec::kvmap::MapRet::Val(Some(42)),
        );
    }
}
