//! Transactional boosting (Herlihy & Koskinen \[11\]) — the pessimistic,
//! abstract-conflict algorithm of Figure 2 and §6.3.
//!
//! Rule pattern (Figure 2's right column):
//!
//! * on each operation: acquire the method's abstract lock(s), implicitly
//!   PULL the committed shared state, then **APP; PUSH** — effects go to
//!   the shared view immediately ("modifications are made directly to the
//!   shared state");
//! * on abort (deadlock or forced): **UNPUSH; UNAPP** in reverse order —
//!   realized by real implementations as inverse operations;
//! * on completion: **CMT**, then release the abstract locks.
//!
//! The abstract locks make PUSH criterion (ii) hold by construction for
//! key-local methods (distinct keys ⇒ movers, per the spec's tables).
//! For methods whose conflicts exclusive locks cannot express (e.g.
//! lock-free commutative `Add` vs a `Get`), a failing PUSH criterion is
//! handled as a conflict: the driver waits briefly, then aborts — the
//! checked machine guarantees nothing unserializable ever slips through.

use std::sync::{Arc, Mutex};

use pushpull_core::error::MachineError;
use pushpull_core::machine::Machine;
use pushpull_core::op::{OpId, ThreadId};
use pushpull_core::{Code, TxnHandle};
use pushpull_ds::locks::{AbstractLockManager, LockOutcome};

use crate::conflict::ConflictKeyed;
use crate::contention::{
    default_manager, ContentionManager, ContentionState, Gate, Governor, StarvationReport,
    WaitVerdict,
};
use crate::driver::{ParallelSystem, SystemStats, Tick, TmSystem, Worker};
use crate::util::{is_conflict, pull_committed_lenient};

/// A transactional-boosting system over any [`ConflictKeyed`]
/// specification.
///
/// # Examples
///
/// ```
/// use pushpull_tm::boosting::BoostingSystem;
/// use pushpull_tm::driver::{Tick, TmSystem};
/// use pushpull_spec::kvmap::{KvMap, MapMethod};
/// use pushpull_core::lang::Code;
/// use pushpull_core::op::ThreadId;
///
/// // Two single-op transactions on distinct keys run without conflict.
/// let mut sys = BoostingSystem::new(
///     KvMap::new(),
///     vec![
///         vec![Code::method(MapMethod::Put(1, 10))],
///         vec![Code::method(MapMethod::Put(2, 20))],
///     ],
/// );
/// while !sys.is_done() {
///     for t in 0..sys.thread_count() {
///         sys.tick(ThreadId(t))?;
///     }
/// }
/// assert_eq!(sys.stats().commits, 2);
/// assert_eq!(sys.stats().aborts, 0);
/// # Ok::<(), pushpull_core::error::MachineError>(())
/// ```
#[derive(Debug)]
pub struct BoostingSystem<S: ConflictKeyed> {
    machine: Machine<S>,
    shared: BoostShared<S::LockKey>,
    threads: Vec<BoostThread>,
    contention: Arc<ContentionState>,
    governors: Vec<Governor>,
}

/// Boosting's cross-thread state: the abstract lock manager and the
/// forced-abort test hook, each behind a short-held mutex.
#[derive(Debug)]
struct BoostShared<K> {
    locks: Mutex<AbstractLockManager<K>>,
    /// Thread indices that must abort at their next tick (test hook for
    /// the Figure 2 abort path).
    forced_aborts: Mutex<Vec<ThreadId>>,
}

/// Per-thread driver state, owned by exactly one worker.
#[derive(Debug, Clone, Default)]
struct BoostThread {
    stats: SystemStats,
}

fn abort_thread<S: ConflictKeyed>(
    shared: &BoostShared<S::LockKey>,
    h: &mut TxnHandle<S>,
    t: &mut BoostThread,
    gov: &mut Governor,
) -> Result<Tick, MachineError> {
    let txn = h.txn();
    // §4's "UNPUSH is typically implemented via inverse operations":
    // derive the undo log — the spec-level inverse of each live
    // operation, in reverse order — before rewinding. The rollback
    // itself still runs through the back rules (traces are unchanged);
    // the derived program is what a boosted runtime would execute
    // against the shared object, and it feeds the nesting counters.
    // Specs without an inverse oracle fall back to plain rewind
    // accounting.
    let _undo = h.undo_program();
    // Figure 2's abort path: UNPUSH; UNAPP in reverse order
    // (rewind_all walks the local log from the tail), then unlock.
    h.abort_and_retry()?;
    shared
        .locks
        .lock()
        .expect("lock manager poisoned")
        .release_all(txn);
    t.stats.aborts += 1;
    gov.on_abort();
    Ok(Tick::Aborted)
}

fn blocked_thread<S: ConflictKeyed>(
    shared: &BoostShared<S::LockKey>,
    h: &mut TxnHandle<S>,
    t: &mut BoostThread,
    gov: &mut Governor,
) -> Result<Tick, MachineError> {
    t.stats.blocked_ticks += 1;
    // The contention manager decides how long to tolerate push-wait /
    // lock-wait livelocks the waits-for graph cannot see.
    match gov.on_blocked() {
        WaitVerdict::GiveUp => abort_thread(shared, h, t, gov),
        WaitVerdict::Wait => Ok(Tick::Blocked),
    }
}

/// One boosting tick for one thread: abstract locks are taken briefly per
/// method; APP runs on the thread's own handle with no system-wide lock.
fn tick_thread<S: ConflictKeyed>(
    shared: &BoostShared<S::LockKey>,
    h: &mut TxnHandle<S>,
    t: &mut BoostThread,
    gov: &mut Governor,
) -> Result<Tick, MachineError> {
    match gov.gate(h) {
        Gate::Done => return Ok(Tick::Done),
        Gate::Park => {
            t.stats.blocked_ticks += 1;
            return Ok(Tick::Blocked);
        }
        Gate::Kill => return abort_thread(shared, h, t, gov),
        Gate::Run => {}
    }
    {
        let mut forced = shared
            .forced_aborts
            .lock()
            .expect("forced-abort list poisoned");
        if let Some(pos) = forced.iter().position(|f| *f == h.tid()) {
            forced.remove(pos);
            drop(forced);
            return abort_thread(shared, h, t, gov);
        }
    }
    let txn = h.txn();
    // Commit once no method remains: boosting runs each transaction
    // to completion in program order.
    let options = h.step_options()?;
    if options.is_empty() {
        let committed = match h.commit() {
            Ok(c) => c,
            Err(e) if is_conflict(&e) => return abort_thread(shared, h, t, gov),
            Err(e) => return Err(e),
        };
        shared
            .locks
            .lock()
            .expect("lock manager poisoned")
            .release_all(committed);
        t.stats.commits += 1;
        gov.on_commit();
        return Ok(Tick::Committed);
    }
    let (method, _) = &options[0];
    // Acquire this method's abstract locks (2PL: held to commit).
    for key in h.spec().lock_keys(method) {
        // Bind the outcome first: matching on the locked expression would
        // hold the guard across the abort path and self-deadlock.
        let outcome = shared
            .locks
            .lock()
            .expect("lock manager poisoned")
            .try_lock(txn, key);
        match outcome {
            LockOutcome::Acquired | LockOutcome::AlreadyHeld => {}
            LockOutcome::Busy { .. } => return blocked_thread(shared, h, t, gov),
            LockOutcome::WouldDeadlock { .. } => return abort_thread(shared, h, t, gov),
        }
    }
    // Implicit PULL: refresh the committed shared view (the paper's
    // "the local view is the same as the shared view").
    pull_committed_lenient(h)?;
    // APP, then immediately PUSH.
    let method = method.clone();
    let op: OpId = match h.app_method(&method) {
        Ok(op) => op,
        Err(MachineError::NoAllowedResult(_)) => return abort_thread(shared, h, t, gov),
        Err(e) if is_conflict(&e) => return abort_thread(shared, h, t, gov),
        Err(e) => return Err(e),
    };
    match h.push(op) {
        Ok(()) => {
            gov.on_progress();
            Ok(Tick::Progress)
        }
        Err(e) if is_conflict(&e) => {
            // Criterion (ii)/(iii) conflict the locks could not
            // express: undo the APP and wait for the conflicting
            // transaction to commit (abort if it takes too long).
            h.unapp()?;
            blocked_thread(shared, h, t, gov)
        }
        Err(e) => Err(e),
    }
}

impl<S: ConflictKeyed> BoostingSystem<S> {
    /// Creates a system running `programs[i]` (a list of transaction
    /// bodies) on thread `i`.
    pub fn new(spec: S, programs: Vec<Vec<Code<S::Method>>>) -> Self {
        Self::with_contention(spec, programs, default_manager())
    }

    /// Creates a system with an explicit contention-management policy.
    pub fn with_contention(
        spec: S,
        programs: Vec<Vec<Code<S::Method>>>,
        cm: Arc<dyn ContentionManager>,
    ) -> Self {
        let mut machine = Machine::new(spec);
        let n = programs.len();
        for p in programs {
            machine.add_thread(p);
        }
        let contention = ContentionState::new(cm);
        let governors = contention.governors(n);
        Self {
            machine,
            shared: BoostShared {
                locks: Mutex::new(AbstractLockManager::new()),
                forced_aborts: Mutex::new(Vec::new()),
            },
            threads: vec![BoostThread::default(); n],
            contention,
            governors,
        }
    }

    /// The underlying machine (for oracles, traces, invariant checks).
    pub fn machine(&self) -> &Machine<S> {
        &self.machine
    }

    /// Accumulated statistics (summed over threads).
    pub fn stats(&self) -> SystemStats {
        let mut stats: SystemStats = self.threads.iter().map(|t| t.stats).sum();
        self.contention.fold_into(&mut stats);
        crate::driver::fold_machine_counters(&self.machine, &mut stats);
        stats
    }

    /// Forces the thread's current transaction to abort at its next tick
    /// — the Figure 2 "if aborting" path, exercised by tests and the
    /// examples.
    pub fn force_abort(&mut self, tid: ThreadId) {
        self.shared
            .forced_aborts
            .lock()
            .expect("forced-abort list poisoned")
            .push(tid);
    }
}

impl<S: ConflictKeyed + Clone> Clone for BoostingSystem<S>
where
    S::LockKey: Clone,
{
    fn clone(&self) -> Self {
        let contention = self.contention.fork();
        let governors = contention.governors(self.threads.len());
        Self {
            machine: self.machine.clone(),
            shared: BoostShared {
                locks: Mutex::new(
                    self.shared
                        .locks
                        .lock()
                        .expect("lock manager poisoned")
                        .clone(),
                ),
                forced_aborts: Mutex::new(
                    self.shared
                        .forced_aborts
                        .lock()
                        .expect("forced-abort list poisoned")
                        .clone(),
                ),
            },
            threads: self.threads.clone(),
            contention,
            governors,
        }
    }
}

impl<S: ConflictKeyed> TmSystem for BoostingSystem<S> {
    fn tick(&mut self, tid: ThreadId) -> Result<Tick, MachineError> {
        tick_thread(
            &self.shared,
            self.machine.handle_mut(tid)?,
            &mut self.threads[tid.0],
            &mut self.governors[tid.0],
        )
    }

    fn thread_count(&self) -> usize {
        self.machine.thread_count()
    }

    fn is_done(&self) -> bool {
        (0..self.machine.thread_count()).all(|t| {
            self.machine
                .thread(ThreadId(t))
                .map(|t| t.is_done())
                .unwrap_or(true)
        })
    }

    fn name(&self) -> &'static str {
        "boosting"
    }

    fn starvation(&self) -> Option<StarvationReport> {
        Some(self.contention.report())
    }

    crate::driver::forward_machine_hooks!();
}

impl<S> ParallelSystem for BoostingSystem<S>
where
    S: ConflictKeyed + Send + Sync,
    S::Method: Send + Sync,
    S::Ret: Send + Sync,
    S::State: Send + Sync,
    S::LockKey: Send,
{
    fn workers(&mut self) -> Vec<Worker<'_>> {
        let shared = &self.shared;
        self.machine
            .handles_mut()
            .iter_mut()
            .zip(self.threads.iter_mut())
            .zip(self.governors.iter_mut())
            .map(|((h, t), gov)| Box::new(move || tick_thread(shared, h, t, gov)) as Worker<'_>)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushpull_core::serializability::check_machine;
    use pushpull_spec::kvmap::{KvMap, MapMethod};
    use pushpull_spec::set::{SetMethod, SetSpec};

    fn run_round_robin<S: ConflictKeyed>(sys: &mut BoostingSystem<S>, max_ticks: usize) {
        let n = sys.thread_count();
        for i in 0..max_ticks {
            if sys.is_done() {
                return;
            }
            let _ = sys.tick(ThreadId(i % n)).unwrap();
        }
        panic!("system did not terminate within {max_ticks} ticks");
    }

    #[test]
    fn disjoint_key_transactions_commit_without_aborts() {
        let mut sys = BoostingSystem::new(
            KvMap::new(),
            vec![
                vec![Code::seq_all(vec![
                    Code::method(MapMethod::Put(1, 10)),
                    Code::method(MapMethod::Get(1)),
                ])],
                vec![Code::seq_all(vec![
                    Code::method(MapMethod::Put(2, 20)),
                    Code::method(MapMethod::Get(2)),
                ])],
            ],
        );
        run_round_robin(&mut sys, 1000);
        assert_eq!(sys.stats().commits, 2);
        assert_eq!(sys.stats().aborts, 0);
        assert!(check_machine(sys.machine()).is_serializable());
    }

    #[test]
    fn same_key_transactions_serialize_via_lock() {
        let mut sys = BoostingSystem::new(
            KvMap::new(),
            vec![
                vec![Code::seq_all(vec![
                    Code::method(MapMethod::Put(1, 10)),
                    Code::method(MapMethod::Get(1)),
                ])],
                vec![Code::seq_all(vec![
                    Code::method(MapMethod::Put(1, 20)),
                    Code::method(MapMethod::Get(1)),
                ])],
            ],
        );
        run_round_robin(&mut sys, 2000);
        assert_eq!(sys.stats().commits, 2);
        let report = check_machine(sys.machine());
        assert!(report.is_serializable(), "{report}");
        assert!(
            sys.stats().blocked_ticks > 0,
            "second thread must have waited"
        );
    }

    #[test]
    fn forced_abort_takes_the_unpush_unapp_path() {
        let mut sys = BoostingSystem::new(
            SetSpec::new(),
            vec![vec![Code::seq_all(vec![
                Code::method(SetMethod::Add(1)),
                Code::method(SetMethod::Add(2)),
            ])]],
        );
        // Apply+push the first op.
        assert_eq!(sys.tick(ThreadId(0)).unwrap(), Tick::Progress);
        sys.force_abort(ThreadId(0));
        assert_eq!(sys.tick(ThreadId(0)).unwrap(), Tick::Aborted);
        let names = sys.machine().trace().rule_names(ThreadId(0));
        // …, APP, PUSH, UNPUSH, UNAPP, abort, begin
        assert!(names.windows(2).any(|w| w == ["UNPUSH", "UNAPP"]));
        // Retry runs to completion.
        run_round_robin(&mut sys, 1000);
        assert_eq!(sys.stats().commits, 1);
        assert!(check_machine(sys.machine()).is_serializable());
    }

    #[test]
    fn deadlock_is_broken_by_abort() {
        // T0 locks key 1 then wants key 2; T1 locks key 2 then wants key 1.
        let prog = |a: u64, b: u64| {
            vec![Code::seq_all(vec![
                Code::method(MapMethod::Put(a, 1)),
                Code::method(MapMethod::Put(b, 2)),
            ])]
        };
        let mut sys = BoostingSystem::new(KvMap::new(), vec![prog(1, 2), prog(2, 1)]);
        run_round_robin(&mut sys, 4000);
        assert_eq!(sys.stats().commits, 2);
        assert!(
            sys.stats().aborts >= 1,
            "deadlock must have aborted someone"
        );
        assert!(check_machine(sys.machine()).is_serializable());
    }

    #[test]
    fn boosted_reads_see_committed_state() {
        let mut sys = BoostingSystem::new(
            KvMap::new(),
            vec![
                vec![Code::method(MapMethod::Put(7, 42))],
                vec![Code::method(MapMethod::Get(7))],
            ],
        );
        // Run T0 to commit first.
        while sys.machine().thread(ThreadId(0)).unwrap().commits() == 0 {
            sys.tick(ThreadId(0)).unwrap();
        }
        run_round_robin(&mut sys, 1000);
        // T1's get observed Some(42).
        let committed = sys.machine().committed_txns();
        let get_txn = committed.iter().find(|t| t.thread == ThreadId(1)).unwrap();
        assert_eq!(
            get_txn.ops[0].ret,
            pushpull_spec::kvmap::MapRet::Val(Some(42)),
        );
    }
}
