//! The common interface of transactional-memory systems built on the
//! PUSH/PULL machine.
//!
//! Each algorithm class of §6 is a *system*: a machine plus whatever
//! implementation state the algorithm keeps (abstract locks, version
//! clocks, dependency sets, …). A system makes progress in *ticks*: one
//! tick performs a bounded burst of machine rules on behalf of one
//! thread. Schedulers — random, round-robin, or the exhaustive model
//! checker in `pushpull-harness` — decide which thread ticks next, which
//! is precisely how interleavings arise in the model.
//!
//! Systems are `Clone` so the model checker can branch on scheduler
//! choices; all shared implementation state therefore lives *inside* the
//! system value (no `Arc` aliasing).

use std::sync::Arc;

use pushpull_core::error::MachineError;
use pushpull_core::op::ThreadId;
use pushpull_core::{RulePattern, StaticDischarge};

/// The rule pattern every driver in this crate declares: all seven rules.
///
/// §6 of the paper distinguishes algorithm classes by *which rules fire
/// when* (e.g. pessimistic readers pull before every read, optimistic
/// ones pull at commit). In this executable rendering all ten drivers
/// share the abort path (`abort_and_retry` → UNPULL/UNPUSH/UNAPP) and
/// the lenient pull helper, so at the rule-*set* level they coincide; the
/// linter checks the declared set against the workload's `required` rules
/// and flags declared abort-path rules that are provably conflict-dead.
pub fn full_rule_pattern() -> RulePattern {
    RulePattern::all()
}

/// The outcome of one scheduler tick on one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tick {
    /// Applied at least one rule; more work remains.
    Progress,
    /// The thread's current transaction committed.
    Committed,
    /// The thread's current transaction aborted (and was re-begun).
    Aborted,
    /// The thread cannot make progress right now (e.g. waiting on a lock
    /// or on a dependency); schedule someone else.
    Blocked,
    /// The thread has no transactions left.
    Done,
}

/// A transactional-memory system driving a PUSH/PULL machine.
///
/// Implementors: [`BoostingSystem`](crate::boosting::BoostingSystem),
/// [`OptimisticSystem`](crate::optimistic::OptimisticSystem),
/// [`MatveevShavitSystem`](crate::pessimistic::MatveevShavitSystem),
/// [`IrrevocableSystem`](crate::irrevocable::IrrevocableSystem),
/// [`DependentSystem`](crate::dependent::DependentSystem),
/// [`HtmSystem`](crate::htm::HtmSystem) and
/// [`MixedSystem`](crate::mixed::MixedSystem).
pub trait TmSystem {
    /// Ticks one thread, performing a bounded burst of machine rules.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError`] only for *structural* misuse or criterion
    /// violations the algorithm cannot interpret as a conflict; expected
    /// conflicts are handled internally (abort/retry/block) and reported
    /// through [`Tick`].
    fn tick(&mut self, tid: ThreadId) -> Result<Tick, MachineError>;

    /// Number of threads in the system.
    fn thread_count(&self) -> usize;

    /// Have all threads completed all of their transactions?
    fn is_done(&self) -> bool;

    /// Short human-readable algorithm name (for reports).
    fn name(&self) -> &'static str;

    /// Starvation metrics from the system's contention manager, for
    /// systems that run one (all ten drivers do).
    fn starvation(&self) -> Option<crate::contention::StarvationReport> {
        None
    }

    /// The §6 rule pattern this driver expects to exercise, checked by
    /// the static linter's `pattern-divergence` lint. `None` opts out of
    /// the check; the in-crate drivers all return
    /// [`full_rule_pattern`].
    fn declared_pattern(&self) -> Option<RulePattern> {
        None
    }

    /// Installs (or, with `None`, clears) statically proven criteria
    /// facts on the underlying machine, so proven mover loops are elided
    /// at runtime; see
    /// [`GlobalState::set_static_discharge`](pushpull_core::GlobalState::set_static_discharge).
    ///
    /// The default is a no-op so wrapper systems without a machine still
    /// implement the trait; every in-crate driver forwards to its
    /// machine.
    fn set_static_discharge(&self, _facts: Option<Arc<StaticDischarge>>) {}

    /// Installs (or, with `None`, clears) a spec certificate on the
    /// underlying machine — the machine-checked verdict that the spec's
    /// footprint/mover declarations agree with the exhaustively derived
    /// ground truth, which strict mode
    /// ([`TmSystem::set_require_certificate`]) demands before arming any
    /// unsafe fast path. The default is a no-op so wrapper systems
    /// without a machine still implement the trait.
    fn install_certificate(&self, _cert: Option<Arc<pushpull_core::SpecCertificate>>) {}

    /// Turns strict certificate-gated arming on or off on the underlying
    /// machine (see
    /// [`Machine::set_require_certificate`](pushpull_core::Machine::set_require_certificate)).
    /// The default is a no-op.
    fn set_require_certificate(&self, _on: bool) {}

    /// The certificate gate's diagnostics from the underlying machine
    /// (refused arming requests, coarse demotions), or `None` for
    /// systems without a machine.
    fn arming_diagnostics(&self) -> Option<Vec<String>> {
        None
    }

    /// Reshards the underlying machine's shared log into `shards`
    /// footprint-addressed segments (see
    /// [`Machine::set_log_shards`](pushpull_core::Machine::set_log_shards)).
    /// Sharding changes the *cost* of the shared-rule critical sections,
    /// never their verdicts; the default is a no-op so wrapper systems
    /// without a machine still implement the trait.
    fn set_log_shards(&mut self, _shards: usize) {}

    /// Shard-lock contention counters from the underlying machine:
    /// `(acquires, contended)` summed over shards, or `None` for systems
    /// without a machine.
    fn lock_stats(&self) -> Option<(u64, u64)> {
        None
    }

    /// Per-shard `(acquires, contended)` lock counters, indexed by shard,
    /// or `None` for systems without a machine. Used by the watchdog's
    /// deterministic per-shard dump.
    fn lock_stats_per_shard(&self) -> Option<Vec<(u64, u64)>> {
        None
    }

    /// Seqlock-path counters from the machine's lock-free criteria path:
    /// `(snapshot reads, validation retries, fallbacks)`, or `None` for
    /// systems without a machine.
    fn seqlock_stats(&self) -> Option<(u64, u64, u64)> {
        None
    }

    /// Arena occupancy of the machine's shard logs: `(live entries, slot
    /// capacity, cumulative slot reuses)`, or `None` for systems without
    /// a machine.
    fn arena_stats(&self) -> Option<(u64, u64, u64)> {
        None
    }

    /// Transport envelope counters from the machine's shard transport
    /// seam (requests, retries, timeouts, degradations, recoveries), or
    /// `None` for systems without a machine. All-zero when no transport
    /// is installed.
    fn transport_stats(&self) -> Option<pushpull_core::TransportStats> {
        None
    }

    /// Group-commit batch counters from the underlying machine (batches
    /// sealed, transactions/operations batched, lock acquisitions saved,
    /// batch size histogram), or `None` for systems without a machine.
    /// All-zero until the service commit seam batches something.
    fn group_stats(&self) -> Option<pushpull_core::GroupStats> {
        None
    }

    /// Nested-scope counters from the underlying machine (scopes opened /
    /// merged / aborted, open-nested commits, compensations replayed,
    /// undo inverses derived), or `None` for systems without a machine.
    /// All-zero for programs that never nest.
    fn nesting_stats(&self) -> Option<pushpull_core::NestingStats> {
        None
    }

    /// The service-callable commit seam: commits the commit-ready
    /// transactions of `tids` through the per-shard group-commit path
    /// (one shard-lock acquisition and one contiguous stamp range per
    /// batch), reporting ineligible threads back for the caller's
    /// per-transaction fallback. `None` for systems without a machine —
    /// the service front-end in `pushpull-server` requires a driver that
    /// forwards this (all ten in-crate drivers do, via
    /// `forward_machine_hooks!`).
    ///
    /// # Errors
    ///
    /// [`MachineError`] on duplicate or out-of-range `tids`.
    fn service_commit_group(
        &mut self,
        _tids: &[ThreadId],
    ) -> Option<Result<pushpull_core::GroupOutcome, MachineError>> {
        None
    }
}

/// Forwards the machine-backed [`TmSystem`] hooks to `self.machine`.
///
/// Every in-crate driver keeps a `machine: Machine<…>` field and forwards
/// `declared_pattern` / `set_static_discharge` / `install_certificate` /
/// `set_require_certificate` / `arming_diagnostics` / `set_log_shards` /
/// `lock_stats` / `lock_stats_per_shard` / `seqlock_stats` /
/// `arena_stats` / `transport_stats` identically; invoke this inside the
/// driver's `impl TmSystem for …` block instead of spelling out the
/// methods.
#[macro_export]
macro_rules! forward_machine_hooks {
    () => {
        fn declared_pattern(&self) -> Option<pushpull_core::RulePattern> {
            Some($crate::driver::full_rule_pattern())
        }

        fn set_static_discharge(
            &self,
            facts: Option<std::sync::Arc<pushpull_core::StaticDischarge>>,
        ) {
            self.machine.set_static_discharge(facts);
        }

        fn install_certificate(
            &self,
            cert: Option<std::sync::Arc<pushpull_core::SpecCertificate>>,
        ) {
            self.machine.install_certificate(cert);
        }

        fn set_require_certificate(&self, on: bool) {
            self.machine.set_require_certificate(on);
        }

        fn arming_diagnostics(&self) -> Option<Vec<String>> {
            Some(self.machine.arming_diagnostics())
        }

        fn set_log_shards(&mut self, shards: usize) {
            self.machine.set_log_shards(shards);
        }

        fn lock_stats(&self) -> Option<(u64, u64)> {
            Some(self.machine.lock_stats())
        }

        fn lock_stats_per_shard(&self) -> Option<Vec<(u64, u64)>> {
            Some(self.machine.lock_stats_per_shard())
        }

        fn seqlock_stats(&self) -> Option<(u64, u64, u64)> {
            Some(self.machine.seqlock_stats())
        }

        fn arena_stats(&self) -> Option<(u64, u64, u64)> {
            Some(self.machine.arena_stats())
        }

        fn transport_stats(&self) -> Option<pushpull_core::TransportStats> {
            Some(self.machine.transport_stats())
        }

        fn group_stats(&self) -> Option<pushpull_core::GroupStats> {
            Some(self.machine.group_stats())
        }

        fn nesting_stats(&self) -> Option<pushpull_core::NestingStats> {
            Some(self.machine.nesting_stats())
        }

        fn service_commit_group(
            &mut self,
            tids: &[pushpull_core::ThreadId],
        ) -> Option<Result<pushpull_core::GroupOutcome, pushpull_core::error::MachineError>> {
            Some(self.machine.commit_group(tids))
        }
    };
}
// `#[macro_export]` hoists the macro to the crate root
// (`pushpull_tm::forward_machine_hooks`); this alias keeps the
// historical `crate::driver::forward_machine_hooks!` path working for
// the in-crate drivers.
pub use forward_machine_hooks;

/// A worker closure for one model thread: each call performs one tick on
/// that thread, touching only its own [`TxnHandle`] and per-thread driver
/// state (plus, for PUSH/UNPUSH/PULL/UNPULL/CMT, the short critical
/// section inside [`GlobalState`]). Workers from one system may therefore
/// run on distinct OS threads concurrently.
///
/// [`TxnHandle`]: pushpull_core::TxnHandle
/// [`GlobalState`]: pushpull_core::GlobalState
pub type Worker<'a> = Box<dyn FnMut() -> Result<Tick, MachineError> + Send + 'a>;

/// A [`TmSystem`] whose state splits into per-thread workers that may run
/// concurrently on OS threads.
///
/// The contract is the lock discipline of the decomposed machine: a
/// worker's APP/UNAPP steps must not enter any system-wide critical
/// section — only the shared-log rules (PUSH/UNPUSH/PULL/UNPULL/CMT) and
/// whatever algorithm-specific shared metadata the driver keeps (abstract
/// locks, version clocks, …) may synchronize, each behind its own
/// short-held lock. `workers()[i]` ticks model thread `i`; calling it is
/// equivalent to `tick(ThreadId(i))` up to interleaving.
pub trait ParallelSystem: TmSystem {
    /// Splits the system into one worker per model thread.
    fn workers(&mut self) -> Vec<Worker<'_>>;
}

/// Statistics every system accumulates, for the benchmark tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SystemStats {
    /// Committed transactions.
    pub commits: u64,
    /// Aborted transaction attempts.
    pub aborts: u64,
    /// Blocked ticks (lock or dependency waits).
    pub blocked_ticks: u64,
    /// Transactions escalated to degraded (solo/irrevocable-style)
    /// execution by the contention manager.
    pub degradations: u64,
    /// The longest run of consecutive aborts any single thread suffered
    /// (merged by `max`, not summed).
    pub max_abort_streak: u64,
    /// Shard-lock acquisitions in the machine's shared log.
    pub lock_acquires: u64,
    /// Shard-lock acquisitions that found the lock already held and had
    /// to block (a direct read on log contention).
    pub lock_contended: u64,
    /// Criteria evaluations served lock-free from a published shard
    /// snapshot (the seqlock fast path).
    pub snap_reads: u64,
    /// Seqlock validation races burned before a successful snapshot read
    /// (retries, not failures).
    pub snap_retries: u64,
    /// Snapshot reads that gave up — unpublished cell, reader contention,
    /// or a stale speculation — and fell back to the mutex ladder.
    pub snap_fallbacks: u64,
    /// Live `GlobalEntry` slots across the shard-log arenas at sampling
    /// time.
    pub arena_live: u64,
    /// Total arena slots allocated (live + free) across shards.
    pub arena_capacity: u64,
    /// Cumulative arena slot reuses (UNPUSH-freed slots recycled by later
    /// appends).
    pub arena_reused: u64,
    /// Logical shard-transport requests (calls and probes) through the
    /// machine's transport seam. Zero when no transport is installed.
    pub transport_requests: u64,
    /// Transport re-delivery attempts after a failed one.
    pub transport_retries: u64,
    /// Transport delivery attempts that timed out or were lost
    /// (injected transport faults included).
    pub transport_timeouts: u64,
    /// Shards degraded to the coarse coordinator path after exhausting
    /// the transport's retry budget (fast→degraded transitions).
    pub transport_degradations: u64,
    /// Shards recovered to the fast path by a successful probe
    /// (degraded→fast transitions).
    pub transport_recoveries: u64,
    /// Logical sessions the service front-end multiplexed (zero outside
    /// `pushpull-server` runs).
    pub sessions: u64,
    /// Group-commit batches sealed (each is one shard-lock acquisition
    /// covering many transactions' PUSH/CMT critical sections).
    pub group_batches: u64,
    /// Transactions committed through a group-commit batch.
    pub group_txns: u64,
    /// Shard-lock acquisitions the batches amortized away versus the
    /// per-transaction path.
    pub group_locks_saved: u64,
    /// Commit-ready transactions that fell back to the per-transaction
    /// path (mixed shards, coarse mode, or an installed transport).
    pub group_fallbacks: u64,
    /// Batch-size histogram in fixed ascending power-of-two buckets
    /// (1, 2, 3–4, 5–8, 9–16, 17–32, 33–64, 65+) — deterministic to
    /// report by construction.
    pub group_hist: [u64; 8],
    /// Nested scopes entered (peeled `tx`/`otx` redexes, explicit scopes,
    /// checkpoint markers).
    pub scopes_opened: u64,
    /// Closed scopes merged into their parent on commit.
    pub scopes_merged: u64,
    /// Scopes aborted via partial rewind (the parent survived).
    pub scopes_aborted: u64,
    /// Open-nested children committed straight to the shared log.
    pub open_commits: u64,
    /// Compensating transactions replayed by aborting parents.
    pub compensations_replayed: u64,
    /// Inverse operations derived by the spec's undo oracle (boosting
    /// undo-log accounting plus open-nesting compensation planning).
    pub undo_inverses: u64,
}

/// Folds the machine-owned shared counters — shard locks, seqlock path,
/// arena occupancy, transport envelope, nested scopes — into `stats`:
/// the common tail of every in-crate driver's `stats()`, deduplicated
/// here so a new machine counter lands in all ten drivers at once.
pub fn fold_machine_counters<S: pushpull_core::SeqSpec>(
    machine: &pushpull_core::Machine<S>,
    stats: &mut SystemStats,
) {
    let (acquires, contended) = machine.lock_stats();
    stats.lock_acquires = acquires;
    stats.lock_contended = contended;
    let (snap_reads, snap_retries, snap_fallbacks) = machine.seqlock_stats();
    stats.snap_reads = snap_reads;
    stats.snap_retries = snap_retries;
    stats.snap_fallbacks = snap_fallbacks;
    let (arena_live, arena_capacity, arena_reused) = machine.arena_stats();
    stats.arena_live = arena_live;
    stats.arena_capacity = arena_capacity;
    stats.arena_reused = arena_reused;
    let t = machine.transport_stats();
    stats.transport_requests = t.requests;
    stats.transport_retries = t.retries;
    stats.transport_timeouts = t.timeouts;
    stats.transport_degradations = t.degradations;
    stats.transport_recoveries = t.recoveries;
    let n = machine.nesting_stats();
    stats.scopes_opened = n.scopes_opened;
    stats.scopes_merged = n.scopes_merged;
    stats.scopes_aborted = n.scopes_aborted;
    stats.open_commits = n.open_commits;
    stats.compensations_replayed = n.compensations_replayed;
    stats.undo_inverses = n.undo_inverses;
}

impl SystemStats {
    /// Abort rate: aborts / (commits + aborts), or 0 when idle.
    pub fn abort_rate(&self) -> f64 {
        let total = self.commits + self.aborts;
        if total == 0 {
            0.0
        } else {
            self.aborts as f64 / total as f64
        }
    }
}

impl std::ops::Add for SystemStats {
    type Output = SystemStats;

    fn add(self, rhs: SystemStats) -> SystemStats {
        SystemStats {
            commits: self.commits + rhs.commits,
            aborts: self.aborts + rhs.aborts,
            blocked_ticks: self.blocked_ticks + rhs.blocked_ticks,
            degradations: self.degradations + rhs.degradations,
            max_abort_streak: self.max_abort_streak.max(rhs.max_abort_streak),
            lock_acquires: self.lock_acquires + rhs.lock_acquires,
            lock_contended: self.lock_contended + rhs.lock_contended,
            snap_reads: self.snap_reads + rhs.snap_reads,
            snap_retries: self.snap_retries + rhs.snap_retries,
            snap_fallbacks: self.snap_fallbacks + rhs.snap_fallbacks,
            arena_live: self.arena_live + rhs.arena_live,
            arena_capacity: self.arena_capacity + rhs.arena_capacity,
            arena_reused: self.arena_reused + rhs.arena_reused,
            transport_requests: self.transport_requests + rhs.transport_requests,
            transport_retries: self.transport_retries + rhs.transport_retries,
            transport_timeouts: self.transport_timeouts + rhs.transport_timeouts,
            transport_degradations: self.transport_degradations + rhs.transport_degradations,
            transport_recoveries: self.transport_recoveries + rhs.transport_recoveries,
            sessions: self.sessions + rhs.sessions,
            group_batches: self.group_batches + rhs.group_batches,
            group_txns: self.group_txns + rhs.group_txns,
            group_locks_saved: self.group_locks_saved + rhs.group_locks_saved,
            group_fallbacks: self.group_fallbacks + rhs.group_fallbacks,
            group_hist: std::array::from_fn(|i| self.group_hist[i] + rhs.group_hist[i]),
            scopes_opened: self.scopes_opened + rhs.scopes_opened,
            scopes_merged: self.scopes_merged + rhs.scopes_merged,
            scopes_aborted: self.scopes_aborted + rhs.scopes_aborted,
            open_commits: self.open_commits + rhs.open_commits,
            compensations_replayed: self.compensations_replayed + rhs.compensations_replayed,
            undo_inverses: self.undo_inverses + rhs.undo_inverses,
        }
    }
}

impl std::iter::Sum for SystemStats {
    fn sum<I: Iterator<Item = SystemStats>>(iter: I) -> SystemStats {
        iter.fold(SystemStats::default(), std::ops::Add::add)
    }
}
