//! Dependent transactions and early release (Ramadan et al. \[30\],
//! Herlihy et al. \[14\]) — paper §6.5, the deliberately *non-opaque*
//! corner of the design space.
//!
//! Rule pattern:
//!
//! * transactions may **PULL the uncommitted** effects another
//!   transaction has PUSHed early (early release = "T′ performing a
//!   PUSH(op) and T checking whether it is able to PULL(op)");
//! * a transaction that pulled an uncommitted `op` of `T′` becomes
//!   *dependent* on `T′`: CMT criterion (iii) blocks its commit until
//!   `T′` commits;
//! * if `T′` aborts (its operations vanish from the shared log via
//!   UNPUSH), the dependent transaction must *detangle*: it "must only
//!   move backwards (via back rules) insofar as to detangle from T′" —
//!   implemented here as a partial rewind that UNAPPs/UNPULLs from the
//!   tail just until the vanished operation can be UNPULLed, then rolls
//!   forward again.
//!
//! With `eager_release` enabled, transactions opportunistically PUSH each
//! operation right after APP (skipping pushes whose criteria fail), which
//! is what makes their uncommitted effects visible for others to pull.

use std::collections::HashMap;

use pushpull_core::error::MachineError;
use pushpull_core::log::{GlobalFlag, LocalFlag};
use pushpull_core::machine::Machine;
use pushpull_core::op::{OpId, ThreadId, TxnId};
use pushpull_core::spec::SeqSpec;
use pushpull_core::Code;

use crate::driver::{SystemStats, Tick, TmSystem};
use crate::util::is_conflict;

/// Blocked ticks tolerated while waiting on a dependency before giving up
/// and aborting (breaks cyclic dependencies).
const DEP_ABORT_THRESHOLD: u32 = 16;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Begin,
    Running,
}

/// A dependent-transactions system.
///
/// # Examples
///
/// ```
/// use pushpull_tm::dependent::DependentSystem;
/// use pushpull_tm::driver::TmSystem;
/// use pushpull_spec::counter::{Counter, CtrMethod};
/// use pushpull_core::lang::Code;
/// use pushpull_core::op::ThreadId;
///
/// let mut sys = DependentSystem::new(
///     Counter::new(),
///     vec![
///         vec![Code::method(CtrMethod::Add(1))],
///         vec![Code::method(CtrMethod::Get)],
///     ],
///     true, // eager release
/// );
/// while !sys.is_done() {
///     for t in 0..sys.thread_count() {
///         sys.tick(ThreadId(t))?;
///     }
/// }
/// assert_eq!(sys.stats().commits, 2);
/// # Ok::<(), pushpull_core::error::MachineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DependentSystem<S: SeqSpec> {
    machine: Machine<S>,
    phase: Vec<Phase>,
    /// Per thread: uncommitted operations pulled, with their owner.
    deps: Vec<HashMap<OpId, TxnId>>,
    eager_release: bool,
    blocked_streak: Vec<u32>,
    stats: SystemStats,
    partial_detangles: u64,
    forced_aborts: Vec<ThreadId>,
}

impl<S: SeqSpec> DependentSystem<S> {
    /// Creates a system running `programs[i]` on thread `i`. With
    /// `eager_release`, operations are opportunistically PUSHed right
    /// after APP so that other transactions can pull them before commit.
    pub fn new(spec: S, programs: Vec<Vec<Code<S::Method>>>, eager_release: bool) -> Self {
        let mut machine = Machine::new(spec);
        let n = programs.len();
        for p in programs {
            machine.add_thread(p);
        }
        Self {
            machine,
            phase: vec![Phase::Begin; n],
            deps: vec![HashMap::new(); n],
            eager_release,
            blocked_streak: vec![0; n],
            stats: SystemStats::default(),
            partial_detangles: 0,
            forced_aborts: Vec::new(),
        }
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Machine<S> {
        &self.machine
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> SystemStats {
        self.stats
    }

    /// Partial rewinds performed to detangle from aborted dependencies.
    pub fn partial_detangles(&self) -> u64 {
        self.partial_detangles
    }

    /// Current dependencies of a thread (uncommitted pulled operations).
    pub fn dependencies(&self, tid: ThreadId) -> Vec<(OpId, TxnId)> {
        self.deps[tid.0].iter().map(|(o, t)| (*o, *t)).collect()
    }

    /// Forces the thread's current transaction to abort at its next tick
    /// (used to trigger dependency cascades in tests and examples).
    pub fn force_abort(&mut self, tid: ThreadId) {
        self.forced_aborts.push(tid);
    }

    /// Pulls every pullable global operation (committed or not) not yet
    /// in the local log, recording dependencies for uncommitted ones.
    fn pull_everything(&mut self, tid: ThreadId) -> Result<(), MachineError> {
        let own_txn = self.machine.thread(tid)?.txn();
        let candidates: Vec<(OpId, TxnId, GlobalFlag)> = {
            let t = self.machine.thread(tid)?;
            self.machine
                .global()
                .iter()
                .filter(|e| e.op.txn != own_txn && !t.local().contains_id(e.op.id))
                .map(|e| (e.op.id, e.op.txn, e.flag))
                .collect()
        };
        for (id, owner, flag) in candidates {
            match self.machine.pull(tid, id) {
                Ok(()) => {
                    if flag == GlobalFlag::Uncommitted {
                        self.deps[tid.0].insert(id, owner);
                    }
                }
                Err(MachineError::Criterion(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Partially rewinds from the tail until `dep` can be UNPULLed —
    /// "move backwards only insofar as to detangle".
    fn detangle(&mut self, tid: ThreadId, dep: OpId) -> Result<(), MachineError> {
        loop {
            match self.machine.unpull(tid, dep) {
                Ok(()) => {
                    self.partial_detangles += 1;
                    return Ok(());
                }
                Err(MachineError::Criterion(_)) => {
                    // Something later depends on it: peel one entry off
                    // the tail and try again.
                    let last = self
                        .machine
                        .thread(tid)?
                        .local()
                        .entries()
                        .last()
                        .map(|e| (e.op.id, e.flag.clone()));
                    match last {
                        None => return Err(MachineError::NoSuchOp(dep)),
                        Some((id, LocalFlag::Pulled)) if id != dep => {
                            self.machine.unpull(tid, id)?;
                            self.deps[tid.0].remove(&id);
                        }
                        Some((_, LocalFlag::Pushed { .. })) => {
                            let id = self.machine.thread(tid)?.local().entries().last().unwrap().op.id;
                            self.machine.unpush(tid, id)?;
                            self.machine.unapp(tid)?;
                        }
                        Some((_, LocalFlag::NotPushed { .. })) => {
                            self.machine.unapp(tid)?;
                        }
                        Some((_, LocalFlag::Pulled)) => {
                            // The dep itself is last but still refused:
                            // impossible (criterion (i) of UNPULL only
                            // concerns the rest of the log) — bail out.
                            return Err(MachineError::NoSuchOp(dep));
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn abort(&mut self, tid: ThreadId) -> Result<Tick, MachineError> {
        self.machine.abort_and_retry(tid)?;
        self.deps[tid.0].clear();
        self.phase[tid.0] = Phase::Begin;
        self.blocked_streak[tid.0] = 0;
        self.stats.aborts += 1;
        Ok(Tick::Aborted)
    }
}

impl<S: SeqSpec> TmSystem for DependentSystem<S> {
    fn tick(&mut self, tid: ThreadId) -> Result<Tick, MachineError> {
        if self.machine.thread(tid)?.is_done() {
            return Ok(Tick::Done);
        }
        if let Some(pos) = self.forced_aborts.iter().position(|t| *t == tid) {
            self.forced_aborts.remove(pos);
            return self.abort(tid);
        }
        if self.phase[tid.0] == Phase::Begin {
            self.pull_everything(tid)?;
            self.phase[tid.0] = Phase::Running;
            return Ok(Tick::Progress);
        }
        let options = self.machine.step_options(tid)?;
        if !options.is_empty() {
            self.pull_everything(tid)?;
            let method = options[0].0.clone();
            let op = match self.machine.app_method(tid, &method) {
                Ok(op) => op,
                Err(MachineError::NoAllowedResult(_)) => return self.abort(tid),
                Err(e) if is_conflict(&e) => return self.abort(tid),
                Err(e) => return Err(e),
            };
            if self.eager_release {
                // Early release: publish if the criteria allow it.
                match self.machine.push(tid, op) {
                    Ok(()) | Err(MachineError::Criterion(_)) => {}
                    Err(e) => return Err(e),
                }
            }
            return Ok(Tick::Progress);
        }
        // Commit phase: resolve dependencies first.
        let dep_list: Vec<(OpId, TxnId)> = self.deps[tid.0].iter().map(|(o, t)| (*o, *t)).collect();
        for (dep, _owner) in dep_list {
            match self.machine.global().entry(dep).map(|e| e.flag) {
                Some(GlobalFlag::Committed) => {
                    self.deps[tid.0].remove(&dep);
                }
                Some(GlobalFlag::Uncommitted) => {
                    // Still live: wait for it (or give up after a while).
                    self.blocked_streak[tid.0] += 1;
                    self.stats.blocked_ticks += 1;
                    if self.blocked_streak[tid.0] >= DEP_ABORT_THRESHOLD {
                        return self.abort(tid);
                    }
                    return Ok(Tick::Blocked);
                }
                None => {
                    // The dependency aborted: cascade — detangle from it.
                    self.detangle(tid, dep)?;
                    self.deps[tid.0].remove(&dep);
                    return Ok(Tick::Progress);
                }
            }
        }
        match self.machine.push_all_and_commit(tid) {
            Ok(_) => {
                self.deps[tid.0].clear();
                self.phase[tid.0] = Phase::Begin;
                self.blocked_streak[tid.0] = 0;
                self.stats.commits += 1;
                Ok(Tick::Committed)
            }
            Err(e) if is_conflict(&e) => self.abort(tid),
            Err(e) => Err(e),
        }
    }

    fn thread_count(&self) -> usize {
        self.machine.thread_count()
    }

    fn is_done(&self) -> bool {
        (0..self.machine.thread_count())
            .all(|t| self.machine.thread(ThreadId(t)).map(|t| t.is_done()).unwrap_or(true))
    }

    fn name(&self) -> &'static str {
        "dependent"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushpull_core::opacity::{check_trace, OpacityVerdict};
    use pushpull_core::serializability::check_machine;
    use pushpull_spec::counter::{Counter, CtrMethod, CtrRet};

    fn run_round_robin<S: SeqSpec>(sys: &mut DependentSystem<S>, max_ticks: usize) {
        let n = sys.thread_count();
        for i in 0..max_ticks {
            if sys.is_done() {
                return;
            }
            let _ = sys.tick(ThreadId(i % n)).unwrap();
        }
        panic!("system did not terminate within {max_ticks} ticks");
    }

    #[test]
    fn dependency_established_and_commit_gated() {
        let mut sys = DependentSystem::new(
            Counter::new(),
            vec![
                vec![Code::method(CtrMethod::Add(1))], // T0: releases early
                vec![Code::method(CtrMethod::Get)],    // T1: reads uncommitted
            ],
            true,
        );
        // T0 applies and (eagerly) pushes its add — uncommitted.
        sys.tick(ThreadId(0)).unwrap(); // begin
        sys.tick(ThreadId(0)).unwrap(); // app + push
        // T1 pulls it and reads 1 before T0 commits.
        sys.tick(ThreadId(1)).unwrap(); // begin: pulls uncommitted add
        assert_eq!(sys.dependencies(ThreadId(1)).len(), 1);
        sys.tick(ThreadId(1)).unwrap(); // app get -> observes 1
        // T1 at commit: dependency uncommitted -> Blocked.
        assert_eq!(sys.tick(ThreadId(1)).unwrap(), Tick::Blocked);
        // T0 commits; T1 can now commit.
        while sys.machine().thread(ThreadId(0)).unwrap().commits() == 0 {
            sys.tick(ThreadId(0)).unwrap();
        }
        run_round_robin(&mut sys, 1000);
        assert_eq!(sys.stats().commits, 2);
        // The run is NOT opaque (uncommitted pull)…
        assert!(!check_trace(sys.machine().trace()).is_opaque());
        // …but it is serializable.
        let report = check_machine(sys.machine());
        assert!(report.is_serializable(), "{report}");
        // And T1 really observed the uncommitted value.
        let get_txn = sys
            .machine()
            .committed_txns()
            .iter()
            .find(|t| t.thread == ThreadId(1))
            .unwrap();
        assert_eq!(get_txn.ops[0].ret, CtrRet::Val(1));
    }

    #[test]
    fn aborted_dependency_cascades() {
        let mut sys = DependentSystem::new(
            Counter::new(),
            vec![
                vec![Code::method(CtrMethod::Add(1))],
                vec![Code::method(CtrMethod::Get)],
            ],
            true,
        );
        sys.tick(ThreadId(0)).unwrap(); // begin
        sys.tick(ThreadId(0)).unwrap(); // app + push
        sys.tick(ThreadId(1)).unwrap(); // begin: pull uncommitted
        sys.tick(ThreadId(1)).unwrap(); // get -> 1
        // T0 aborts: its add vanishes from G.
        sys.force_abort(ThreadId(0));
        sys.tick(ThreadId(0)).unwrap();
        // T1 must detangle: its get(=1) depends on the vanished add, so
        // the partial rewind unapplies the get, then unpulls.
        let t = sys.tick(ThreadId(1)).unwrap();
        assert_eq!(t, Tick::Progress);
        assert!(sys.partial_detangles() >= 1);
        assert!(sys.dependencies(ThreadId(1)).is_empty());
        // Everyone still finishes, serializably.
        run_round_robin(&mut sys, 2000);
        assert_eq!(sys.stats().commits, 2);
        assert!(check_machine(sys.machine()).is_serializable());
    }

    #[test]
    fn without_eager_release_runs_are_opaque() {
        let mut sys = DependentSystem::new(
            Counter::new(),
            vec![
                vec![Code::method(CtrMethod::Add(1))],
                vec![Code::method(CtrMethod::Get)],
            ],
            false,
        );
        run_round_robin(&mut sys, 2000);
        assert_eq!(sys.stats().commits, 2);
        assert_eq!(check_trace(sys.machine().trace()), OpacityVerdict::Opaque);
    }
}
