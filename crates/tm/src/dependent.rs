//! Dependent transactions and early release (Ramadan et al. \[30\],
//! Herlihy et al. \[14\]) — paper §6.5, the deliberately *non-opaque*
//! corner of the design space.
//!
//! Rule pattern:
//!
//! * transactions may **PULL the uncommitted** effects another
//!   transaction has PUSHed early (early release = "T′ performing a
//!   PUSH(op) and T checking whether it is able to PULL(op)");
//! * a transaction that pulled an uncommitted `op` of `T′` becomes
//!   *dependent* on `T′`: CMT criterion (iii) blocks its commit until
//!   `T′` commits;
//! * if `T′` aborts (its operations vanish from the shared log via
//!   UNPUSH), the dependent transaction must *detangle*: it "must only
//!   move backwards (via back rules) insofar as to detangle from T′" —
//!   implemented here as a partial rewind that UNAPPs/UNPULLs from the
//!   tail just until the vanished operation can be UNPULLed, then rolls
//!   forward again.
//!
//! With `eager_release` enabled, transactions opportunistically PUSH each
//! operation right after APP (skipping pushes whose criteria fail), which
//! is what makes their uncommitted effects visible for others to pull.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use pushpull_core::error::MachineError;
use pushpull_core::log::{GlobalFlag, LocalFlag};
use pushpull_core::machine::Machine;
use pushpull_core::op::{OpId, ThreadId, TxnId};
use pushpull_core::spec::SeqSpec;
use pushpull_core::{Code, TxnHandle};

use crate::contention::{
    default_manager, ContentionManager, ContentionState, Gate, Governor, StarvationReport,
    WaitVerdict,
};
use crate::driver::{ParallelSystem, SystemStats, Tick, TmSystem, Worker};
use crate::util::is_conflict;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Begin,
    Running,
}

/// A dependent-transactions system.
///
/// # Examples
///
/// ```
/// use pushpull_tm::dependent::DependentSystem;
/// use pushpull_tm::driver::TmSystem;
/// use pushpull_spec::counter::{Counter, CtrMethod};
/// use pushpull_core::lang::Code;
/// use pushpull_core::op::ThreadId;
///
/// let mut sys = DependentSystem::new(
///     Counter::new(),
///     vec![
///         vec![Code::method(CtrMethod::Add(1))],
///         vec![Code::method(CtrMethod::Get)],
///     ],
///     true, // eager release
/// );
/// while !sys.is_done() {
///     for t in 0..sys.thread_count() {
///         sys.tick(ThreadId(t))?;
///     }
/// }
/// assert_eq!(sys.stats().commits, 2);
/// # Ok::<(), pushpull_core::error::MachineError>(())
/// ```
#[derive(Debug)]
pub struct DependentSystem<S: SeqSpec> {
    machine: Machine<S>,
    eager_release: bool,
    /// Forced-abort test hook — the only cross-thread driver state.
    forced_aborts: Mutex<Vec<ThreadId>>,
    threads: Vec<DepThread>,
    contention: Arc<ContentionState>,
    governors: Vec<Governor>,
}

/// Per-thread driver state, owned by exactly one worker.
#[derive(Debug, Clone)]
struct DepThread {
    phase: Phase,
    /// Uncommitted operations this thread has pulled, with their owner.
    /// Ordered so the commit phase resolves dependencies in a
    /// deterministic (OpId) order under deterministic schedulers.
    deps: BTreeMap<OpId, TxnId>,
    stats: SystemStats,
    partial_detangles: u64,
}

impl Default for DepThread {
    fn default() -> Self {
        Self {
            phase: Phase::Begin,
            deps: BTreeMap::new(),
            stats: SystemStats::default(),
            partial_detangles: 0,
        }
    }
}

/// Pulls every pullable global operation (committed or not) not yet in
/// the local log, recording dependencies for uncommitted ones. An entry
/// that vanishes between the snapshot and the PULL (a racing UNPUSH) is
/// simply skipped.
fn pull_everything<S: SeqSpec>(
    h: &mut TxnHandle<S>,
    t: &mut DepThread,
) -> Result<(), MachineError> {
    let own_txn = h.txn();
    let candidates: Vec<(OpId, TxnId, GlobalFlag)> = h
        .global_snapshot()
        .iter()
        .filter(|e| e.op.txn != own_txn && !h.local().contains_id(e.op.id))
        .map(|e| (e.op.id, e.op.txn, e.flag))
        .collect();
    for (id, owner, flag) in candidates {
        match h.pull(id) {
            Ok(()) => {
                if flag == GlobalFlag::Uncommitted {
                    t.deps.insert(id, owner);
                }
            }
            Err(MachineError::Criterion(_)) | Err(MachineError::NoSuchOp(_)) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// UNAPP that rewinds across closed-scope bases: when the tail entry
/// lies below the innermost scope's floor, that scope is necessarily
/// empty, so popping it is event-free and the parent entry becomes
/// reachable — exactly what the flat (scope-less) rendering of the same
/// program would rewind.
fn unapp_through_scopes<S: SeqSpec>(h: &mut TxnHandle<S>) -> Result<OpId, MachineError> {
    loop {
        match h.unapp() {
            Err(MachineError::NothingToUnapply(_)) if h.scope_depth() > 0 => h.abort_nested()?,
            other => return other,
        }
    }
}

/// Partially rewinds from the tail until `dep` can be UNPULLed — "move
/// backwards only insofar as to detangle".
fn detangle<S: SeqSpec>(
    h: &mut TxnHandle<S>,
    t: &mut DepThread,
    dep: OpId,
) -> Result<(), MachineError> {
    loop {
        match h.unpull(dep) {
            Ok(()) => {
                t.partial_detangles += 1;
                return Ok(());
            }
            Err(MachineError::Criterion(_)) => {
                // Something later depends on it: peel one entry off
                // the tail and try again.
                let last = h
                    .local()
                    .entries()
                    .last()
                    .map(|e| (e.op.id, e.flag.clone()));
                match last {
                    None => return Err(MachineError::NoSuchOp(dep)),
                    Some((id, LocalFlag::Pulled)) if id != dep => {
                        h.unpull(id)?;
                        t.deps.remove(&id);
                    }
                    Some((_, LocalFlag::Pushed { .. })) => {
                        let id = h.local().entries().last().unwrap().op.id;
                        h.unpush(id)?;
                        unapp_through_scopes(h)?;
                    }
                    Some((_, LocalFlag::NotPushed { .. })) => {
                        unapp_through_scopes(h)?;
                    }
                    Some((_, LocalFlag::Pulled)) => {
                        // The dep itself is last but still refused:
                        // impossible (criterion (i) of UNPULL only
                        // concerns the rest of the log) — bail out.
                        return Err(MachineError::NoSuchOp(dep));
                    }
                }
            }
            Err(e) => return Err(e),
        }
    }
}

fn abort_thread<S: SeqSpec>(
    h: &mut TxnHandle<S>,
    t: &mut DepThread,
    gov: &mut Governor,
) -> Result<Tick, MachineError> {
    h.abort_and_retry()?;
    t.deps.clear();
    t.phase = Phase::Begin;
    t.stats.aborts += 1;
    gov.on_abort();
    Ok(Tick::Aborted)
}

/// One dependent-transactions tick for one thread. PULLs and detangles
/// take the machine's short critical sections; everything else runs on
/// the thread's own handle.
fn tick_thread<S: SeqSpec>(
    eager_release: bool,
    forced_aborts: &Mutex<Vec<ThreadId>>,
    h: &mut TxnHandle<S>,
    t: &mut DepThread,
    gov: &mut Governor,
) -> Result<Tick, MachineError> {
    match gov.gate(h) {
        Gate::Done => return Ok(Tick::Done),
        Gate::Park => {
            t.stats.blocked_ticks += 1;
            return Ok(Tick::Blocked);
        }
        Gate::Kill => return abort_thread(h, t, gov),
        Gate::Run => {}
    }
    {
        let mut forced = forced_aborts.lock().expect("forced-abort list poisoned");
        if let Some(pos) = forced.iter().position(|f| *f == h.tid()) {
            forced.remove(pos);
            drop(forced);
            return abort_thread(h, t, gov);
        }
    }
    if t.phase == Phase::Begin {
        pull_everything(h, t)?;
        t.phase = Phase::Running;
        return Ok(Tick::Progress);
    }
    let options = h.step_options()?;
    if !options.is_empty() {
        pull_everything(h, t)?;
        let method = options[0].0.clone();
        let op = match h.app_method(&method) {
            Ok(op) => op,
            Err(MachineError::NoAllowedResult(_)) => return abort_thread(h, t, gov),
            Err(e) if is_conflict(&e) => return abort_thread(h, t, gov),
            Err(e) => return Err(e),
        };
        if eager_release {
            // Early release: publish if the criteria allow it.
            match h.push(op) {
                Ok(()) | Err(MachineError::Criterion(_)) => {}
                Err(e) => return Err(e),
            }
        }
        gov.on_progress();
        return Ok(Tick::Progress);
    }
    // Commit phase: resolve dependencies first.
    let dep_list: Vec<(OpId, TxnId)> = t.deps.iter().map(|(o, x)| (*o, *x)).collect();
    for (dep, _owner) in dep_list {
        match h.global_snapshot().entry(dep).map(|e| e.flag) {
            Some(GlobalFlag::Committed) => {
                t.deps.remove(&dep);
            }
            Some(GlobalFlag::Uncommitted) => {
                // Still live: wait for it. The contention manager
                // decides when waiting turns into giving up — that is
                // what breaks cyclic dependencies.
                t.stats.blocked_ticks += 1;
                return match gov.on_blocked() {
                    WaitVerdict::GiveUp => abort_thread(h, t, gov),
                    WaitVerdict::Wait => Ok(Tick::Blocked),
                };
            }
            None => {
                // The dependency aborted: cascade — detangle from it. If
                // the partial rewind cannot reach the vanished entry
                // (racing interleavings can wedge it), fall back to a
                // full abort.
                return match detangle(h, t, dep) {
                    Ok(()) => {
                        t.deps.remove(&dep);
                        gov.on_progress();
                        Ok(Tick::Progress)
                    }
                    Err(MachineError::NoSuchOp(_)) | Err(MachineError::Criterion(_)) => {
                        abort_thread(h, t, gov)
                    }
                    Err(e) => Err(e),
                };
            }
        }
    }
    match h.push_all_and_commit() {
        Ok(_) => {
            t.deps.clear();
            t.phase = Phase::Begin;
            t.stats.commits += 1;
            gov.on_commit();
            Ok(Tick::Committed)
        }
        Err(e) if is_conflict(&e) => abort_thread(h, t, gov),
        Err(e) => Err(e),
    }
}

impl<S: SeqSpec> DependentSystem<S> {
    /// Creates a system running `programs[i]` on thread `i`. With
    /// `eager_release`, operations are opportunistically PUSHed right
    /// after APP so that other transactions can pull them before commit.
    pub fn new(spec: S, programs: Vec<Vec<Code<S::Method>>>, eager_release: bool) -> Self {
        Self::with_contention(spec, programs, eager_release, default_manager())
    }

    /// Creates a system with an explicit contention-management policy.
    pub fn with_contention(
        spec: S,
        programs: Vec<Vec<Code<S::Method>>>,
        eager_release: bool,
        cm: Arc<dyn ContentionManager>,
    ) -> Self {
        let mut machine = Machine::new(spec);
        let n = programs.len();
        for p in programs {
            machine.add_thread(p);
        }
        let contention = ContentionState::new(cm);
        let governors = contention.governors(n);
        Self {
            machine,
            eager_release,
            forced_aborts: Mutex::new(Vec::new()),
            threads: vec![DepThread::default(); n],
            contention,
            governors,
        }
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Machine<S> {
        &self.machine
    }

    /// Accumulated statistics (summed over threads).
    pub fn stats(&self) -> SystemStats {
        let mut stats: SystemStats = self.threads.iter().map(|t| t.stats).sum();
        self.contention.fold_into(&mut stats);
        crate::driver::fold_machine_counters(&self.machine, &mut stats);
        stats
    }

    /// Partial rewinds performed to detangle from aborted dependencies.
    pub fn partial_detangles(&self) -> u64 {
        self.threads.iter().map(|t| t.partial_detangles).sum()
    }

    /// Current dependencies of a thread (uncommitted pulled operations).
    pub fn dependencies(&self, tid: ThreadId) -> Vec<(OpId, TxnId)> {
        self.threads[tid.0]
            .deps
            .iter()
            .map(|(o, t)| (*o, *t))
            .collect()
    }

    /// Forces the thread's current transaction to abort at its next tick
    /// (used to trigger dependency cascades in tests and examples).
    pub fn force_abort(&mut self, tid: ThreadId) {
        self.forced_aborts
            .lock()
            .expect("forced-abort list poisoned")
            .push(tid);
    }
}

impl<S: SeqSpec + Clone> Clone for DependentSystem<S> {
    fn clone(&self) -> Self {
        let contention = self.contention.fork();
        let governors = contention.governors(self.threads.len());
        Self {
            machine: self.machine.clone(),
            eager_release: self.eager_release,
            forced_aborts: Mutex::new(
                self.forced_aborts
                    .lock()
                    .expect("forced-abort list poisoned")
                    .clone(),
            ),
            threads: self.threads.clone(),
            contention,
            governors,
        }
    }
}

impl<S: SeqSpec> TmSystem for DependentSystem<S> {
    fn tick(&mut self, tid: ThreadId) -> Result<Tick, MachineError> {
        tick_thread(
            self.eager_release,
            &self.forced_aborts,
            self.machine.handle_mut(tid)?,
            &mut self.threads[tid.0],
            &mut self.governors[tid.0],
        )
    }

    fn thread_count(&self) -> usize {
        self.machine.thread_count()
    }

    fn is_done(&self) -> bool {
        (0..self.machine.thread_count()).all(|t| {
            self.machine
                .thread(ThreadId(t))
                .map(|t| t.is_done())
                .unwrap_or(true)
        })
    }

    fn name(&self) -> &'static str {
        "dependent"
    }

    fn starvation(&self) -> Option<StarvationReport> {
        Some(self.contention.report())
    }

    crate::driver::forward_machine_hooks!();
}

impl<S> ParallelSystem for DependentSystem<S>
where
    S: SeqSpec + Send + Sync,
    S::Method: Send + Sync,
    S::Ret: Send + Sync,
    S::State: Send + Sync,
{
    fn workers(&mut self) -> Vec<Worker<'_>> {
        let eager_release = self.eager_release;
        let forced_aborts = &self.forced_aborts;
        self.machine
            .handles_mut()
            .iter_mut()
            .zip(self.threads.iter_mut())
            .zip(self.governors.iter_mut())
            .map(|((h, t), gov)| {
                Box::new(move || tick_thread(eager_release, forced_aborts, h, t, gov)) as Worker<'_>
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushpull_core::opacity::{check_trace, OpacityVerdict};
    use pushpull_core::serializability::check_machine;
    use pushpull_spec::counter::{Counter, CtrMethod, CtrRet};

    fn run_round_robin<S: SeqSpec>(sys: &mut DependentSystem<S>, max_ticks: usize) {
        let n = sys.thread_count();
        for i in 0..max_ticks {
            if sys.is_done() {
                return;
            }
            let _ = sys.tick(ThreadId(i % n)).unwrap();
        }
        panic!("system did not terminate within {max_ticks} ticks");
    }

    #[test]
    fn dependency_established_and_commit_gated() {
        let mut sys = DependentSystem::new(
            Counter::new(),
            vec![
                vec![Code::method(CtrMethod::Add(1))], // T0: releases early
                vec![Code::method(CtrMethod::Get)],    // T1: reads uncommitted
            ],
            true,
        );
        // T0 applies and (eagerly) pushes its add — uncommitted.
        sys.tick(ThreadId(0)).unwrap(); // begin
        sys.tick(ThreadId(0)).unwrap(); // app + push
                                        // T1 pulls it and reads 1 before T0 commits.
        sys.tick(ThreadId(1)).unwrap(); // begin: pulls uncommitted add
        assert_eq!(sys.dependencies(ThreadId(1)).len(), 1);
        sys.tick(ThreadId(1)).unwrap(); // app get -> observes 1
                                        // T1 at commit: dependency uncommitted -> Blocked.
        assert_eq!(sys.tick(ThreadId(1)).unwrap(), Tick::Blocked);
        // T0 commits; T1 can now commit.
        while sys.machine().thread(ThreadId(0)).unwrap().commits() == 0 {
            sys.tick(ThreadId(0)).unwrap();
        }
        run_round_robin(&mut sys, 1000);
        assert_eq!(sys.stats().commits, 2);
        // The run is NOT opaque (uncommitted pull)…
        assert!(!check_trace(&sys.machine().trace()).is_opaque());
        // …but it is serializable.
        let report = check_machine(sys.machine());
        assert!(report.is_serializable(), "{report}");
        // And T1 really observed the uncommitted value.
        let committed = sys.machine().committed_txns();
        let get_txn = committed.iter().find(|t| t.thread == ThreadId(1)).unwrap();
        assert_eq!(get_txn.ops[0].ret, CtrRet::Val(1));
    }

    #[test]
    fn aborted_dependency_cascades() {
        let mut sys = DependentSystem::new(
            Counter::new(),
            vec![
                vec![Code::method(CtrMethod::Add(1))],
                vec![Code::method(CtrMethod::Get)],
            ],
            true,
        );
        sys.tick(ThreadId(0)).unwrap(); // begin
        sys.tick(ThreadId(0)).unwrap(); // app + push
        sys.tick(ThreadId(1)).unwrap(); // begin: pull uncommitted
        sys.tick(ThreadId(1)).unwrap(); // get -> 1
                                        // T0 aborts: its add vanishes from G.
        sys.force_abort(ThreadId(0));
        sys.tick(ThreadId(0)).unwrap();
        // T1 must detangle: its get(=1) depends on the vanished add, so
        // the partial rewind unapplies the get, then unpulls.
        let t = sys.tick(ThreadId(1)).unwrap();
        assert_eq!(t, Tick::Progress);
        assert!(sys.partial_detangles() >= 1);
        assert!(sys.dependencies(ThreadId(1)).is_empty());
        // Everyone still finishes, serializably.
        run_round_robin(&mut sys, 2000);
        assert_eq!(sys.stats().commits, 2);
        assert!(check_machine(sys.machine()).is_serializable());
    }

    #[test]
    fn without_eager_release_runs_are_opaque() {
        let mut sys = DependentSystem::new(
            Counter::new(),
            vec![
                vec![Code::method(CtrMethod::Add(1))],
                vec![Code::method(CtrMethod::Get)],
            ],
            false,
        );
        run_round_robin(&mut sys, 2000);
        assert_eq!(sys.stats().commits, 2);
        assert_eq!(check_trace(&sys.machine().trace()), OpacityVerdict::Opaque);
    }
}
