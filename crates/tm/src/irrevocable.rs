//! Irrevocable transactions (Welc et al. \[34\]) — the mixed
//! optimistic/pessimistic model of paper §6.4: "there is at most one
//! pessimistic ('irrevocable') transaction and many optimistic
//! transactions. The pessimistic transaction PUSHes its effects
//! instantaneously after APP."
//!
//! The irrevocable thread never rolls back: when its eager PUSH meets a
//! foreign uncommitted operation (an optimistic transaction mid-commit),
//! it *waits* — the optimist either commits or, failing validation
//! against the irrevocable thread's published effects, aborts, clearing
//! the way. Optimistic threads behave exactly as in
//! [`crate::optimistic`].

use pushpull_core::error::MachineError;
use pushpull_core::machine::Machine;
use pushpull_core::op::ThreadId;
use pushpull_core::spec::SeqSpec;
use pushpull_core::Code;

use crate::driver::{SystemStats, Tick, TmSystem};
use crate::util::{is_conflict, pull_committed_lenient};

/// Per-thread phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Begin,
    Running,
}

/// A system with one irrevocable thread among optimistic ones.
///
/// # Examples
///
/// ```
/// use pushpull_tm::irrevocable::IrrevocableSystem;
/// use pushpull_tm::driver::TmSystem;
/// use pushpull_spec::rwmem::{RwMem, MemMethod, Loc};
/// use pushpull_core::lang::Code;
/// use pushpull_core::op::ThreadId;
///
/// let mut sys = IrrevocableSystem::new(
///     RwMem::new(),
///     vec![
///         vec![Code::method(MemMethod::Write(Loc(0), 1))], // irrevocable
///         vec![Code::method(MemMethod::Write(Loc(1), 2))], // optimistic
///     ],
///     ThreadId(0),
/// );
/// while !sys.is_done() {
///     for t in 0..sys.thread_count() {
///         sys.tick(ThreadId(t))?;
///     }
/// }
/// assert_eq!(sys.irrevocable_aborts(), 0);
/// # Ok::<(), pushpull_core::error::MachineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct IrrevocableSystem<S: SeqSpec> {
    machine: Machine<S>,
    irrevocable: ThreadId,
    phase: Vec<Phase>,
    stats: SystemStats,
    irrevocable_aborts: u64,
}

impl<S: SeqSpec> IrrevocableSystem<S> {
    /// Creates a system where thread `irrevocable` runs pessimistically
    /// (eager PUSH, never aborts) and all others run optimistically.
    ///
    /// # Panics
    ///
    /// Panics if `irrevocable` is out of range for `programs`.
    pub fn new(spec: S, programs: Vec<Vec<Code<S::Method>>>, irrevocable: ThreadId) -> Self {
        assert!(irrevocable.0 < programs.len(), "irrevocable thread out of range");
        let mut machine = Machine::new(spec);
        let n = programs.len();
        for p in programs {
            machine.add_thread(p);
        }
        Self {
            machine,
            irrevocable,
            phase: vec![Phase::Begin; n],
            stats: SystemStats::default(),
            irrevocable_aborts: 0,
        }
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Machine<S> {
        &self.machine
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> SystemStats {
        self.stats
    }

    /// Aborts taken by the irrevocable thread — must always be zero; kept
    /// as an observable so tests state it as an assertion, not an
    /// assumption.
    pub fn irrevocable_aborts(&self) -> u64 {
        self.irrevocable_aborts
    }

    fn tick_irrevocable(&mut self, tid: ThreadId) -> Result<Tick, MachineError> {
        if self.phase[tid.0] == Phase::Begin {
            pull_committed_lenient(&mut self.machine, tid)?;
            self.phase[tid.0] = Phase::Running;
            return Ok(Tick::Progress);
        }
        let options = self.machine.step_options(tid)?;
        if options.is_empty() {
            // Everything is already pushed; CMT cannot fail for the
            // irrevocable thread.
            self.machine.commit(tid)?;
            self.phase[tid.0] = Phase::Begin;
            self.stats.commits += 1;
            return Ok(Tick::Committed);
        }
        // Refresh committed view, then APP;PUSH eagerly.
        pull_committed_lenient(&mut self.machine, tid)?;
        let method = options[0].0.clone();
        let op = self.machine.app_method(tid, &method)?;
        match self.machine.push(tid, op) {
            Ok(()) => Ok(Tick::Progress),
            Err(e) if is_conflict(&e) => {
                // An optimistic transaction is mid-commit: wait it out.
                // (Never abort — undo the APP and retry the same method.)
                self.machine.unapp(tid)?;
                self.stats.blocked_ticks += 1;
                Ok(Tick::Blocked)
            }
            Err(e) => Err(e),
        }
    }

    fn tick_optimistic(&mut self, tid: ThreadId) -> Result<Tick, MachineError> {
        if self.phase[tid.0] == Phase::Begin {
            pull_committed_lenient(&mut self.machine, tid)?;
            self.phase[tid.0] = Phase::Running;
            return Ok(Tick::Progress);
        }
        let options = self.machine.step_options(tid)?;
        if options.is_empty() {
            return match self.machine.push_all_and_commit(tid) {
                Ok(_) => {
                    self.phase[tid.0] = Phase::Begin;
                    self.stats.commits += 1;
                    Ok(Tick::Committed)
                }
                Err(e) if is_conflict(&e) => self.abort_optimistic(tid),
                Err(e) => Err(e),
            };
        }
        let method = options[0].0.clone();
        match self.machine.app_method(tid, &method) {
            Ok(_) => Ok(Tick::Progress),
            Err(MachineError::NoAllowedResult(_)) => self.abort_optimistic(tid),
            Err(e) if is_conflict(&e) => self.abort_optimistic(tid),
            Err(e) => Err(e),
        }
    }

    fn abort_optimistic(&mut self, tid: ThreadId) -> Result<Tick, MachineError> {
        self.machine.abort_and_retry(tid)?;
        self.phase[tid.0] = Phase::Begin;
        self.stats.aborts += 1;
        Ok(Tick::Aborted)
    }
}

impl<S: SeqSpec> TmSystem for IrrevocableSystem<S> {
    fn tick(&mut self, tid: ThreadId) -> Result<Tick, MachineError> {
        if self.machine.thread(tid)?.is_done() {
            return Ok(Tick::Done);
        }
        if tid == self.irrevocable {
            self.tick_irrevocable(tid)
        } else {
            self.tick_optimistic(tid)
        }
    }

    fn thread_count(&self) -> usize {
        self.machine.thread_count()
    }

    fn is_done(&self) -> bool {
        (0..self.machine.thread_count())
            .all(|t| self.machine.thread(ThreadId(t)).map(|t| t.is_done()).unwrap_or(true))
    }

    fn name(&self) -> &'static str {
        "irrevocable"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushpull_core::serializability::check_machine;
    use pushpull_spec::rwmem::{Loc, MemMethod, RwMem};

    fn run_round_robin<S: SeqSpec>(sys: &mut IrrevocableSystem<S>, max_ticks: usize) {
        let n = sys.thread_count();
        for i in 0..max_ticks {
            if sys.is_done() {
                return;
            }
            let _ = sys.tick(ThreadId(i % n)).unwrap();
        }
        panic!("system did not terminate within {max_ticks} ticks");
    }

    fn rw_prog(l: u32, v: i64) -> Vec<Code<MemMethod>> {
        vec![Code::seq_all(vec![
            Code::method(MemMethod::Read(Loc(l))),
            Code::method(MemMethod::Write(Loc(l), v)),
        ])]
    }

    #[test]
    fn irrevocable_never_aborts_under_conflict() {
        // Irrevocable and two optimists all read-modify-write loc 0.
        let mut sys = IrrevocableSystem::new(
            RwMem::new(),
            vec![rw_prog(0, 1), rw_prog(0, 2), rw_prog(0, 3)],
            ThreadId(0),
        );
        run_round_robin(&mut sys, 8000);
        assert_eq!(sys.stats().commits, 3);
        assert_eq!(sys.irrevocable_aborts(), 0);
        let report = check_machine(sys.machine());
        assert!(report.is_serializable(), "{report}");
    }

    #[test]
    fn irrevocable_pushes_eagerly() {
        let mut sys = IrrevocableSystem::new(
            RwMem::new(),
            vec![rw_prog(0, 1), rw_prog(1, 2)],
            ThreadId(0),
        );
        // Tick irrevocable through begin + first op.
        sys.tick(ThreadId(0)).unwrap();
        sys.tick(ThreadId(0)).unwrap();
        let names = sys.machine().trace().rule_names(ThreadId(0));
        assert_eq!(names.last(), Some(&"PUSH"), "APP must be followed immediately by PUSH");
        run_round_robin(&mut sys, 4000);
        assert!(check_machine(sys.machine()).is_serializable());
    }

    #[test]
    fn optimists_abort_against_irrevocable_effects() {
        // Force the optimist to observe a stale loc 0, then the
        // irrevocable thread writes it; the optimist must abort at least
        // once and still commit eventually.
        let mut sys = IrrevocableSystem::new(
            RwMem::new(),
            vec![rw_prog(0, 1), rw_prog(0, 2)],
            ThreadId(0),
        );
        // Optimist snapshots and reads first.
        sys.tick(ThreadId(1)).unwrap(); // begin
        sys.tick(ThreadId(1)).unwrap(); // read loc0 = 0
        // Irrevocable runs to commit.
        while sys.machine().thread(ThreadId(0)).unwrap().commits() == 0 {
            sys.tick(ThreadId(0)).unwrap();
        }
        run_round_robin(&mut sys, 4000);
        assert_eq!(sys.stats().commits, 2);
        assert!(sys.stats().aborts >= 1);
        assert_eq!(sys.irrevocable_aborts(), 0);
        assert!(check_machine(sys.machine()).is_serializable());
    }
}
