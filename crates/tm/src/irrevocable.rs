//! Irrevocable transactions (Welc et al. \[34\]) — the mixed
//! optimistic/pessimistic model of paper §6.4: "there is at most one
//! pessimistic ('irrevocable') transaction and many optimistic
//! transactions. The pessimistic transaction PUSHes its effects
//! instantaneously after APP."
//!
//! The irrevocable thread never rolls back: when its eager PUSH meets a
//! foreign uncommitted operation (an optimistic transaction mid-commit),
//! it *waits* — the optimist either commits or, failing validation
//! against the irrevocable thread's published effects, aborts, clearing
//! the way. Optimistic threads behave exactly as in
//! [`crate::optimistic`].

use std::sync::Arc;

use pushpull_core::error::MachineError;
use pushpull_core::machine::Machine;
use pushpull_core::op::ThreadId;
use pushpull_core::spec::SeqSpec;
use pushpull_core::{Code, TxnHandle};

use crate::contention::{
    default_manager, ContentionManager, ContentionState, Gate, Governor, StarvationReport,
};
use crate::driver::{ParallelSystem, SystemStats, Tick, TmSystem, Worker};
use crate::util::{is_conflict, pull_committed_lenient};

/// Per-thread phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Begin,
    Running,
}

/// A system with one irrevocable thread among optimistic ones.
///
/// # Examples
///
/// ```
/// use pushpull_tm::irrevocable::IrrevocableSystem;
/// use pushpull_tm::driver::TmSystem;
/// use pushpull_spec::rwmem::{RwMem, MemMethod, Loc};
/// use pushpull_core::lang::Code;
/// use pushpull_core::op::ThreadId;
///
/// let mut sys = IrrevocableSystem::new(
///     RwMem::new(),
///     vec![
///         vec![Code::method(MemMethod::Write(Loc(0), 1))], // irrevocable
///         vec![Code::method(MemMethod::Write(Loc(1), 2))], // optimistic
///     ],
///     ThreadId(0),
/// );
/// while !sys.is_done() {
///     for t in 0..sys.thread_count() {
///         sys.tick(ThreadId(t))?;
///     }
/// }
/// assert_eq!(sys.irrevocable_aborts(), 0);
/// # Ok::<(), pushpull_core::error::MachineError>(())
/// ```
#[derive(Debug)]
pub struct IrrevocableSystem<S: SeqSpec> {
    machine: Machine<S>,
    irrevocable: ThreadId,
    threads: Vec<IrrThread>,
    contention: Arc<ContentionState>,
    governors: Vec<Governor>,
}

/// Per-thread driver state, owned by exactly one worker.
#[derive(Debug, Clone)]
struct IrrThread {
    phase: Phase,
    stats: SystemStats,
    /// Aborts taken while irrevocable — must stay zero.
    irrevocable_aborts: u64,
}

impl Default for IrrThread {
    fn default() -> Self {
        Self {
            phase: Phase::Begin,
            stats: SystemStats::default(),
            irrevocable_aborts: 0,
        }
    }
}

/// One tick of the pessimistic thread: eager APP;PUSH on its own handle,
/// waiting out (never aborting through) any conflict.
fn tick_irrevocable<S: SeqSpec>(
    h: &mut TxnHandle<S>,
    t: &mut IrrThread,
    gov: &mut Governor,
) -> Result<Tick, MachineError> {
    if t.phase == Phase::Begin {
        pull_committed_lenient(h)?;
        t.phase = Phase::Running;
        return Ok(Tick::Progress);
    }
    let options = h.step_options()?;
    if options.is_empty() {
        // Everything is already pushed; CMT cannot fail for the
        // irrevocable thread — an injected denial is waited out (never
        // abort), and the retry next tick succeeds.
        return match h.commit() {
            Ok(_) => {
                t.phase = Phase::Begin;
                t.stats.commits += 1;
                gov.on_commit();
                Ok(Tick::Committed)
            }
            Err(e) if is_conflict(&e) => {
                t.stats.blocked_ticks += 1;
                Ok(Tick::Blocked)
            }
            Err(e) => Err(e),
        };
    }
    // Refresh committed view, then APP;PUSH eagerly.
    pull_committed_lenient(h)?;
    let method = options[0].0.clone();
    let op = match h.app_method(&method) {
        Ok(op) => op,
        Err(MachineError::NoAllowedResult(_)) => {
            // A racing commit shifted the committed prefix between our
            // PULL and APP; the snapshot will be consistent next tick.
            t.stats.blocked_ticks += 1;
            return Ok(Tick::Blocked);
        }
        Err(e) if is_conflict(&e) => {
            // An injected APP denial: transient — retry next tick.
            t.stats.blocked_ticks += 1;
            return Ok(Tick::Blocked);
        }
        Err(e) => return Err(e),
    };
    match h.push(op) {
        Ok(()) => Ok(Tick::Progress),
        Err(e) if is_conflict(&e) => {
            // An optimistic transaction is mid-commit: wait it out.
            // (Never abort — undo the APP and retry the same method.)
            h.unapp()?;
            t.stats.blocked_ticks += 1;
            Ok(Tick::Blocked)
        }
        Err(e) => Err(e),
    }
}

/// One tick of an optimistic thread, exactly as in [`crate::optimistic`].
fn tick_optimistic<S: SeqSpec>(
    h: &mut TxnHandle<S>,
    t: &mut IrrThread,
    gov: &mut Governor,
) -> Result<Tick, MachineError> {
    if t.phase == Phase::Begin {
        pull_committed_lenient(h)?;
        t.phase = Phase::Running;
        return Ok(Tick::Progress);
    }
    let options = h.step_options()?;
    if options.is_empty() {
        return match h.push_all_and_commit() {
            Ok(_) => {
                t.phase = Phase::Begin;
                t.stats.commits += 1;
                gov.on_commit();
                Ok(Tick::Committed)
            }
            Err(e) if is_conflict(&e) => abort_optimistic(h, t, gov),
            Err(e) => Err(e),
        };
    }
    let method = options[0].0.clone();
    match h.app_method(&method) {
        Ok(_) => {
            gov.on_progress();
            Ok(Tick::Progress)
        }
        Err(MachineError::NoAllowedResult(_)) => abort_optimistic(h, t, gov),
        Err(e) if is_conflict(&e) => abort_optimistic(h, t, gov),
        Err(e) => Err(e),
    }
}

fn abort_optimistic<S: SeqSpec>(
    h: &mut TxnHandle<S>,
    t: &mut IrrThread,
    gov: &mut Governor,
) -> Result<Tick, MachineError> {
    h.abort_and_retry()?;
    t.phase = Phase::Begin;
    t.stats.aborts += 1;
    gov.on_abort();
    Ok(Tick::Aborted)
}

/// One tick for one thread; dispatches on whether this is the
/// irrevocable thread. No cross-thread driver state exists at all — the
/// machine's global log is the only shared structure.
fn tick_thread<S: SeqSpec>(
    irrevocable: ThreadId,
    h: &mut TxnHandle<S>,
    t: &mut IrrThread,
    gov: &mut Governor,
) -> Result<Tick, MachineError> {
    match gov.gate(h) {
        Gate::Done => return Ok(Tick::Done),
        Gate::Park => {
            t.stats.blocked_ticks += 1;
            return Ok(Tick::Blocked);
        }
        Gate::Kill if h.tid() != irrevocable => return abort_optimistic(h, t, gov),
        Gate::Kill => {
            // The irrevocable thread never aborts — an injected kill
            // degenerates to a stall of one tick.
            t.stats.blocked_ticks += 1;
            return Ok(Tick::Blocked);
        }
        Gate::Run => {}
    }
    if h.tid() == irrevocable {
        tick_irrevocable(h, t, gov)
    } else {
        tick_optimistic(h, t, gov)
    }
}

impl<S: SeqSpec> IrrevocableSystem<S> {
    /// Creates a system where thread `irrevocable` runs pessimistically
    /// (eager PUSH, never aborts) and all others run optimistically.
    ///
    /// # Panics
    ///
    /// Panics if `irrevocable` is out of range for `programs`.
    pub fn new(spec: S, programs: Vec<Vec<Code<S::Method>>>, irrevocable: ThreadId) -> Self {
        Self::with_contention(spec, programs, irrevocable, default_manager())
    }

    /// Creates a system with an explicit contention-management policy.
    ///
    /// # Panics
    ///
    /// Panics if `irrevocable` is out of range for `programs`.
    pub fn with_contention(
        spec: S,
        programs: Vec<Vec<Code<S::Method>>>,
        irrevocable: ThreadId,
        cm: Arc<dyn ContentionManager>,
    ) -> Self {
        assert!(
            irrevocable.0 < programs.len(),
            "irrevocable thread out of range"
        );
        let mut machine = Machine::new(spec);
        let n = programs.len();
        for p in programs {
            machine.add_thread(p);
        }
        let contention = ContentionState::new(cm);
        let governors = contention.governors(n);
        Self {
            machine,
            irrevocable,
            threads: vec![IrrThread::default(); n],
            contention,
            governors,
        }
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Machine<S> {
        &self.machine
    }

    /// Accumulated statistics (summed over threads).
    pub fn stats(&self) -> SystemStats {
        let mut stats: SystemStats = self.threads.iter().map(|t| t.stats).sum();
        self.contention.fold_into(&mut stats);
        crate::driver::fold_machine_counters(&self.machine, &mut stats);
        stats
    }

    /// Aborts taken by the irrevocable thread — must always be zero; kept
    /// as an observable so tests state it as an assertion, not an
    /// assumption.
    pub fn irrevocable_aborts(&self) -> u64 {
        self.threads.iter().map(|t| t.irrevocable_aborts).sum()
    }
}

impl<S: SeqSpec> Clone for IrrevocableSystem<S>
where
    Machine<S>: Clone,
{
    fn clone(&self) -> Self {
        let contention = self.contention.fork();
        let governors = contention.governors(self.threads.len());
        Self {
            machine: self.machine.clone(),
            irrevocable: self.irrevocable,
            threads: self.threads.clone(),
            contention,
            governors,
        }
    }
}

impl<S: SeqSpec> TmSystem for IrrevocableSystem<S> {
    fn tick(&mut self, tid: ThreadId) -> Result<Tick, MachineError> {
        tick_thread(
            self.irrevocable,
            self.machine.handle_mut(tid)?,
            &mut self.threads[tid.0],
            &mut self.governors[tid.0],
        )
    }

    fn thread_count(&self) -> usize {
        self.machine.thread_count()
    }

    fn is_done(&self) -> bool {
        (0..self.machine.thread_count()).all(|t| {
            self.machine
                .thread(ThreadId(t))
                .map(|t| t.is_done())
                .unwrap_or(true)
        })
    }

    fn name(&self) -> &'static str {
        "irrevocable"
    }

    fn starvation(&self) -> Option<StarvationReport> {
        Some(self.contention.report())
    }

    crate::driver::forward_machine_hooks!();
}

impl<S> ParallelSystem for IrrevocableSystem<S>
where
    S: SeqSpec + Send + Sync,
    S::Method: Send + Sync,
    S::Ret: Send + Sync,
    S::State: Send + Sync,
{
    fn workers(&mut self) -> Vec<Worker<'_>> {
        let irrevocable = self.irrevocable;
        self.machine
            .handles_mut()
            .iter_mut()
            .zip(self.threads.iter_mut())
            .zip(self.governors.iter_mut())
            .map(|((h, t), gov)| {
                Box::new(move || tick_thread(irrevocable, h, t, gov)) as Worker<'_>
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushpull_core::serializability::check_machine;
    use pushpull_spec::rwmem::{Loc, MemMethod, RwMem};

    fn run_round_robin<S: SeqSpec>(sys: &mut IrrevocableSystem<S>, max_ticks: usize) {
        let n = sys.thread_count();
        for i in 0..max_ticks {
            if sys.is_done() {
                return;
            }
            let _ = sys.tick(ThreadId(i % n)).unwrap();
        }
        panic!("system did not terminate within {max_ticks} ticks");
    }

    fn rw_prog(l: u32, v: i64) -> Vec<Code<MemMethod>> {
        vec![Code::seq_all(vec![
            Code::method(MemMethod::Read(Loc(l))),
            Code::method(MemMethod::Write(Loc(l), v)),
        ])]
    }

    #[test]
    fn irrevocable_never_aborts_under_conflict() {
        // Irrevocable and two optimists all read-modify-write loc 0.
        let mut sys = IrrevocableSystem::new(
            RwMem::new(),
            vec![rw_prog(0, 1), rw_prog(0, 2), rw_prog(0, 3)],
            ThreadId(0),
        );
        run_round_robin(&mut sys, 8000);
        assert_eq!(sys.stats().commits, 3);
        assert_eq!(sys.irrevocable_aborts(), 0);
        let report = check_machine(sys.machine());
        assert!(report.is_serializable(), "{report}");
    }

    #[test]
    fn irrevocable_pushes_eagerly() {
        let mut sys = IrrevocableSystem::new(
            RwMem::new(),
            vec![rw_prog(0, 1), rw_prog(1, 2)],
            ThreadId(0),
        );
        // Tick irrevocable through begin + first op.
        sys.tick(ThreadId(0)).unwrap();
        sys.tick(ThreadId(0)).unwrap();
        let names = sys.machine().trace().rule_names(ThreadId(0));
        assert_eq!(
            names.last(),
            Some(&"PUSH"),
            "APP must be followed immediately by PUSH"
        );
        run_round_robin(&mut sys, 4000);
        assert!(check_machine(sys.machine()).is_serializable());
    }

    #[test]
    fn optimists_abort_against_irrevocable_effects() {
        // Force the optimist to observe a stale loc 0, then the
        // irrevocable thread writes it; the optimist must abort at least
        // once and still commit eventually.
        let mut sys = IrrevocableSystem::new(
            RwMem::new(),
            vec![rw_prog(0, 1), rw_prog(0, 2)],
            ThreadId(0),
        );
        // Optimist snapshots and reads first.
        sys.tick(ThreadId(1)).unwrap(); // begin
        sys.tick(ThreadId(1)).unwrap(); // read loc0 = 0
                                        // Irrevocable runs to commit.
        while sys.machine().thread(ThreadId(0)).unwrap().commits() == 0 {
            sys.tick(ThreadId(0)).unwrap();
        }
        run_round_robin(&mut sys, 4000);
        assert_eq!(sys.stats().commits, 2);
        assert!(sys.stats().aborts >= 1);
        assert_eq!(sys.irrevocable_aborts(), 0);
        assert!(check_machine(sys.machine()).is_serializable());
    }
}
