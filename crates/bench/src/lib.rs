//! # pushpull-bench
//!
//! Shared helpers for the Criterion benchmark harness. Each bench target
//! regenerates one experiment of EXPERIMENTS.md:
//!
//! | target | experiment |
//! |---|---|
//! | `benches/algorithms.rs` | B1 — algorithm × workload throughput/abort table |
//! | `benches/crossover.rs` | B2 — abort-rate crossover as the read ratio sweeps |
//! | `benches/rule_overhead.rs` | B3 — cost of checking the rule criteria |
//! | `benches/movers.rs` | B4 — algebraic vs exhaustive mover oracles |
//! | `benches/mixed_htm.rs` | B5 — mixed boosting+HTM vs all-HTM on §7 workloads |
//! | `benches/scaling.rs` | B6 — thread scaling |
//! | `benches/contention.rs` | B7 — contention-management policy sweep |
//! | `benches/static_elision.rs` | B8 — runtime payoff of the static criteria prover |
//! | `benches/sharded.rs` | B9 — footprint-sharded vs single-lock shared log |
//! | `benches/single_op.rs` | B10 — lock-free hot-path microbenchmarks |
//! | `benches/transport.rs` | B11 — transport seam cost and faulted throughput |
//! | `benches/server.rs` | B12 — service front-end: group commit, open/closed-loop load |
//!
//! Besides wall-clock measurements, every target prints its shape table
//! (commits/aborts/ticks) to stderr, which EXPERIMENTS.md records.

pub mod timing;

use pushpull_core::machine::Machine;
use pushpull_core::spec::SeqSpec;
use pushpull_harness::scheduler::{run, RandomSched};
use pushpull_tm::driver::{SystemStats, TmSystem};

/// Drives a system to completion with a seeded random scheduler,
/// panicking on rule misuse or non-termination. Returns (stats, ticks).
pub fn drive<T: TmSystem>(
    sys: &mut T,
    seed: u64,
    stats: impl Fn(&T) -> SystemStats,
) -> (SystemStats, usize) {
    let out = run(sys, &mut RandomSched::new(seed), 50_000_000).expect("rule misuse");
    assert!(out.completed, "system did not terminate");
    (stats(sys), out.ticks)
}

/// Asserts the serializability oracle on a finished system's machine —
/// every benchmark run is also a correctness run.
pub fn assert_serializable<S: SeqSpec>(m: &Machine<S>) {
    let report = pushpull_core::serializability::check_machine(m);
    assert!(report.is_serializable(), "{report}");
}

/// One row of a shape table printed to stderr.
pub fn print_row(label: &str, stats: SystemStats, ticks: usize) {
    eprintln!(
        "{label:<34} commits={:<6} aborts={:<6} blocked={:<6} ticks={:<8} abort-rate={:>5.1}%",
        stats.commits,
        stats.aborts,
        stats.blocked_ticks,
        ticks,
        stats.abort_rate() * 100.0
    );
}
