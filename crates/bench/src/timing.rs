//! A minimal, dependency-free stand-in for the slice of the Criterion
//! API the bench targets use.
//!
//! The container builds offline, so the real `criterion` crate is not
//! available; this module keeps the bench sources idiomatic (groups,
//! `BenchmarkId`, `b.iter(..)`) while measuring with `std::time` and
//! printing one line per benchmark:
//!
//! ```text
//! B3-rule-overhead/checked/16       median   41.2µs   (20 samples × 12 iters)
//! ```
//!
//! Samples are medians over a fixed iteration count calibrated to a
//! target sample duration — crude next to Criterion's bootstrapping, but
//! stable enough for the order-of-magnitude comparisons EXPERIMENTS.md
//! records.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export point so bench targets can `use pushpull_bench::timing as criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 20,
        }
    }
}

/// Identifier `function/parameter`, mirroring Criterion's two-part ids.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing a sample count.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

/// Target wall-clock duration of one sample; iteration counts are
/// calibrated so a sample takes roughly this long.
const TARGET_SAMPLE: Duration = Duration::from_millis(10);

impl BenchmarkGroup {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Runs one benchmark and prints its median sample time.
    pub fn bench_function(
        &mut self,
        id: BenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        // Calibrate: how many iterations fit in the target sample time?
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples: Vec<Duration> = (0..self.sample_size)
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                b.elapsed / iters as u32
            })
            .collect();
        samples.sort();
        let median = samples[samples.len() / 2];
        eprintln!(
            "{:<44} median {:>12?}   ({} samples x {} iters)",
            format!("{}/{}", self.name, id),
            median,
            self.sample_size,
            iters
        );
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Passed to the measured closure; `iter` runs and times the payload.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `payload` over this sample's iteration count.
    pub fn iter<R>(&mut self, mut payload: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(payload());
        }
        self.elapsed = start.elapsed();
    }
}

/// Mirrors `criterion::criterion_group!`: bundles bench functions into
/// one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::timing::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: the bench binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_payload() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test-group");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_function(BenchmarkId::new("noop", 1), |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn benchmark_id_renders_both_parts() {
        assert_eq!(BenchmarkId::new("checked", 16).to_string(), "checked/16");
    }
}
