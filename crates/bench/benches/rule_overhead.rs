//! B3: what does checking the Figure 5 criteria cost?
//!
//! Measures the same APP;PUSH;CMT workload on the machine in `Checked`
//! (all criteria), `RelaxedGray` (paper's gray criteria skipped) and
//! `Unchecked` (structural checks only) modes. The delta is the price of
//! turning the paper's proof obligations into runtime checks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pushpull_core::lang::Code;
use pushpull_core::machine::{CheckMode, Machine};
use pushpull_spec::kvmap::{KvMap, MapMethod};

/// One thread, `n` single-put transactions on rotating keys.
fn programs(n: u64) -> Vec<Code<MapMethod>> {
    (0..n).map(|i| Code::method(MapMethod::Put(i % 8, i as i64))).collect()
}

fn run_mode(mode: CheckMode, n: u64) -> usize {
    let mut m = Machine::with_mode(KvMap::new(), mode);
    let t = m.add_thread(programs(n));
    for _ in 0..n {
        m.pull_all_committed(t).expect("pull"); // begin-time snapshot
        let op = m.app_auto(t).expect("app");
        m.push(t, op).expect("push");
        m.commit(t).expect("commit");
    }
    m.global().committed_ops().len()
}

fn bench_rule_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("B3-rule-overhead");
    group.sample_size(20);
    for n in [16u64, 64] {
        group.bench_function(BenchmarkId::new("checked", n), |b| {
            b.iter(|| run_mode(CheckMode::Checked, n))
        });
        group.bench_function(BenchmarkId::new("relaxed-gray", n), |b| {
            b.iter(|| run_mode(CheckMode::RelaxedGray, n))
        });
        group.bench_function(BenchmarkId::new("unchecked", n), |b| {
            b.iter(|| run_mode(CheckMode::Unchecked, n))
        });
    }
    group.finish();

    // Sanity: all modes produce the same committed log on this workload.
    assert_eq!(run_mode(CheckMode::Checked, 32), 32);
    assert_eq!(run_mode(CheckMode::RelaxedGray, 32), 32);
    assert_eq!(run_mode(CheckMode::Unchecked, 32), 32);
}

criterion_group!(benches, bench_rule_overhead);
criterion_main!(benches);
