//! B3: what does checking the Figure 5 criteria cost?
//!
//! Measures the same APP;PUSH;CMT workload on the machine in `Checked`
//! (all criteria), `RelaxedGray` (paper's gray criteria skipped) and
//! `Unchecked` (structural checks only) modes. The delta is the price of
//! turning the paper's proof obligations into runtime checks.
//!
//! B3b isolates the *incremental* `allowed` evaluation: the checked
//! machine memoizes the spec states reached by the committed prefix of
//! `G`, so each PUSH criterion (iii) replays only the uncommitted
//! suffix instead of the whole log. Full replay is O(|G|) per check
//! (quadratic over a run); the incremental path is O(suffix). Both
//! produce identical verdicts and audit counts — `Machine::set_incremental`
//! exists precisely so this benchmark (and the golden-trace tests) can
//! compare them.

use pushpull_bench::timing::{BenchmarkId, Criterion};
use pushpull_bench::{criterion_group, criterion_main};

use pushpull_core::lang::Code;
use pushpull_core::machine::{CheckMode, Machine};
use pushpull_spec::kvmap::{KvMap, MapMethod};

/// One thread, `n` single-put transactions on rotating keys.
fn programs(n: u64) -> Vec<Code<MapMethod>> {
    (0..n)
        .map(|i| Code::method(MapMethod::Put(i % 8, i as i64)))
        .collect()
}

fn run_mode(mode: CheckMode, n: u64) -> usize {
    let mut m = Machine::with_mode(KvMap::new(), mode);
    let t = m.add_thread(programs(n));
    for _ in 0..n {
        m.pull_all_committed(t).expect("pull"); // begin-time snapshot
        let op = m.app_auto(t).expect("app");
        m.push(t, op).expect("push");
        m.commit(t).expect("commit");
    }
    m.global().committed_ops().len()
}

/// The B3b workload under `Checked` with the incremental prefix cache
/// toggled, returning the audit snapshot for the sanity comparison.
///
/// No begin-time snapshot, and every transaction puts a *fresh* key (a
/// first put observes `None` whatever `G` holds), so each transaction
/// is just APP;PUSH;CMT and the run's cost is dominated by PUSH
/// criterion (iii)'s `G allows op` query — exactly the check the prefix
/// cache turns from an O(|G|) replay into an O(suffix) evaluation.
fn run_incremental(on: bool, n: u64) -> pushpull_core::audit::CriteriaAudit {
    let mut m = Machine::with_mode(KvMap::new(), CheckMode::Checked);
    m.set_incremental(on);
    let t = m.add_thread(
        (0..n)
            .map(|i| Code::method(MapMethod::Put(i, i as i64)))
            .collect(),
    );
    for _ in 0..n {
        let op = m.app_auto(t).expect("app");
        m.push(t, op).expect("push");
        m.commit(t).expect("commit");
    }
    assert_eq!(m.global().committed_ops().len(), n as usize);
    m.audit()
}

fn bench_rule_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("B3-rule-overhead");
    group.sample_size(20);
    for n in [16u64, 64] {
        group.bench_function(BenchmarkId::new("checked", n), |b| {
            b.iter(|| run_mode(CheckMode::Checked, n))
        });
        group.bench_function(BenchmarkId::new("relaxed-gray", n), |b| {
            b.iter(|| run_mode(CheckMode::RelaxedGray, n))
        });
        group.bench_function(BenchmarkId::new("unchecked", n), |b| {
            b.iter(|| run_mode(CheckMode::Unchecked, n))
        });
    }
    group.finish();

    // Sanity: all modes produce the same committed log on this workload.
    assert_eq!(run_mode(CheckMode::Checked, 32), 32);
    assert_eq!(run_mode(CheckMode::RelaxedGray, 32), 32);
    assert_eq!(run_mode(CheckMode::Unchecked, 32), 32);

    // B3b: incremental (committed-prefix cached) vs full-replay
    // `allowed` evaluation, all criteria checked in both.
    let mut group = c.benchmark_group("B3b-incremental-allowed");
    group.sample_size(20);
    for n in [16u64, 64, 256] {
        group.bench_function(BenchmarkId::new("incremental", n), |b| {
            b.iter(|| run_incremental(true, n))
        });
        group.bench_function(BenchmarkId::new("full-replay", n), |b| {
            b.iter(|| run_incremental(false, n))
        });
    }
    group.finish();

    // Sanity: the two evaluation strategies discharge bit-identical
    // audit counts (same obligations, same tallies, same query counts).
    assert_eq!(run_incremental(true, 64), run_incremental(false, 64));
}

criterion_group!(benches, bench_rule_overhead);
criterion_main!(benches);
