//! B5: §7's payoff, measured. Mixed boosting+HTM transactions vs an
//! all-HTM encoding of the same workload, sweeping HTM-word contention.
//!
//! The §7 transaction touches two boosted collections (cheap abstract
//! commutativity) and shared HTM words (`size`, `x`). In the all-HTM
//! encoding every collection operation also touches a per-structure
//! metadata word — the memory-level footprint a word-granularity TM
//! cannot avoid — so collection traffic that is abstractly commutative
//! becomes memory-conflicting. The shape claim: as more threads share
//! the structures, the mixed system aborts far less than all-HTM.

use pushpull_bench::timing::{BenchmarkId, Criterion};
use pushpull_bench::{criterion_group, criterion_main};

use pushpull_bench::{assert_serializable, drive, print_row};
use pushpull_core::lang::Code;
use pushpull_spec::counter::CtrMethod;
use pushpull_spec::kvmap::MapMethod;
use pushpull_spec::rwmem::{Loc, MemMethod};
use pushpull_spec::set::SetMethod;
use pushpull_tm::htm::HtmSystem;
use pushpull_tm::mixed::{methods, mixed_spec, MixedMethod, MixedSystem};

/// The §7 transaction for thread `t`, on its own keys but shared words.
fn mixed_prog(t: u64, txns: usize) -> Vec<Code<MixedMethod>> {
    (0..txns as u64)
        .map(|i| {
            let k = t * 1000 + i;
            Code::seq_all(vec![
                Code::method(methods::skiplist(SetMethod::Add(k))),
                Code::method(methods::size(CtrMethod::Add(1))),
                Code::method(methods::hash_table(MapMethod::Put(k, k as i64))),
                Code::method(methods::mem(MemMethod::Write(Loc((t % 2) as u32), 1))),
            ])
        })
        .collect()
}

/// The same logical workload, all-HTM: collection ops become writes to a
/// per-key word PLUS a read-modify-write of the structure's metadata
/// word (words 100 and 101); `size` is word 102.
fn all_htm_prog(t: u64, txns: usize) -> Vec<Code<MemMethod>> {
    (0..txns as u64)
        .map(|i| {
            let k = (t * 1000 + i) as u32;
            Code::seq_all(vec![
                // skiplist.insert(k): key word + structure metadata RMW
                Code::method(MemMethod::Write(Loc(200 + k), 1)),
                Code::method(MemMethod::Read(Loc(100))),
                Code::method(MemMethod::Write(Loc(100), (i + 1) as i64)),
                // size++
                Code::method(MemMethod::Read(Loc(102))),
                Code::method(MemMethod::Write(Loc(102), (i + 1) as i64)),
                // hashT.put(k, v): key word + metadata RMW
                Code::method(MemMethod::Write(Loc(400 + k), k as i64)),
                Code::method(MemMethod::Read(Loc(101))),
                Code::method(MemMethod::Write(Loc(101), (i + 1) as i64)),
                // x++
                Code::method(MemMethod::Write(Loc((t % 2) as u32), 1)),
            ])
        })
        .collect()
}

fn bench_mixed(c: &mut Criterion) {
    let mut group = c.benchmark_group("B5-mixed-htm");
    group.sample_size(10);
    for threads in [2usize, 4] {
        group.bench_function(BenchmarkId::new("mixed", threads), |b| {
            b.iter(|| {
                let progs = (0..threads as u64).map(|t| mixed_prog(t, 4)).collect();
                let mut sys = MixedSystem::new(mixed_spec(), progs);
                drive(&mut sys, 9, |s| s.stats())
            })
        });
        group.bench_function(BenchmarkId::new("all-htm", threads), |b| {
            b.iter(|| {
                let progs = (0..threads as u64).map(|t| all_htm_prog(t, 4)).collect();
                let mut sys = HtmSystem::new(progs);
                drive(&mut sys, 9, |s| s.stats())
            })
        });
    }
    group.finish();

    eprintln!("\n=== B5 shape table (4 txns/thread) ===");
    for threads in [1usize, 2, 4] {
        let progs = (0..threads as u64).map(|t| mixed_prog(t, 4)).collect();
        let mut sys = MixedSystem::new(mixed_spec(), progs);
        let (s, t) = drive(&mut sys, 9, |s| s.stats());
        assert_serializable(sys.machine());
        print_row(&format!("mixed boosting+HTM / {threads}T"), s, t);

        let progs = (0..threads as u64).map(|t| all_htm_prog(t, 4)).collect();
        let mut sys = HtmSystem::new(progs);
        let (s, t) = drive(&mut sys, 9, |s| s.stats());
        assert_serializable(sys.machine());
        print_row(&format!("all-HTM encoding    / {threads}T"), s, t);
    }
}

criterion_group!(benches, bench_mixed);
criterion_main!(benches);
