//! B9: what does sharding the shared log buy under real parallelism?
//!
//! The shared log G is split into footprint-addressed shards, each with
//! its own lock; a rule's criteria only lock (and replay) the shards its
//! operation's declared footprint touches. This target hammers exactly
//! those critical sections: 8 OS threads each drive a raw `TxnHandle`
//! through APP → PUSH → … → CMT cycles. The workload is write-only
//! read/write memory — `Write` returns `Ack` in any state, so the runs
//! are pull-free and abort-free and every criterion verdict is
//! schedule-independent (a state-dependent return like kvmap's
//! `Put → Prev` would correctly be *rejected* by PUSH (iii) without a
//! pull; writes are the honest way to isolate the shared-log path).
//!
//! * **disjoint** — each thread writes its own locations, which land on
//!   its own shards: with enough shards the threads stop contending
//!   *and* each PUSH criterion only replays its shard's entries instead
//!   of everyone's;
//! * **contended** — every thread's locations are ≡ 0 (mod 16), so all
//!   routes collide on shard 0 at every shard count in the sweep: the
//!   control where sharding cannot help.
//!
//! Sharding must change the *cost* of the criteria, never their
//! verdicts: before timing, every run is checked for full commits, a
//! green serializability oracle, and an audit ledger bit-identical to
//! the single-shard baseline — even under OS-thread interleavings. The
//! shape table prints commits plus the per-shard lock counters
//! (acquires/contended); EXPERIMENTS.md §B9 keeps the numbers.

use pushpull_bench::timing::{BenchmarkId, Criterion};
use pushpull_bench::{assert_serializable, criterion_group, criterion_main};

use pushpull_core::lang::Code;
use pushpull_core::machine::Machine;
use pushpull_harness::testutil::assert_ledger_matches;
use pushpull_spec::rwmem::{Loc, MemMethod, RwMem};

const THREADS: u32 = 8;
const TXNS: u32 = 40;
const OPS: u32 = 12;

/// Per-thread transaction bodies. Disjoint mode gives thread `t` the
/// locations `t` and `t + 8` — at 16 shards that is two private shards
/// per thread; contended mode gives thread `t` the location `16·t`,
/// distinct per thread (so no mover ever fails) but congruent mod 16
/// (so every shard count in the sweep routes them all to shard 0).
fn methods(t: u32, disjoint: bool) -> Vec<Vec<MemMethod>> {
    (0..TXNS)
        .map(|i| {
            (0..OPS)
                .map(|j| {
                    let loc = if disjoint {
                        t + THREADS * (j % 2)
                    } else {
                        16 * t
                    };
                    MemMethod::Write(Loc(loc), (i * OPS + j) as i64)
                })
                .collect()
        })
        .collect()
}

/// Builds the machine and drives all threads to completion on real OS
/// threads; returns it for inspection.
fn run_once(shards: usize, disjoint: bool) -> Machine<RwMem> {
    let mut m = Machine::new(RwMem::new());
    let bodies: Vec<Vec<Vec<MemMethod>>> = (0..THREADS).map(|t| methods(t, disjoint)).collect();
    for body in &bodies {
        m.add_thread(
            body.iter()
                .map(|txn| Code::seq_all(txn.iter().cloned().map(Code::method)))
                .collect(),
        );
    }
    m.set_log_shards(shards);
    std::thread::scope(|scope| {
        for (h, body) in m.handles_mut().iter_mut().zip(&bodies) {
            scope.spawn(move || {
                for txn in body {
                    for method in txn {
                        let op = h.app_method(method).expect("app");
                        h.push(op).expect("push");
                    }
                    h.commit().expect("commit");
                }
            });
        }
    });
    m
}

fn bench_sharded(c: &mut Criterion) {
    // The analyzer picks the sweep's top shard count: one shard per
    // declared key class of the disjoint workload (16 locations),
    // capped at 16 — the same `recommended_shards()` the certified-plan
    // path feeds `run_parallel_sharded`.
    let programs: Vec<Vec<Code<MemMethod>>> = (0..THREADS)
        .map(|t| {
            methods(t, true)
                .into_iter()
                .map(|txn| Code::seq_all(txn.into_iter().map(Code::method)))
                .collect()
        })
        .collect();
    let recommended = pushpull_analysis::analyze(&RwMem::new(), &programs).recommended_shards();
    assert_eq!(
        recommended, 16,
        "16 declared location classes, capped at 16"
    );

    // Sanity before timing: at every shard count the run commits every
    // transaction, the oracle passes, and the audit ledger is
    // bit-identical to the single-shard baseline — sharding changed no
    // verdict, even under OS-thread interleavings.
    let base = run_once(1, true);
    assert_serializable(&base);
    let base_audit = base.audit();
    assert_eq!(base.committed_txns().len() as u32, THREADS * TXNS);
    for shards in [4usize, recommended] {
        let m = run_once(shards, true);
        assert_serializable(&m);
        assert_eq!(m.committed_txns().len() as u32, THREADS * TXNS);
        assert_ledger_matches(&m.audit(), &base_audit);
    }

    let mut group = c.benchmark_group("B9-sharded-log");
    group.sample_size(15);
    for shards in [1usize, 4, recommended] {
        group.bench_function(BenchmarkId::new("disjoint-8T", shards), |b| {
            b.iter(|| run_once(shards, true))
        });
        group.bench_function(BenchmarkId::new("contended-8T", shards), |b| {
            b.iter(|| run_once(shards, false))
        });
    }
    group.finish();

    eprintln!("\n=== B9 shape table (8 OS threads, 40 txns x 12 writes each) ===");
    for disjoint in [true, false] {
        for shards in [1usize, 4, 16] {
            let m = run_once(shards, disjoint);
            let (acq, cont) = m.lock_stats();
            eprintln!(
                "{} / {shards:>2} shards  commits={:<4} lock-acquires={acq:<7} contended={cont}",
                if disjoint { "disjoint " } else { "contended" },
                m.committed_txns().len(),
            );
        }
    }
}

criterion_group!(benches, bench_sharded);
criterion_main!(benches);
