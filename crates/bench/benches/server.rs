//! B12: what does the service front-end deliver — and what does
//! per-shard group commit buy it?
//!
//! The system under test is [`TxnServer`]: logical sessions multiplexed
//! onto a bounded worker pool, commit-ready transactions batched per
//! destination shard (one shard-lock acquisition and one contiguous
//! stamp reservation per batch). Three questions:
//!
//! * **Saturation throughput (closed loop)** — 512 disjoint-key sessions
//!   over 4 workers × 16 slots, driven on OS threads, group commit on
//!   vs off. The gap is the amortized shard lock: with full slots a
//!   batch covers up to 16 commits per acquisition.
//! * **Arrival shape (open loop)** — sessions become eligible on the
//!   worker clock (one per tick) instead of all at once, so the
//!   commit-ready population per tick collapses to ~1 and group commit
//!   degenerates to per-transaction batches; the shape table prints the
//!   batch counts and nearest-rank p50/p90/p99 in-service latency
//!   (admission → commit, worker ticks) from the deterministic drive.
//! * **Contention** — every session read-modify-writes one hot key; the
//!   retry loop prices conflict resolution through the same front door.
//!
//! Before timing: the batched run must be bit-identical to the unbatched
//! one (committed transactions, trace, audit ledger), and the batched
//! disjoint run must average **below one lock acquisition per committed
//! transaction**. EXPERIMENTS.md §B12 keeps the numbers.

use pushpull_bench::timing::{BenchmarkId, Criterion};
use pushpull_bench::{assert_serializable, criterion_group, criterion_main};

use pushpull_harness::testutil::assert_ledger_matches;
use pushpull_harness::{run, run_parallel, LatencyHistogram, RoundRobin};
use pushpull_server::{ServerConfig, SessionScript, TxnServer};
use pushpull_spec::kvmap::{KvMap, MapMethod};

const WORKERS: usize = 4;
const SLOTS: usize = 16;
const SESSIONS: u64 = 512;
const BUDGET: usize = 5_000_000;

/// Disjoint keys: every session owns its own key, so batching is the
/// only variable — no conflict resolution in the measurement.
fn disjoint_scripts() -> Vec<SessionScript<MapMethod>> {
    (0..SESSIONS)
        .map(|s| {
            SessionScript::commit(vec![
                MapMethod::Put(s, s as i64),
                MapMethod::Get(s),
                MapMethod::Put(s, (s + 1) as i64),
            ])
        })
        .collect()
}

/// One hot key: every session read-modify-writes key 0.
fn contended_scripts(n: u64) -> Vec<SessionScript<MapMethod>> {
    (0..n)
        .map(|s| SessionScript::commit(vec![MapMethod::Get(0), MapMethod::Put(0, s as i64)]))
        .collect()
}

fn config(group: bool, arrival_period: u64) -> ServerConfig {
    ServerConfig {
        workers: WORKERS,
        slots_per_worker: SLOTS,
        group_commit: group,
        arrival_period,
        ..ServerConfig::default()
    }
}

/// Deterministic sequential drive (round-robin workers), for the
/// equivalence checks and the latency shape table.
fn run_deterministic(
    scripts: Vec<SessionScript<MapMethod>>,
    group: bool,
    arrival_period: u64,
) -> TxnServer<KvMap> {
    let mut sys = TxnServer::new(KvMap::new(), scripts, config(group, arrival_period));
    let out = run(&mut sys, &mut RoundRobin, BUDGET).expect("machine error");
    assert!(out.completed, "server wedged");
    sys
}

/// OS-thread drive (one thread per worker), for the timed saturation
/// runs.
fn run_os_threads(scripts: Vec<SessionScript<MapMethod>>, group: bool) -> TxnServer<KvMap> {
    let sys = TxnServer::new(KvMap::new(), scripts, config(group, 0));
    let (sys, outcome) = run_parallel(sys, BUDGET, None).expect("parallel run failed");
    assert!(outcome.completed, "server wedged on OS threads");
    sys
}

fn latencies(sys: &TxnServer<KvMap>) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for l in sys.commit_latencies() {
        h.record(l);
    }
    h
}

fn bench_server(c: &mut Criterion) {
    // Sanity before timing. Batching must be observationally invisible:
    // bit-identical committed transactions, trace and audit ledger.
    let on = run_deterministic(disjoint_scripts(), true, 0);
    let off = run_deterministic(disjoint_scripts(), false, 0);
    assert_serializable(on.machine());
    assert_serializable(off.machine());
    assert_eq!(
        format!("{:?}", on.machine().committed_txns()),
        format!("{:?}", off.machine().committed_txns()),
        "batched and unbatched committed transactions diverge"
    );
    assert_eq!(
        on.machine().trace().render(),
        off.machine().trace().render(),
        "batched and unbatched traces diverge"
    );
    assert_ledger_matches(&on.machine().audit(), &off.machine().audit());
    // And it must actually amortize: below one acquisition per commit.
    let stats = on.stats();
    assert_eq!(stats.commits, SESSIONS);
    assert!(
        stats.lock_acquires < stats.commits,
        "batched disjoint run must average below one lock per commit \
         ({} acquires / {} commits)",
        stats.lock_acquires,
        stats.commits
    );
    assert!(off.stats().lock_acquires > stats.lock_acquires);

    let mut group = c.benchmark_group("B12-server");
    group.sample_size(10);
    for batched in [true, false] {
        let label = if batched { "group" } else { "single" };
        group.bench_function(BenchmarkId::new("closed-disjoint-4Wx16S", label), |b| {
            b.iter(|| run_os_threads(disjoint_scripts(), batched))
        });
        group.bench_function(BenchmarkId::new("closed-hotkey-4Wx16S", label), |b| {
            b.iter(|| run_deterministic(contended_scripts(128), batched, 0))
        });
        group.bench_function(BenchmarkId::new("open-arrival-p1", label), |b| {
            b.iter(|| run_deterministic(disjoint_scripts(), batched, 1))
        });
    }
    group.finish();

    eprintln!("\n=== B12 shape table ({WORKERS} workers x {SLOTS} slots, {SESSIONS} sessions) ===");
    for (name, scripts, arrival) in [
        ("closed/disjoint", disjoint_scripts(), 0u64),
        ("open-p1/disjoint", disjoint_scripts(), 1),
        ("closed/hotkey-128", contended_scripts(128), 0),
    ] {
        for batched in [true, false] {
            let sys = run_deterministic(scripts.clone(), batched, arrival);
            let s = sys.stats();
            let lat = latencies(&sys);
            eprintln!(
                "{name:<18} {:<6} commits={:<4} aborts={:<5} locks={:<5} batches={:<4} \
                 locks-saved={:<5} locks/commit={:<5.3} lat[{lat}]",
                if batched { "group" } else { "single" },
                s.commits,
                s.aborts,
                s.lock_acquires,
                s.group_batches,
                s.group_locks_saved,
                s.lock_acquires as f64 / s.commits.max(1) as f64,
            );
        }
    }
}

criterion_group!(benches, bench_server);
criterion_main!(benches);
