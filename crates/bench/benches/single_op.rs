//! B10: the cost of one operation on the lock-free shard hot path.
//!
//! B9 measures throughput under OS-thread contention; this target
//! isolates the *single-op* costs the log-memory overhaul targets:
//!
//! * **app-push-unpush-unapp** — one full forward/backward cycle of a
//!   declared-footprint write. PUSH speculates its criteria against the
//!   shard's published snapshot (zero locks for the criteria window,
//!   one for the append); UNPUSH returns the entry's arena slot, so at
//!   steady state the cycle allocates nothing for log storage — slots
//!   and `SmallVec` footprints are recycled, which the per-op
//!   allocation counts (from a counting global allocator) make visible.
//! * **can-push-readonly** — the pure criteria check on a disjoint
//!   footprint: zero locks, zero log mutation. The bench-smoke
//!   assertion pins the zero: if the fast path ever regresses into
//!   taking a mutex, this target fails before timing anything.
//!
//! The shape table prints per-op allocation counts and the machine's
//! seqlock/arena counters; EXPERIMENTS.md §B10 keeps the numbers.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use pushpull_bench::timing::{BenchmarkId, Criterion};
use pushpull_bench::{criterion_group, criterion_main};

use pushpull_core::lang::Code;
use pushpull_core::machine::Machine;
use pushpull_core::op::{OpId, ThreadId};
use pushpull_spec::rwmem::{Loc, MemMethod, RwMem};

/// Counts allocation events (not bytes freed) so the table can report
/// allocations **per operation** at steady state.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation events per call of `f`, averaged over `n` calls.
fn allocs_per(n: u64, mut f: impl FnMut()) -> f64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..n {
        f();
    }
    (ALLOCS.load(Ordering::Relaxed) - before) as f64 / n as f64
}

/// A machine whose thread 0 can run the app→push→unpush→unapp cycle
/// forever: UNAPP restores the saved code, so the single-write program
/// never exhausts. A committed write from a second thread on another
/// shard makes the criteria non-vacuous.
fn cycle_machine(shards: usize) -> (Machine<RwMem>, ThreadId) {
    let mut m = Machine::new(RwMem::new());
    let t = m.add_thread(vec![Code::method(MemMethod::Write(Loc(1), 5))]);
    let other = m.add_thread(vec![Code::method(MemMethod::Write(Loc(0), 7))]);
    m.set_log_shards(shards);
    let w = m.app_auto(other).expect("app other");
    m.push(other, w).expect("push other");
    m.commit(other).expect("commit other");
    (m, t)
}

/// One forward/backward cycle of thread `t`'s write.
fn cycle(m: &mut Machine<RwMem>, t: ThreadId) {
    let op = m.app_auto(t).expect("app");
    m.push(t, op).expect("push");
    m.unpush(t, op).expect("unpush");
    m.unapp(t).expect("unapp");
}

/// A machine holding an un-pushed disjoint read for `can_push` checks.
fn readonly_machine(shards: usize) -> (Machine<RwMem>, ThreadId, OpId) {
    let mut m = Machine::new(RwMem::new());
    let writer = m.add_thread(vec![Code::method(MemMethod::Write(Loc(0), 7))]);
    let reader = m.add_thread(vec![Code::method(MemMethod::Read(Loc(1)))]);
    m.set_log_shards(shards);
    let w = m.app_auto(writer).expect("app writer");
    m.push(writer, w).expect("push writer");
    m.commit(writer).expect("commit writer");
    let op = m.app_auto(reader).expect("app reader");
    (m, reader, op)
}

fn bench_single_op(c: &mut Criterion) {
    // Bench-smoke assertions before timing.
    //
    // 1. The read-only disjoint criteria check takes ZERO mutex
    //    acquisitions — the tentpole property of the seqlock fast path.
    let (m, reader, op) = readonly_machine(16);
    let (acq_before, _) = m.lock_stats();
    let (reads_before, _, fb_before) = m.seqlock_stats();
    for _ in 0..1_000 {
        assert!(m.can_push(reader, op).expect("well-formed"));
    }
    let (acq_after, _) = m.lock_stats();
    let (reads_after, _, fb_after) = m.seqlock_stats();
    assert_eq!(
        acq_after, acq_before,
        "B10 regression: read-only disjoint criteria check took a mutex"
    );
    assert_eq!(reads_after, reads_before + 1_000);
    assert_eq!(fb_after, fb_before, "B10 regression: snapshot fallback");

    // 2. The cycle recycles arena slots: after a warm-up, reuse grows.
    let (mut m, t) = cycle_machine(16);
    for _ in 0..100 {
        cycle(&mut m, t);
    }
    let (_, _, reused) = m.arena_stats();
    assert!(
        reused >= 99,
        "UNPUSH-freed slots must be recycled, got {reused}"
    );

    let mut group = c.benchmark_group("B10-single-op");
    group.sample_size(20);
    for shards in [1usize, 16] {
        group.bench_function(BenchmarkId::new("app-push-unpush-unapp", shards), |b| {
            let (mut m, t) = cycle_machine(shards);
            b.iter(|| cycle(&mut m, t));
        });
        group.bench_function(BenchmarkId::new("can-push-readonly", shards), |b| {
            let (m, reader, op) = readonly_machine(shards);
            b.iter(|| m.can_push(reader, op).expect("well-formed"));
        });
    }
    group.finish();

    eprintln!("\n=== B10 shape table (per-op allocation counts, steady state) ===");
    for shards in [1usize, 16] {
        let (mut m, t) = cycle_machine(shards);
        for _ in 0..1_000 {
            cycle(&mut m, t); // warm up: arena slots + footprint storage
        }
        let cyc = allocs_per(10_000, || cycle(&mut m, t));
        let (live, cap, reused) = m.arena_stats();
        let (acq, _) = m.lock_stats();
        let (reads, retries, fb) = m.seqlock_stats();

        let (rm, reader, op) = readonly_machine(shards);
        let chk = allocs_per(10_000, || {
            rm.can_push(reader, op).expect("well-formed");
        });
        eprintln!(
            "{shards:>2} shards  allocs/cycle={cyc:<6.2} allocs/check={chk:<6.2} \
             arena live={live} cap={cap} reused={reused}  locks={acq}  \
             snaps={reads} (retry={retries} fb={fb})"
        );
    }
}

criterion_group!(benches, bench_single_op);
criterion_main!(benches);
