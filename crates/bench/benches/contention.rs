//! B7: contention-management policy sweep. At fixed workload, how do the
//! four policies trade throughput (ticks to completion) against fairness
//! (max abort streak, p99 retries-to-commit, degradations) as the thread
//! count grows? Immediate-retry wastes the most work under contention;
//! backoff spreads retries; karma ages priority onto the long sufferer;
//! graceful degradation caps every streak at the retry budget by going
//! solo.

use std::sync::Arc;

use pushpull_bench::timing::{BenchmarkId, Criterion};
use pushpull_bench::{criterion_group, criterion_main};

use pushpull_bench::{assert_serializable, drive};
use pushpull_harness::workload::WorkloadSpec;
use pushpull_spec::bank::Bank;
use pushpull_spec::rwmem::RwMem;
use pushpull_tm::driver::TmSystem;
use pushpull_tm::optimistic::{OptimisticSystem, ReadPolicy};
use pushpull_tm::{
    ContentionManager, ExponentialBackoff, GracefulDegradation, ImmediateRetry, KarmaAging,
};

fn policies() -> Vec<(&'static str, Arc<dyn ContentionManager>)> {
    vec![
        ("immediate", Arc::new(ImmediateRetry)),
        ("backoff", Arc::new(ExponentialBackoff::new(99))),
        ("karma", Arc::new(KarmaAging::new())),
        ("degrade", Arc::new(GracefulDegradation::new())),
    ]
}

/// Transfers: every thread moves money between 4 shared accounts —
/// write-heavy, symmetric contention.
fn transfers(threads: usize) -> WorkloadSpec {
    WorkloadSpec {
        threads,
        txns_per_thread: 5,
        ops_per_txn: 3,
        key_range: 4,
        read_ratio: 0.2,
        seed: 2718,
    }
}

/// RMW chains: read-modify-write bursts on a small location set —
/// the classic optimistic-retry stressor.
fn rmw_chains(threads: usize) -> WorkloadSpec {
    WorkloadSpec {
        threads,
        txns_per_thread: 5,
        ops_per_txn: 4,
        key_range: 3,
        read_ratio: 0.5,
        seed: 1618,
    }
}

fn print_policy_row(
    label: &str,
    sys: &OptimisticSystem<impl pushpull_core::spec::SeqSpec>,
    ticks: usize,
) {
    let stats = sys.stats();
    let s = sys
        .starvation()
        .expect("optimistic runs a contention manager");
    eprintln!(
        "{label:<34} commits={:<5} aborts={:<5} ticks={:<8} streak={:<4} p99-retries={:<5.1} degr={}",
        stats.commits, stats.aborts, ticks, s.max_consecutive_aborts, s.p99_retries_to_commit, s.degradations
    );
}

fn bench_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("B7-contention");
    group.sample_size(10);
    for threads in [2usize, 4, 8] {
        for (name, cm) in policies() {
            let w = transfers(threads);
            let cm2 = Arc::clone(&cm);
            group.bench_function(
                BenchmarkId::new(format!("transfers-{name}"), threads),
                move |b| {
                    b.iter(|| {
                        let mut sys = OptimisticSystem::with_contention(
                            Bank::new(),
                            w.bank_programs(),
                            ReadPolicy::Snapshot,
                            Arc::clone(&cm2),
                        );
                        drive(&mut sys, 5, |s| s.stats())
                    })
                },
            );
            let w = rmw_chains(threads);
            group.bench_function(BenchmarkId::new(format!("rmw-{name}"), threads), move |b| {
                b.iter(|| {
                    let mut sys = OptimisticSystem::with_contention(
                        RwMem::new(),
                        w.rwmem_programs(),
                        ReadPolicy::Snapshot,
                        Arc::clone(&cm),
                    );
                    drive(&mut sys, 5, |s| s.stats())
                })
            });
        }
    }
    group.finish();

    eprintln!("\n=== B7 policy shape table: transfers (4 accounts, 20% reads) ===");
    for threads in [2usize, 4, 8] {
        for (name, cm) in policies() {
            let w = transfers(threads);
            let mut sys = OptimisticSystem::with_contention(
                Bank::new(),
                w.bank_programs(),
                ReadPolicy::Snapshot,
                cm,
            );
            let (_, t) = drive(&mut sys, 5, |s| s.stats());
            assert_serializable(sys.machine());
            print_policy_row(&format!("transfers / {threads}T {name}"), &sys, t);
        }
    }
    eprintln!("\n=== B7 policy shape table: rmw-chains (3 locations, 50% reads) ===");
    for threads in [2usize, 4, 8] {
        for (name, cm) in policies() {
            let w = rmw_chains(threads);
            let mut sys = OptimisticSystem::with_contention(
                RwMem::new(),
                w.rwmem_programs(),
                ReadPolicy::Snapshot,
                cm,
            );
            let (_, t) = drive(&mut sys, 5, |s| s.stats());
            assert_serializable(sys.machine());
            print_policy_row(&format!("rmw-chains / {threads}T {name}"), &sys, t);
        }
    }
}

criterion_group!(benches, bench_contention);
criterion_main!(benches);
