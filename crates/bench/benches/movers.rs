//! B4: the cost of mover oracles (Definition 4.1) — algebraic tables vs
//! exhaustive state-space checking, across specifications. This is the
//! knob a real system designer turns: exact criteria checking is
//! expensive; the algebraic tables are what implementations (read/write
//! sets, abstract locks) approximate.

use pushpull_bench::timing::{BenchmarkId, Criterion};
use pushpull_bench::{criterion_group, criterion_main};

use pushpull_core::op::{Op, OpId, TxnId};
use pushpull_core::spec::{mover_exhaustive, SeqSpec};
use pushpull_spec::bank::{ops as bops, Bank};
use pushpull_spec::kvmap::{ops as mops, KvMap};
use pushpull_spec::rwmem::{ops as rops, RwMem};

fn bench_movers(c: &mut Criterion) {
    let mut group = c.benchmark_group("B4-movers");

    // Read/write memory.
    let rw_alg = RwMem::new();
    let rw_exh = RwMem::bounded(
        vec![pushpull_spec::rwmem::Loc(0), pushpull_spec::rwmem::Loc(1)],
        vec![0, 1, 2],
    );
    let rw_uni = rw_exh.state_universe().unwrap();
    let r = rops::read(0, 0, 0, 1);
    let w = rops::write(1, 1, 0, 1);
    group.bench_function(BenchmarkId::new("rwmem", "algebraic"), |b| {
        b.iter(|| rw_alg.mover(&r, &w))
    });
    group.bench_function(BenchmarkId::new("rwmem", "exhaustive"), |b| {
        b.iter(|| mover_exhaustive(&rw_exh, &rw_uni, &r, &w))
    });

    // Key-value map.
    let kv_alg = KvMap::new();
    let kv_exh = KvMap::bounded(vec![0, 1], vec![0, 1]);
    let kv_uni = kv_exh.state_universe().unwrap();
    let p = mops::put(0, 0, 0, 1, None);
    let g = mops::get(1, 1, 1, None);
    group.bench_function(BenchmarkId::new("kvmap", "algebraic"), |b| {
        b.iter(|| kv_alg.mover(&p, &g))
    });
    group.bench_function(BenchmarkId::new("kvmap", "exhaustive"), |b| {
        b.iter(|| mover_exhaustive(&kv_exh, &kv_uni, &p, &g))
    });

    // Bank (the asymmetric example).
    let bank_alg = Bank::new();
    let bank_exh = Bank::bounded(vec![0, 1], 4);
    let bank_uni = bank_exh.state_universe().unwrap();
    let wd = bops::withdraw(0, 0, 0, 2, true);
    let dp = bops::deposit(1, 1, 0, 3);
    group.bench_function(BenchmarkId::new("bank", "algebraic"), |b| {
        b.iter(|| bank_alg.mover(&wd, &dp))
    });
    group.bench_function(BenchmarkId::new("bank", "exhaustive"), |b| {
        b.iter(|| mover_exhaustive(&bank_exh, &bank_uni, &wd, &dp))
    });

    group.finish();

    // Shape check: the oracles agree where both are defined.
    assert_eq!(
        rw_alg.mover(&r, &w),
        mover_exhaustive(&rw_exh, &rw_uni, &r, &w)
    );
    assert!(bank_alg.mover(&wd, &dp));
    assert!(mover_exhaustive(&bank_exh, &bank_uni, &wd, &dp));
    let op1: Op<_, _> = Op::new(
        OpId(7),
        TxnId(0),
        pushpull_spec::bank::BankMethod::Deposit(0, 3),
        pushpull_spec::bank::BankRet::Ack,
    );
    let op2 = bops::withdraw(8, 1, 0, 2, true);
    assert!(
        !bank_alg.mover(&op1, &op2),
        "deposit must not move across a successful withdraw"
    );
}

criterion_group!(benches, bench_movers);
criterion_main!(benches);
