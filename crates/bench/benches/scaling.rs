//! B6: thread scaling. How does work-to-completion grow with thread
//! count, per algorithm, at fixed per-thread load? On commutative
//! (disjoint-key) workloads both boosting and optimism should scale
//! near-linearly in total ticks (no wasted work); under contention the
//! optimistic retry tax grows with the thread count while boosting's
//! blocking keeps wasted work bounded.

use pushpull_bench::timing::{BenchmarkId, Criterion};
use pushpull_bench::{criterion_group, criterion_main};

use pushpull_bench::{assert_serializable, drive, print_row};
use pushpull_harness::workload::WorkloadSpec;
use pushpull_spec::kvmap::KvMap;
use pushpull_tm::boosting::BoostingSystem;
use pushpull_tm::optimistic::{OptimisticSystem, ReadPolicy};

fn workload(threads: usize) -> WorkloadSpec {
    WorkloadSpec {
        threads,
        txns_per_thread: 6,
        ops_per_txn: 3,
        key_range: 6,
        read_ratio: 0.5,
        seed: 314,
    }
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("B6-scaling");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let w = workload(threads);
        group.bench_function(BenchmarkId::new("boosting-contended", threads), |b| {
            b.iter(|| {
                let mut sys = BoostingSystem::new(KvMap::new(), w.kvmap_programs());
                drive(&mut sys, 5, |s| s.stats())
            })
        });
        group.bench_function(BenchmarkId::new("optimistic-contended", threads), |b| {
            b.iter(|| {
                let mut sys =
                    OptimisticSystem::new(KvMap::new(), w.kvmap_programs(), ReadPolicy::Snapshot);
                drive(&mut sys, 5, |s| s.stats())
            })
        });
    }
    group.finish();

    eprintln!("\n=== B6 scaling shape table (6 txns/thread, 6 keys, 50% reads) ===");
    for threads in [1usize, 2, 4, 8] {
        let w = workload(threads);
        {
            let mut sys = BoostingSystem::new(KvMap::new(), w.kvmap_programs());
            let (s, t) = drive(&mut sys, 5, |s| s.stats());
            assert_serializable(sys.machine());
            print_row(&format!("boosting   / {threads}T contended"), s, t);
        }
        {
            let mut sys =
                OptimisticSystem::new(KvMap::new(), w.kvmap_programs(), ReadPolicy::Snapshot);
            let (s, t) = drive(&mut sys, 5, |s| s.stats());
            assert_serializable(sys.machine());
            print_row(&format!("optimistic / {threads}T contended"), s, t);
        }
        {
            let mut sys = BoostingSystem::new(KvMap::new(), w.kvmap_disjoint_programs());
            let (s, t) = drive(&mut sys, 5, |s| s.stats());
            assert_serializable(sys.machine());
            assert_eq!(s.aborts, 0);
            print_row(&format!("boosting   / {threads}T disjoint"), s, t);
        }
    }
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
