//! B8: what does the static criteria prover buy at runtime?
//!
//! The analyzer proves the machine's mover-loop clauses ahead of time on
//! workloads whose method footprints are all-movers; an installed
//! [`AnalysisPlan`] then makes the machine skip those loops (tallying
//! `statically_discharged` so the audit still closes). This target
//! measures the same workloads with and without the plan:
//!
//! * **mover-heavy** (disjoint-key puts): all four clauses proven, every
//!   mover loop elided — the delta is the prover's payoff;
//! * **conflict-heavy** (single hot key): nothing provable, the plan is
//!   empty and both columns must coincide — the prover's overhead at
//!   runtime is zero by construction (analysis runs once, up front).
//!
//! The shape table printed to stderr records commits, dynamic mover
//! queries and static elisions per cell; EXPERIMENTS.md §B8 keeps the
//! numbers.

use pushpull_analysis::{analyze, AnalysisPlan};
use pushpull_bench::timing::{BenchmarkId, Criterion};
use pushpull_bench::{assert_serializable, criterion_group, criterion_main, drive};

use pushpull_core::error::{Clause, Rule};
use pushpull_core::lang::Code;
use pushpull_harness::testutil::assert_ledger_closes;
use pushpull_spec::kvmap::{KvMap, MapMethod};
use pushpull_tm::boosting::BoostingSystem;
use pushpull_tm::driver::TmSystem;

/// `threads` threads × `txns` transactions, each putting a key owned by
/// its thread and reading a key nobody writes: every ordered pair in the
/// union footprint is a proven mover.
fn mover_heavy(threads: u64, txns: u64) -> Vec<Vec<Code<MapMethod>>> {
    (0..threads)
        .map(|t| {
            (0..txns)
                .map(|i| {
                    Code::seq_all(vec![
                        Code::method(MapMethod::Put(t * 1000 + i, i as i64)),
                        Code::method(MapMethod::Get(500_000 + t)),
                    ])
                })
                .collect()
        })
        .collect()
}

/// Everyone hammers key 0: nothing is provable.
fn conflict_heavy(threads: u64, txns: u64) -> Vec<Vec<Code<MapMethod>>> {
    (0..threads)
        .map(|t| {
            (0..txns)
                .map(|i| Code::method(MapMethod::Put(0, (t * 100 + i) as i64)))
                .collect()
        })
        .collect()
}

fn run_once(programs: &[Vec<Code<MapMethod>>], plan: Option<&AnalysisPlan>, seed: u64) -> u64 {
    let mut sys = BoostingSystem::new(KvMap::new(), programs.to_vec());
    if let Some(plan) = plan {
        sys.set_static_discharge(plan.discharge.clone());
    }
    let (stats, _) = drive(&mut sys, seed, |s| s.stats());
    stats.commits
}

fn report(label: &str, programs: &[Vec<Code<MapMethod>>], plan: Option<&AnalysisPlan>) {
    let mut sys = BoostingSystem::new(KvMap::new(), programs.to_vec());
    if let Some(plan) = plan {
        sys.set_static_discharge(plan.discharge.clone());
    }
    let (stats, ticks) = drive(&mut sys, 7, |s| s.stats());
    assert_serializable(sys.machine());
    let audit = sys.machine().audit();
    eprintln!(
        "{label:<38} commits={:<5} ticks={:<7} mover-queries={:<7} static-elisions={}",
        stats.commits,
        ticks,
        audit.mover_queries,
        audit.statically_discharged_total()
    );
}

fn bench_static_elision(c: &mut Criterion) {
    let mut group = c.benchmark_group("B8-static-elision");
    group.sample_size(15);
    for threads in [4u64, 8] {
        let txns = 16;
        let heavy = mover_heavy(threads, txns);
        let heavy_plan = analyze(&KvMap::new(), &heavy);
        assert!(
            heavy_plan.discharge.is_some(),
            "mover-heavy workload must prove its clauses"
        );
        let hot = conflict_heavy(threads, txns);
        let hot_plan = analyze(&KvMap::new(), &hot);
        // Single-op transactions prove PUSH (i) vacuously, but none of
        // the cross-transaction clauses: the contended loops stay hot.
        assert!(!hot_plan
            .discharge
            .as_ref()
            .is_some_and(|f| f.discharges(Rule::Push, Clause::Ii)));

        // Sanity before timing: under one deterministic seed, the armed
        // run's audit ledger must close exactly against the plan-free
        // baseline (same criterion totals, static column absorbing the
        // baseline's dynamic discharges, strictly fewer mover queries).
        {
            let mut base = BoostingSystem::new(KvMap::new(), heavy.to_vec());
            drive(&mut base, 7, |s| s.stats());
            let mut armed = BoostingSystem::new(KvMap::new(), heavy.to_vec());
            armed.set_static_discharge(heavy_plan.discharge.clone());
            drive(&mut armed, 7, |s| s.stats());
            assert_ledger_closes(
                &armed.machine().audit(),
                &base.machine().audit(),
                &[
                    (Rule::Push, Clause::I),
                    (Rule::Push, Clause::Ii),
                    (Rule::UnPush, Clause::I),
                    (Rule::Pull, Clause::Iii),
                ],
            );
        }

        report(&format!("mover-heavy/{threads}t dynamic"), &heavy, None);
        report(
            &format!("mover-heavy/{threads}t analyzed"),
            &heavy,
            Some(&heavy_plan),
        );
        report(&format!("conflict-heavy/{threads}t dynamic"), &hot, None);

        group.bench_function(BenchmarkId::new("mover-heavy-dynamic", threads), |b| {
            b.iter(|| run_once(&heavy, None, 11))
        });
        group.bench_function(BenchmarkId::new("mover-heavy-analyzed", threads), |b| {
            b.iter(|| run_once(&heavy, Some(&heavy_plan), 11))
        });
        group.bench_function(BenchmarkId::new("conflict-heavy-dynamic", threads), |b| {
            b.iter(|| run_once(&hot, None, 11))
        });
        group.bench_function(BenchmarkId::new("conflict-heavy-analyzed", threads), |b| {
            b.iter(|| run_once(&hot, Some(&hot_plan), 11))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_static_elision);
criterion_main!(benches);
