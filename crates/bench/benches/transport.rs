//! B11: what does the shard transport seam cost, and what does its
//! robustness envelope cost under injected delivery faults?
//!
//! Two questions, same workload as B9's disjoint case (8 OS threads each
//! driving a raw `TxnHandle` through write-only APP → PUSH → CMT cycles
//! over 4 footprint shards):
//!
//! * **Overhead** — the local transport (caller-thread critical
//!   sections, the bit-identical default) versus the channel transport
//!   (each shard owned by a dedicated server thread, requests serialized
//!   over in-process channels). The gap is the honest price of the
//!   message-passing seam: request construction, channel hops, and the
//!   reply wait.
//! * **Faulted throughput** — the channel transport with `DropRequest`
//!   injected at 1% and 5% of delivery attempts, across the four
//!   contention policies bridged into the retry envelope via
//!   [`CmBackoff`]. Every fired fault costs one missed deadline plus one
//!   policy-paced retry, so the fault rate prices the envelope and the
//!   policy prices the waiting.
//!
//! Before timing, fault-free channel runs are checked bit-identical to
//! the local baseline (same commits, same audit ledger), and faulted
//! runs still commit everything with a green serializability oracle —
//! the envelope must absorb faults without changing outcomes. The shape
//! table prints the transport counters; EXPERIMENTS.md §B11 keeps the
//! numbers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pushpull_bench::timing::{BenchmarkId, Criterion};
use pushpull_bench::{assert_serializable, criterion_group, criterion_main};

use pushpull_core::faults::{FaultHook, TransportFault};
use pushpull_core::lang::Code;
use pushpull_core::machine::Machine;
use pushpull_core::op::ThreadId;
use pushpull_core::{FallbackMode, TransportConfig};
use pushpull_harness::testutil::assert_ledger_matches;
use pushpull_spec::rwmem::{Loc, MemMethod, RwMem};
use pushpull_tm::{
    CmBackoff, ContentionManager, ExponentialBackoff, GracefulDegradation, ImmediateRetry,
    KarmaAging,
};

const THREADS: u32 = 8;
const TXNS: u32 = 30;
const OPS: u32 = 8;
const SHARDS: usize = 4;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Drops a seeded, rate-controlled fraction of delivery attempts.
/// Deterministic in the number of consults, not in wall-clock — the same
/// run length always fires the same number of faults.
#[derive(Debug)]
struct RateDrops {
    seed: u64,
    per_myriad: u64,
    consults: AtomicU64,
}

impl RateDrops {
    fn new(seed: u64, per_myriad: u64) -> Self {
        Self {
            seed,
            per_myriad,
            consults: AtomicU64::new(0),
        }
    }
}

impl FaultHook for RateDrops {
    fn transport_fault(&self, _tid: ThreadId, _shard: usize) -> Option<TransportFault> {
        let n = self.consults.fetch_add(1, Ordering::Relaxed);
        (splitmix64(self.seed ^ n) % 10_000 < self.per_myriad)
            .then_some(TransportFault::DropRequest)
    }
}

/// Disjoint write-only bodies: thread `t` owns locations `t` and `t+8`,
/// so no mover ever fails and every run commits everything — the timing
/// isolates the transport path, not conflict resolution.
fn bodies(t: u32) -> Vec<Vec<MemMethod>> {
    (0..TXNS)
        .map(|i| {
            (0..OPS)
                .map(|j| MemMethod::Write(Loc(t + THREADS * (j % 2)), (i * OPS + j) as i64))
                .collect()
        })
        .collect()
}

fn channel_config(policy: Arc<dyn ContentionManager>) -> TransportConfig {
    TransportConfig {
        max_retries: 3,
        deadline: Duration::from_secs(5),
        fallback: FallbackMode::Coarse,
        backoff: Arc::new(CmBackoff::new(policy)),
    }
}

/// One full run; `channel` picks the transport, `fault_per_myriad > 0`
/// arms the rate hook (channel only — the local path has no deliveries
/// to drop).
fn run_once(channel: Option<Arc<dyn ContentionManager>>, fault_per_myriad: u64) -> Machine<RwMem> {
    let mut m = Machine::new(RwMem::new());
    let all: Vec<Vec<Vec<MemMethod>>> = (0..THREADS).map(bodies).collect();
    for body in &all {
        m.add_thread(
            body.iter()
                .map(|txn| Code::seq_all(txn.iter().cloned().map(Code::method)))
                .collect(),
        );
    }
    m.set_log_shards(SHARDS);
    match channel {
        Some(policy) => m.set_channel_transport(channel_config(policy)),
        None => m.set_local_transport(),
    }
    if fault_per_myriad > 0 {
        m.set_fault_hook(Some(Arc::new(RateDrops::new(11, fault_per_myriad))));
    }
    std::thread::scope(|scope| {
        for (h, body) in m.handles_mut().iter_mut().zip(&all) {
            scope.spawn(move || {
                for txn in body {
                    for method in txn {
                        let op = h.app_method(method).expect("app");
                        h.push(op).expect("push");
                    }
                    h.commit().expect("commit");
                }
            });
        }
    });
    m
}

fn bench_transport(c: &mut Criterion) {
    // Sanity before timing: the fault-free channel run is bit-identical
    // to the local baseline, and faulted runs still commit everything.
    let base = run_once(None, 0);
    assert_serializable(&base);
    assert_eq!(base.committed_txns().len() as u32, THREADS * TXNS);
    let chan = run_once(Some(Arc::new(ImmediateRetry)), 0);
    assert_serializable(&chan);
    assert_eq!(chan.committed_txns().len() as u32, THREADS * TXNS);
    assert_ledger_matches(&chan.audit(), &base.audit());
    let faulted = run_once(Some(Arc::new(GracefulDegradation::new())), 500);
    assert_serializable(&faulted);
    assert_eq!(faulted.committed_txns().len() as u32, THREADS * TXNS);

    let mut group = c.benchmark_group("B11-transport");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("overhead-8T", "local"), |b| {
        b.iter(|| run_once(None, 0))
    });
    group.bench_function(BenchmarkId::new("overhead-8T", "channel"), |b| {
        b.iter(|| run_once(Some(Arc::new(ImmediateRetry)), 0))
    });
    type MakePolicy = (&'static str, fn() -> Arc<dyn ContentionManager>);
    let policies: [MakePolicy; 4] = [
        ("immediate", || Arc::new(ImmediateRetry)),
        ("expo-backoff", || Arc::new(ExponentialBackoff::new(7))),
        ("karma", || Arc::new(KarmaAging::new())),
        ("graceful", || Arc::new(GracefulDegradation::new())),
    ];
    for pct in [100u64, 500] {
        for (name, make) in policies {
            group.bench_function(
                BenchmarkId::new(format!("drops-{}pct-{name}", pct / 100), "channel-8T"),
                |b| b.iter(|| run_once(Some(make()), pct)),
            );
        }
    }
    group.finish();

    eprintln!("\n=== B11 shape table (8 OS threads, 30 txns x 8 writes, 4 shards) ===");
    let label_of = |channel: bool| if channel { "channel" } else { "local  " };
    for (channel, pct) in [(false, 0u64), (true, 0), (true, 100), (true, 500)] {
        let m = if channel {
            run_once(Some(Arc::new(ExponentialBackoff::new(7))), pct)
        } else {
            run_once(None, pct)
        };
        let t = m.transport_stats();
        eprintln!(
            "{} / drop {:>3}bp  commits={:<4} requests={:<7} retries={:<5} timeouts={:<5} degr={} rec={}",
            label_of(channel),
            pct,
            m.committed_txns().len(),
            t.requests,
            t.retries,
            t.timeouts,
            t.degradations,
            t.recoveries,
        );
    }
}

criterion_group!(benches, bench_transport);
criterion_main!(benches);
