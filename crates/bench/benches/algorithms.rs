//! B1: throughput and abort behaviour of every §6 algorithm class across
//! contention regimes. The shape claims under test:
//!
//! * boosting never aborts on disjoint-key workloads and beats optimism
//!   under commutative contention;
//! * optimism shines read-mostly;
//! * everything is serializable (asserted on every run).

use pushpull_bench::timing::{BenchmarkId, Criterion};
use pushpull_bench::{criterion_group, criterion_main};

use pushpull_bench::{assert_serializable, drive, print_row};
use pushpull_harness::workload::WorkloadSpec;
use pushpull_spec::kvmap::KvMap;
use pushpull_spec::rwmem::RwMem;
use pushpull_tm::boosting::BoostingSystem;
use pushpull_tm::htm::HtmSystem;
use pushpull_tm::optimistic::{OptimisticSystem, ReadPolicy};
use pushpull_tm::pessimistic::MatveevShavitSystem;

fn base() -> WorkloadSpec {
    WorkloadSpec {
        threads: 4,
        txns_per_thread: 8,
        ops_per_txn: 3,
        key_range: 8,
        read_ratio: 0.5,
        seed: 42,
    }
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("B1-algorithms");
    group.sample_size(10);

    // ---- contended map workload -------------------------------------
    let w = base();
    group.bench_function(BenchmarkId::new("boosting", "map-contended"), |b| {
        b.iter(|| {
            let mut sys = BoostingSystem::new(KvMap::new(), w.kvmap_programs());
            drive(&mut sys, 1, |s| s.stats())
        })
    });
    group.bench_function(BenchmarkId::new("optimistic", "map-contended"), |b| {
        b.iter(|| {
            let mut sys =
                OptimisticSystem::new(KvMap::new(), w.kvmap_programs(), ReadPolicy::Snapshot);
            drive(&mut sys, 1, |s| s.stats())
        })
    });

    // ---- disjoint map workload --------------------------------------
    group.bench_function(BenchmarkId::new("boosting", "map-disjoint"), |b| {
        b.iter(|| {
            let mut sys = BoostingSystem::new(KvMap::new(), w.kvmap_disjoint_programs());
            drive(&mut sys, 1, |s| s.stats())
        })
    });
    group.bench_function(BenchmarkId::new("optimistic", "map-disjoint"), |b| {
        b.iter(|| {
            let mut sys = OptimisticSystem::new(
                KvMap::new(),
                w.kvmap_disjoint_programs(),
                ReadPolicy::Snapshot,
            );
            drive(&mut sys, 1, |s| s.stats())
        })
    });

    // ---- read-mostly memory workload --------------------------------
    let rm = WorkloadSpec {
        read_ratio: 0.9,
        key_range: 16,
        ..w
    };
    group.bench_function(BenchmarkId::new("optimistic", "mem-read-mostly"), |b| {
        b.iter(|| {
            let mut sys =
                OptimisticSystem::new(RwMem::new(), rm.rwmem_programs(), ReadPolicy::Snapshot);
            drive(&mut sys, 1, |s| s.stats())
        })
    });
    group.bench_function(BenchmarkId::new("pessimistic-ms", "mem-read-mostly"), |b| {
        b.iter(|| {
            let mut sys = MatveevShavitSystem::new(RwMem::new(), rm.rwmem_programs());
            drive(&mut sys, 1, |s| s.stats())
        })
    });
    group.bench_function(BenchmarkId::new("htm-sim", "mem-read-mostly"), |b| {
        b.iter(|| {
            let mut sys = HtmSystem::new(rm.rwmem_programs());
            drive(&mut sys, 1, |s| s.stats())
        })
    });
    group.finish();

    // ---- shape table (recorded in EXPERIMENTS.md) --------------------
    eprintln!("\n=== B1 shape table ===");
    let w = base();
    {
        let mut sys = BoostingSystem::new(KvMap::new(), w.kvmap_programs());
        let (s, t) = drive(&mut sys, 1, |s| s.stats());
        assert_serializable(sys.machine());
        print_row("boosting / map-contended", s, t);
    }
    {
        let mut sys = OptimisticSystem::new(KvMap::new(), w.kvmap_programs(), ReadPolicy::Snapshot);
        let (s, t) = drive(&mut sys, 1, |s| s.stats());
        assert_serializable(sys.machine());
        print_row("optimistic / map-contended", s, t);
    }
    {
        let mut sys = BoostingSystem::new(KvMap::new(), w.kvmap_disjoint_programs());
        let (s, t) = drive(&mut sys, 1, |s| s.stats());
        assert_serializable(sys.machine());
        assert_eq!(s.aborts, 0, "boosting on disjoint keys must never abort");
        print_row("boosting / map-disjoint", s, t);
    }
    {
        let mut sys = OptimisticSystem::new(
            KvMap::new(),
            w.kvmap_disjoint_programs(),
            ReadPolicy::Snapshot,
        );
        let (s, t) = drive(&mut sys, 1, |s| s.stats());
        assert_serializable(sys.machine());
        print_row("optimistic / map-disjoint", s, t);
    }
    let rm = WorkloadSpec {
        read_ratio: 0.9,
        key_range: 16,
        ..w
    };
    {
        let mut sys =
            OptimisticSystem::new(RwMem::new(), rm.rwmem_programs(), ReadPolicy::Snapshot);
        let (s, t) = drive(&mut sys, 1, |s| s.stats());
        assert_serializable(sys.machine());
        print_row("optimistic / mem-read-mostly", s, t);
    }
    {
        let mut sys = MatveevShavitSystem::new(RwMem::new(), rm.rwmem_programs());
        let (s, t) = drive(&mut sys, 1, |s| s.stats());
        assert_serializable(sys.machine());
        print_row("pessimistic-ms / mem-read-mostly", s, t);
    }
    {
        let mut sys = HtmSystem::new(rm.rwmem_programs());
        let (s, t) = drive(&mut sys, 1, |s| s.stats());
        assert_serializable(sys.machine());
        print_row("htm-sim / mem-read-mostly", s, t);
    }
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
