//! B2: the abort-rate crossover as the read ratio sweeps from write-heavy
//! to read-only — the series behind the classic "optimism wins when
//! conflicts are rare" claim. Printed as a table; two endpoints are also
//! wall-clock benchmarked.

use pushpull_bench::timing::{BenchmarkId, Criterion};
use pushpull_bench::{criterion_group, criterion_main};

use pushpull_bench::{assert_serializable, drive};
use pushpull_harness::workload::WorkloadSpec;
use pushpull_spec::rwmem::RwMem;
use pushpull_tm::htm::HtmSystem;
use pushpull_tm::optimistic::{OptimisticSystem, ReadPolicy};
use pushpull_tm::pessimistic::MatveevShavitSystem;

fn workload(read_ratio: f64) -> WorkloadSpec {
    WorkloadSpec {
        threads: 4,
        txns_per_thread: 8,
        ops_per_txn: 3,
        key_range: 6,
        read_ratio,
        seed: 77,
    }
}

fn bench_crossover(c: &mut Criterion) {
    let mut group = c.benchmark_group("B2-crossover");
    group.sample_size(10);
    for pct in [0u32, 100] {
        let w = workload(pct as f64 / 100.0);
        group.bench_function(BenchmarkId::new("optimistic", pct), |b| {
            b.iter(|| {
                let mut sys =
                    OptimisticSystem::new(RwMem::new(), w.rwmem_programs(), ReadPolicy::Snapshot);
                drive(&mut sys, 3, |s| s.stats())
            })
        });
        group.bench_function(BenchmarkId::new("htm", pct), |b| {
            b.iter(|| {
                let mut sys = HtmSystem::new(w.rwmem_programs());
                drive(&mut sys, 3, |s| s.stats())
            })
        });
    }
    group.finish();

    eprintln!("\n=== B2 crossover series (abort-rate % by read ratio) ===");
    eprintln!(
        "{:<12} {:>12} {:>12} {:>12}",
        "read-ratio", "optimistic", "pess-ms", "htm-sim"
    );
    for pct in [0u32, 25, 50, 75, 90, 100] {
        let w = workload(pct as f64 / 100.0);

        let mut opt = OptimisticSystem::new(RwMem::new(), w.rwmem_programs(), ReadPolicy::Snapshot);
        let (so, _) = drive(&mut opt, 3, |s| s.stats());
        assert_serializable(opt.machine());

        let mut ms = MatveevShavitSystem::new(RwMem::new(), w.rwmem_programs());
        let (sm, _) = drive(&mut ms, 3, |s| s.stats());
        assert_serializable(ms.machine());

        let mut htm = HtmSystem::new(w.rwmem_programs());
        let (sh, _) = drive(&mut htm, 3, |s| s.stats());
        assert_serializable(htm.machine());

        eprintln!(
            "{:<12} {:>11.1}% {:>11.1}% {:>11.1}%",
            format!("{pct}%"),
            so.abort_rate() * 100.0,
            sm.abort_rate() * 100.0,
            sh.abort_rate() * 100.0,
        );
    }
}

criterion_group!(benches, bench_crossover);
criterion_main!(benches);
