//! Schedulers: the source of interleavings.
//!
//! In the PUSH/PULL model, concurrency is the *order in which threads
//! apply rules* — so a scheduler choosing which thread ticks next is
//! exactly a choice of interleaving. Deterministic seeded scheduling
//! makes every run reproducible.

use pushpull_core::error::MachineError;
use pushpull_core::op::ThreadId;
use pushpull_tm::driver::{Tick, TmSystem};

/// A scheduling policy over `n` threads.
pub trait Scheduler {
    /// Picks the next thread to tick, given the number of threads and the
    /// tick index.
    fn next(&mut self, threads: usize, step: usize) -> ThreadId;
}

/// Strict rotation: 0, 1, …, n−1, 0, ….
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin;

impl Scheduler for RoundRobin {
    fn next(&mut self, threads: usize, step: usize) -> ThreadId {
        ThreadId(step % threads)
    }
}

/// A seeded xorshift random scheduler.
#[derive(Debug, Clone)]
pub struct RandomSched {
    state: u64,
}

impl RandomSched {
    /// Creates a scheduler from a non-zero seed (0 is mapped to 1).
    pub fn new(seed: u64) -> Self {
        Self { state: seed.max(1) }
    }
}

impl Scheduler for RandomSched {
    fn next(&mut self, threads: usize, _step: usize) -> ThreadId {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        ThreadId((x % threads as u64) as usize)
    }
}

/// The outcome of driving a system to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Total scheduler ticks consumed.
    pub ticks: usize,
    /// Whether every thread finished within the budget.
    pub completed: bool,
}

/// Drives `sys` with `sched` until every thread is done or `max_ticks`
/// elapse.
///
/// # Errors
///
/// Propagates the first unexpected [`MachineError`] a tick returns.
pub fn run<T: TmSystem, S: Scheduler>(
    sys: &mut T,
    sched: &mut S,
    max_ticks: usize,
) -> Result<RunOutcome, MachineError> {
    let n = sys.thread_count();
    if n == 0 {
        return Ok(RunOutcome {
            ticks: 0,
            completed: true,
        });
    }
    for step in 0..max_ticks {
        if sys.is_done() {
            return Ok(RunOutcome {
                ticks: step,
                completed: true,
            });
        }
        let tid = sched.next(n, step);
        let _t: Tick = sys.tick(tid)?;
    }
    Ok(RunOutcome {
        ticks: max_ticks,
        completed: sys.is_done(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushpull_core::lang::Code;
    use pushpull_spec::counter::{Counter, CtrMethod};
    use pushpull_tm::optimistic::{OptimisticSystem, ReadPolicy};

    fn two_adders() -> OptimisticSystem<Counter> {
        OptimisticSystem::new(
            Counter::new(),
            vec![
                vec![Code::method(CtrMethod::Add(1))],
                vec![Code::method(CtrMethod::Add(1))],
            ],
            ReadPolicy::Snapshot,
        )
    }

    #[test]
    fn round_robin_completes() {
        let mut sys = two_adders();
        let out = run(&mut sys, &mut RoundRobin, 1000).unwrap();
        assert!(out.completed);
        assert_eq!(sys.stats().commits, 2);
    }

    #[test]
    fn random_scheduler_is_deterministic_per_seed() {
        let mut a = two_adders();
        let mut b = two_adders();
        run(&mut a, &mut RandomSched::new(42), 1000).unwrap();
        run(&mut b, &mut RandomSched::new(42), 1000).unwrap();
        assert_eq!(a.machine().trace().len(), b.machine().trace().len());
    }

    #[test]
    fn different_seeds_usually_differ() {
        // Not guaranteed in general, but on this workload the traces are
        // long enough that seeds 1 and 2 diverge.
        let mut a = two_adders();
        let mut b = two_adders();
        run(&mut a, &mut RandomSched::new(1), 1000).unwrap();
        run(&mut b, &mut RandomSched::new(2), 1000).unwrap();
        let ta: Vec<_> = a.machine().trace().iter().map(|e| e.thread()).collect();
        let tb: Vec<_> = b.machine().trace().iter().map(|e| e.thread()).collect();
        assert_ne!(ta, tb);
    }

    #[test]
    fn tick_budget_is_respected() {
        let mut sys = two_adders();
        let out = run(&mut sys, &mut RoundRobin, 1).unwrap();
        assert_eq!(out.ticks, 1);
        assert!(!out.completed);
    }
}
