//! An exhaustive interleaving model checker.
//!
//! For small configurations it explores *every* scheduler choice a system
//! can face (systems are `Clone`, so branching is a clone per choice) and
//! evaluates a predicate on every terminal state — typically "the
//! serializability oracle accepts" and "the trace is opaque". This is
//! how the test suites turn the paper's per-algorithm claims in §6 into
//! exhaustively checked facts on bounded configurations.

use pushpull_core::error::MachineError;
use pushpull_core::op::ThreadId;
use pushpull_tm::driver::{Tick, TmSystem};

/// Exploration limits.
#[derive(Debug, Clone, Copy)]
pub struct ExploreLimits {
    /// Maximum scheduler decisions along one path.
    pub max_depth: usize,
    /// Maximum terminal states to visit (explosion guard).
    pub max_terminals: usize,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        Self {
            max_depth: 64,
            max_terminals: 20_000,
        }
    }
}

/// Result of an exhaustive exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreReport {
    /// Terminal (all-threads-done) states visited.
    pub terminals: usize,
    /// Paths pruned by the depth limit.
    pub depth_pruned: usize,
    /// Paths abandoned because every live thread was blocked (a
    /// deadlock/livelock the system failed to break).
    pub stuck: usize,
    /// Terminal states on which the predicate returned `false`.
    pub failures: usize,
}

impl ExploreReport {
    /// Did every visited terminal satisfy the predicate, with no stuck
    /// path?
    pub fn all_ok(&self) -> bool {
        self.failures == 0 && self.stuck == 0
    }
}

/// Exhaustively explores every interleaving of `sys` (up to `limits`),
/// calling `check` on each terminal system state.
///
/// # Errors
///
/// Propagates the first unexpected [`MachineError`] encountered on any
/// path.
pub fn explore<T, F>(
    sys: &T,
    limits: ExploreLimits,
    check: &mut F,
) -> Result<ExploreReport, MachineError>
where
    T: TmSystem + Clone,
    F: FnMut(&T) -> bool,
{
    let mut report = ExploreReport {
        terminals: 0,
        depth_pruned: 0,
        stuck: 0,
        failures: 0,
    };
    let blocked = vec![false; sys.thread_count()];
    explore_rec(sys, limits, check, 0, &blocked, &mut report)?;
    Ok(report)
}

fn explore_rec<T, F>(
    sys: &T,
    limits: ExploreLimits,
    check: &mut F,
    depth: usize,
    blocked: &[bool],
    report: &mut ExploreReport,
) -> Result<(), MachineError>
where
    T: TmSystem + Clone,
    F: FnMut(&T) -> bool,
{
    if report.terminals >= limits.max_terminals {
        return Ok(());
    }
    if sys.is_done() {
        report.terminals += 1;
        if !check(sys) {
            report.failures += 1;
        }
        return Ok(());
    }
    if depth >= limits.max_depth {
        report.depth_pruned += 1;
        return Ok(());
    }
    let n = sys.thread_count();
    let mut progressed_any = false;
    for t in 0..n {
        if blocked[t] {
            // Re-ticking a blocked thread without intervening progress
            // reproduces the same state: skip to avoid infinite regress.
            continue;
        }
        let mut next = sys.clone();
        let tick = next.tick(ThreadId(t))?;
        match tick {
            Tick::Done => {
                // Thread had nothing to do and the state did not change;
                // recursing here would loop. The other iterations of this
                // loop cover the remaining threads.
                continue;
            }
            Tick::Blocked => {
                // State unchanged; mark the thread so it is not re-picked
                // until someone else progresses.
                let mut b2 = blocked.to_vec();
                b2[t] = true;
                progressed_any = true;
                explore_rec(&next, limits, check, depth + 1, &b2, report)?;
            }
            _ => {
                progressed_any = true;
                let b2 = vec![false; n];
                explore_rec(&next, limits, check, depth + 1, &b2, report)?;
            }
        }
    }
    if !progressed_any {
        report.stuck += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushpull_core::lang::Code;
    use pushpull_core::serializability::check_machine;
    use pushpull_spec::counter::{Counter, CtrMethod};
    use pushpull_tm::optimistic::{OptimisticSystem, ReadPolicy};

    #[test]
    fn explores_all_interleavings_of_two_adders() {
        let sys = OptimisticSystem::new(
            Counter::new(),
            vec![
                vec![Code::method(CtrMethod::Add(1))],
                vec![Code::method(CtrMethod::Add(1))],
            ],
            ReadPolicy::Snapshot,
        );
        let mut checked = 0;
        let report = explore(
            &sys,
            ExploreLimits::default(),
            &mut |s: &OptimisticSystem<Counter>| {
                checked += 1;
                check_machine(s.machine()).is_serializable()
            },
        )
        .unwrap();
        assert!(report.terminals > 1, "must visit multiple interleavings");
        assert_eq!(report.failures, 0);
        assert_eq!(report.stuck, 0);
        assert_eq!(checked, report.terminals);
    }

    #[test]
    fn conflicting_workload_still_all_serializable() {
        let sys = OptimisticSystem::new(
            Counter::new(),
            vec![
                vec![Code::seq_all(vec![
                    Code::method(CtrMethod::Get),
                    Code::method(CtrMethod::Add(1)),
                ])],
                vec![Code::method(CtrMethod::Add(1))],
            ],
            ReadPolicy::Snapshot,
        );
        let report = explore(
            &sys,
            ExploreLimits {
                max_depth: 40,
                max_terminals: 50_000,
            },
            &mut |s| check_machine(s.machine()).is_serializable(),
        )
        .unwrap();
        assert!(report.all_ok(), "{report:?}");
        assert!(report.terminals > 10);
    }
}
