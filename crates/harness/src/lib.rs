//! # pushpull-harness
//!
//! Execution infrastructure for the Push/Pull reproduction:
//!
//! * [`scheduler`] — round-robin and seeded-random schedulers; in the
//!   PUSH/PULL model a scheduler *is* the interleaving;
//! * [`model_check`] — an exhaustive interleaving explorer for small
//!   configurations, used to check §6's per-algorithm claims over *all*
//!   interleavings rather than sampled ones;
//! * [`workload`] — seeded workload generators (key skew, read ratio,
//!   transaction length) shared by the benchmarks;
//! * [`runner`] — drives a system to completion and bundles statistics
//!   with the serializability and opacity verdicts;
//! * [`faults`] — deterministic seeded fault plans implementing the core
//!   machine's [`FaultHook`](pushpull_core::faults::FaultHook) seam, for
//!   the chaos-matrix tests;
//! * [`parallel`] — the OS-thread runner, with panic propagation, a
//!   tick-budget watchdog, and optional installation of a static
//!   [`AnalysisPlan`](pushpull_analysis::AnalysisPlan) so proven mover
//!   clauses are elided before any worker spawns;
//! * [`loadgen`] — open-/closed-loop arrival models and deterministic
//!   latency-percentile recording for the service front-end bench.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod faults;
pub mod loadgen;
pub mod model_check;
pub mod parallel;
pub mod patterns;
pub mod runner;
pub mod scheduler;
pub mod sweep;
pub mod testutil;
pub mod workload;

pub use faults::{FaultPlan, FaultSpec};
pub use loadgen::{Arrival, LatencyHistogram};
pub use model_check::{explore, ExploreLimits, ExploreReport};
pub use parallel::{
    run_parallel, run_parallel_sharded, ParallelError, ParallelOutcome, ThreadDump, WatchdogReport,
};
pub use runner::{run_reported, run_with, RunReport};
pub use scheduler::{run, RandomSched, RoundRobin, RunOutcome, Scheduler};
pub use sweep::{sweep, Aggregate, SweepResult};
pub use workload::WorkloadSpec;
