//! Multi-seed sweeps with aggregate statistics — the machinery behind the
//! EXPERIMENTS.md tables. Each cell of a reported table is a mean ± σ
//! over independently seeded schedulers on identical workloads.

use pushpull_tm::driver::SystemStats;

/// Aggregate of a statistic across seeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n ≤ 1).
    pub std_dev: f64,
    /// Minimum observed.
    pub min: f64,
    /// Maximum observed.
    pub max: f64,
    /// Number of samples.
    pub n: usize,
}

impl Aggregate {
    /// Aggregates a sample set. Empty input yields all-zero with `n = 0`.
    pub fn of(samples: &[f64]) -> Self {
        let n = samples.len();
        if n == 0 {
            return Self {
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                n: 0,
            };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self {
            mean,
            std_dev: var.sqrt(),
            min,
            max,
            n,
        }
    }
}

impl std::fmt::Display for Aggregate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1}±{:.1}", self.mean, self.std_dev)
    }
}

/// Aggregated results of one algorithm/workload cell across seeds.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Label of the cell (algorithm/workload).
    pub label: String,
    /// Commits per run.
    pub commits: Aggregate,
    /// Aborts per run.
    pub aborts: Aggregate,
    /// Abort rate per run.
    pub abort_rate: Aggregate,
    /// Ticks to completion per run.
    pub ticks: Aggregate,
    /// Contention-manager degradations (solo-mode escalations) per run.
    pub degradations: Aggregate,
    /// Longest single-thread consecutive-abort streak per run.
    pub max_abort_streak: Aggregate,
    /// Shared-log shard-lock acquisitions per run.
    pub lock_acquires: Aggregate,
    /// Shared-log shard-lock acquisitions that had to wait per run.
    pub lock_contended: Aggregate,
    /// Criteria evaluations served lock-free from shard snapshots per run.
    pub snap_reads: Aggregate,
    /// Seqlock validation retries per run.
    pub snap_retries: Aggregate,
    /// Snapshot reads that fell back to the mutex ladder per run.
    pub snap_fallbacks: Aggregate,
    /// Arena slot reuses (recycled `GlobalEntry` slots) per run.
    pub arena_reused: Aggregate,
    /// Transport envelope requests (calls + probes) per run.
    pub transport_requests: Aggregate,
    /// Transport delivery re-attempts per run.
    pub transport_retries: Aggregate,
    /// Transport attempts that missed their deadline per run.
    pub transport_timeouts: Aggregate,
    /// Fast-path → coarse degradation transitions per run.
    pub transport_degradations: Aggregate,
    /// Coarse → fast-path recovery transitions per run.
    pub transport_recoveries: Aggregate,
    /// Logical sessions multiplexed by the service front-end per run.
    pub sessions: Aggregate,
    /// Group-commit batches sealed per run.
    pub group_batches: Aggregate,
    /// Transactions committed through group-commit batches per run.
    pub group_txns: Aggregate,
    /// Shard-lock acquisitions amortized away by batching per run.
    pub group_locks_saved: Aggregate,
    /// Commit-ready transactions that fell back to the per-transaction
    /// path per run.
    pub group_fallbacks: Aggregate,
    /// Nested scopes opened (closed, open and checkpoint) per run.
    pub scopes_opened: Aggregate,
    /// Closed scopes merged into their parent per run.
    pub scopes_merged: Aggregate,
    /// Nested scopes aborted (suffix rewound) per run.
    pub scopes_aborted: Aggregate,
    /// Open-nested children committed to `G` per run.
    pub open_commits: Aggregate,
    /// Compensating transactions replayed on parent aborts per run.
    pub compensations_replayed: Aggregate,
    /// Inverse operations derived for undo programs per run.
    pub undo_inverses: Aggregate,
}

impl std::fmt::Display for SweepResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<34} commits={:<12} aborts={:<12} abort-rate={:>6.1}%  ticks={:<14} streak={:<9} degr={} locks={}/{} snaps={} (retry={} fb={}) reuse={}",
            self.label,
            self.commits.to_string(),
            self.aborts.to_string(),
            self.abort_rate.mean * 100.0,
            self.ticks.to_string(),
            self.max_abort_streak.to_string(),
            self.degradations,
            self.lock_contended,
            self.lock_acquires,
            self.snap_reads,
            self.snap_retries,
            self.snap_fallbacks,
            self.arena_reused,
        )?;
        // Only runs with a transport installed print the envelope tail, so
        // fault-free sweep tables stay byte-compatible with older logs.
        if self.transport_requests.max > 0.0 {
            write!(
                f,
                " transport={} (retry={} to={} degr={} rec={})",
                self.transport_requests,
                self.transport_retries,
                self.transport_timeouts,
                self.transport_degradations,
                self.transport_recoveries,
            )?;
        }
        // Likewise, only service-front-end runs (sessions multiplexed or
        // batches sealed) print the group-commit tail.
        if self.group_batches.max > 0.0 || self.sessions.max > 0.0 {
            write!(
                f,
                " sessions={} batches={} (txns={} saved={} fb={})",
                self.sessions,
                self.group_batches,
                self.group_txns,
                self.group_locks_saved,
                self.group_fallbacks,
            )?;
        }
        // And only runs that actually nested scopes print the nesting
        // tail, keeping flat sweep tables byte-compatible.
        if self.scopes_opened.max > 0.0 {
            write!(
                f,
                " scopes={} (merged={} aborted={} open={} comp={} undo={})",
                self.scopes_opened,
                self.scopes_merged,
                self.scopes_aborted,
                self.open_commits,
                self.compensations_replayed,
                self.undo_inverses,
            )?;
        }
        Ok(())
    }
}

/// Runs `make_and_run` once per seed (it returns the run's stats and
/// tick count) and aggregates.
pub fn sweep(
    label: impl Into<String>,
    seeds: impl IntoIterator<Item = u64>,
    mut make_and_run: impl FnMut(u64) -> (SystemStats, usize),
) -> SweepResult {
    let mut commits = Vec::new();
    let mut aborts = Vec::new();
    let mut rates = Vec::new();
    let mut ticks = Vec::new();
    let mut degradations = Vec::new();
    let mut streaks = Vec::new();
    let mut acquires = Vec::new();
    let mut contended = Vec::new();
    let mut snap_reads = Vec::new();
    let mut snap_retries = Vec::new();
    let mut snap_fallbacks = Vec::new();
    let mut arena_reused = Vec::new();
    let mut t_requests = Vec::new();
    let mut t_retries = Vec::new();
    let mut t_timeouts = Vec::new();
    let mut t_degradations = Vec::new();
    let mut t_recoveries = Vec::new();
    let mut sessions = Vec::new();
    let mut g_batches = Vec::new();
    let mut g_txns = Vec::new();
    let mut g_saved = Vec::new();
    let mut g_fallbacks = Vec::new();
    let mut n_opened = Vec::new();
    let mut n_merged = Vec::new();
    let mut n_aborted = Vec::new();
    let mut n_open_commits = Vec::new();
    let mut n_compensations = Vec::new();
    let mut n_undo = Vec::new();
    for seed in seeds {
        let (stats, t) = make_and_run(seed);
        commits.push(stats.commits as f64);
        aborts.push(stats.aborts as f64);
        rates.push(stats.abort_rate());
        ticks.push(t as f64);
        degradations.push(stats.degradations as f64);
        streaks.push(stats.max_abort_streak as f64);
        acquires.push(stats.lock_acquires as f64);
        contended.push(stats.lock_contended as f64);
        snap_reads.push(stats.snap_reads as f64);
        snap_retries.push(stats.snap_retries as f64);
        snap_fallbacks.push(stats.snap_fallbacks as f64);
        arena_reused.push(stats.arena_reused as f64);
        t_requests.push(stats.transport_requests as f64);
        t_retries.push(stats.transport_retries as f64);
        t_timeouts.push(stats.transport_timeouts as f64);
        t_degradations.push(stats.transport_degradations as f64);
        t_recoveries.push(stats.transport_recoveries as f64);
        sessions.push(stats.sessions as f64);
        g_batches.push(stats.group_batches as f64);
        g_txns.push(stats.group_txns as f64);
        g_saved.push(stats.group_locks_saved as f64);
        g_fallbacks.push(stats.group_fallbacks as f64);
        n_opened.push(stats.scopes_opened as f64);
        n_merged.push(stats.scopes_merged as f64);
        n_aborted.push(stats.scopes_aborted as f64);
        n_open_commits.push(stats.open_commits as f64);
        n_compensations.push(stats.compensations_replayed as f64);
        n_undo.push(stats.undo_inverses as f64);
    }
    SweepResult {
        label: label.into(),
        commits: Aggregate::of(&commits),
        aborts: Aggregate::of(&aborts),
        abort_rate: Aggregate::of(&rates),
        ticks: Aggregate::of(&ticks),
        degradations: Aggregate::of(&degradations),
        max_abort_streak: Aggregate::of(&streaks),
        lock_acquires: Aggregate::of(&acquires),
        lock_contended: Aggregate::of(&contended),
        snap_reads: Aggregate::of(&snap_reads),
        snap_retries: Aggregate::of(&snap_retries),
        snap_fallbacks: Aggregate::of(&snap_fallbacks),
        arena_reused: Aggregate::of(&arena_reused),
        transport_requests: Aggregate::of(&t_requests),
        transport_retries: Aggregate::of(&t_retries),
        transport_timeouts: Aggregate::of(&t_timeouts),
        transport_degradations: Aggregate::of(&t_degradations),
        transport_recoveries: Aggregate::of(&t_recoveries),
        sessions: Aggregate::of(&sessions),
        group_batches: Aggregate::of(&g_batches),
        group_txns: Aggregate::of(&g_txns),
        group_locks_saved: Aggregate::of(&g_saved),
        group_fallbacks: Aggregate::of(&g_fallbacks),
        scopes_opened: Aggregate::of(&n_opened),
        scopes_merged: Aggregate::of(&n_merged),
        scopes_aborted: Aggregate::of(&n_aborted),
        open_commits: Aggregate::of(&n_open_commits),
        compensations_replayed: Aggregate::of(&n_compensations),
        undo_inverses: Aggregate::of(&n_undo),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{run, RandomSched};
    use crate::workload::WorkloadSpec;
    use pushpull_core::lang::Code;
    use pushpull_spec::counter::{Counter, CtrMethod};
    use pushpull_tm::optimistic::{OptimisticSystem, ReadPolicy};

    #[test]
    fn aggregate_math() {
        let a = Aggregate::of(&[1.0, 2.0, 3.0]);
        assert!((a.mean - 2.0).abs() < 1e-12);
        assert!((a.std_dev - 1.0).abs() < 1e-12);
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 3.0);
        assert_eq!(a.n, 3);
        let empty = Aggregate::of(&[]);
        assert_eq!(empty.n, 0);
        let single = Aggregate::of(&[5.0]);
        assert_eq!(single.std_dev, 0.0);
    }

    #[test]
    fn sweep_runs_per_seed() {
        let spec = WorkloadSpec {
            threads: 2,
            txns_per_thread: 2,
            ops_per_txn: 2,
            ..Default::default()
        };
        let result = sweep("counter/optimistic", 1..=5, |seed| {
            let mut sys = OptimisticSystem::new(
                Counter::new(),
                spec.counter_programs(),
                ReadPolicy::Snapshot,
            );
            let out = run(&mut sys, &mut RandomSched::new(seed), 1_000_000).unwrap();
            assert!(out.completed);
            (sys.stats(), out.ticks)
        });
        assert_eq!(result.commits.n, 5);
        assert!(
            (result.commits.mean - 4.0).abs() < 1e-9,
            "4 txns always commit"
        );
        let line = result.to_string();
        assert!(line.contains("counter/optimistic"));
        // Flat workloads never nest, and the table stays byte-compatible.
        assert_eq!(result.scopes_opened.max, 0.0);
        assert!(!line.contains("scopes="));
        let _ = Code::method(CtrMethod::Get); // silence unused import pathologies
    }

    #[test]
    fn sweep_carries_nesting_counters() {
        let result = sweep("counter/nested", 1..=3, |seed| {
            let programs = (0..2i64)
                .map(|t| {
                    vec![Code::seq(
                        Code::method(CtrMethod::Add(t + 1)),
                        Code::tx(Code::method(CtrMethod::Get)),
                    )]
                })
                .collect();
            let mut sys = OptimisticSystem::new(Counter::new(), programs, ReadPolicy::Snapshot);
            let out = run(&mut sys, &mut RandomSched::new(seed), 1_000_000).unwrap();
            assert!(out.completed);
            (sys.stats(), out.ticks)
        });
        assert!(
            result.scopes_opened.mean > 0.0,
            "tx markers must open scopes: {result}"
        );
        assert!(result.scopes_merged.mean > 0.0);
        assert!(result.to_string().contains("scopes="), "{result}");
    }
}
