//! Structured transaction-program families — realistic workload shapes
//! beyond the uniform random mixes of [`crate::workload`]:
//!
//! * [`transfers`] — bank transfers (withdraw + deposit pairs), the
//!   motivating workload for abstract commutativity;
//! * [`producer_consumer`] — FIFO queue producers and consumers, the
//!   fully non-commutative regime;
//! * [`rmw_chains`] — read-modify-write chains over memory, the classic
//!   STM torture test;
//! * [`scans_and_updates`] — read-only scanners racing point updaters,
//!   the opacity-sensitive shape.

use pushpull_core::lang::Code;
use pushpull_spec::bank::BankMethod;
use pushpull_spec::kvmap::MapMethod;
use pushpull_spec::queue::QueueMethod;
use pushpull_spec::rwmem::{Loc, MemMethod};

/// `threads` threads, each running `txns` transfer transactions moving
/// `amount` from account `t` to account `(t+1) % threads`, after thread 0
/// runs one funding transaction depositing `seed_money` everywhere.
pub fn transfers(
    threads: usize,
    txns: usize,
    amount: i64,
    seed_money: i64,
) -> Vec<Vec<Code<BankMethod>>> {
    let n = threads as u32;
    let mut programs: Vec<Vec<Code<BankMethod>>> = Vec::with_capacity(threads);
    for t in 0..n {
        let mut progs = Vec::new();
        if t == 0 {
            progs.push(Code::seq_all(
                (0..n).map(|a| Code::method(BankMethod::Deposit(a, seed_money))),
            ));
        }
        for _ in 0..txns {
            progs.push(Code::seq_all(vec![
                Code::method(BankMethod::Withdraw(t, amount)),
                Code::method(BankMethod::Deposit((t + 1) % n, amount)),
            ]));
        }
        programs.push(progs);
    }
    programs
}

/// `producers` threads each enqueueing `items` distinct values, and
/// `consumers` threads each dequeueing `items · producers / consumers`
/// times. Values encode their producer and sequence number so FIFO
/// order per producer is checkable from the committed log.
pub fn producer_consumer(
    producers: usize,
    consumers: usize,
    items: usize,
) -> Vec<Vec<Code<QueueMethod>>> {
    assert!(consumers > 0 && producers > 0);
    let total = producers * items;
    let per_consumer = total / consumers;
    let mut programs = Vec::new();
    for p in 0..producers {
        programs.push(
            (0..items)
                .map(|i| Code::method(QueueMethod::Enq((p * 10_000 + i) as i64)))
                .collect(),
        );
    }
    for _ in 0..consumers {
        programs.push(
            (0..per_consumer)
                .map(|_| Code::method(QueueMethod::Deq))
                .collect(),
        );
    }
    programs
}

/// `threads` threads × `txns` read-modify-write transactions over
/// `locs` memory locations: `read(l); write(l, tag)` with `l` striding
/// per thread.
pub fn rmw_chains(threads: usize, txns: usize, locs: u32) -> Vec<Vec<Code<MemMethod>>> {
    (0..threads)
        .map(|t| {
            (0..txns)
                .map(|i| {
                    let l = Loc(((t + i) as u32) % locs);
                    Code::seq_all(vec![
                        Code::method(MemMethod::Read(l)),
                        Code::method(MemMethod::Write(l, (t * 1000 + i) as i64)),
                    ])
                })
                .collect()
        })
        .collect()
}

/// Half the threads scan `scan_keys` map keys read-only; the other half
/// update a single key each — the shape where opacity (consistent
/// snapshots for readers) matters most.
pub fn scans_and_updates(threads: usize, txns: usize, scan_keys: u64) -> Vec<Vec<Code<MapMethod>>> {
    (0..threads)
        .map(|t| {
            (0..txns)
                .map(|i| {
                    if t % 2 == 0 {
                        // Scanner: read every key in one transaction.
                        Code::seq_all((0..scan_keys).map(|k| Code::method(MapMethod::Get(k))))
                    } else {
                        // Updater: write one key.
                        Code::method(MapMethod::Put(
                            (t as u64 + i as u64) % scan_keys,
                            (t * 100 + i) as i64,
                        ))
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_shape() {
        let p = transfers(3, 2, 10, 100);
        assert_eq!(p.len(), 3);
        assert_eq!(p[0].len(), 3, "funding txn plus two transfers");
        assert_eq!(p[1].len(), 2);
    }

    #[test]
    fn producer_consumer_balances_items() {
        let p = producer_consumer(2, 2, 4);
        assert_eq!(p.len(), 4);
        assert_eq!(p[0].len(), 4, "producer enqueues");
        assert_eq!(p[2].len(), 4, "consumer dequeues half of 8");
    }

    #[test]
    fn rmw_chrecord_strides() {
        let p = rmw_chains(2, 3, 4);
        assert_eq!(p.len(), 2);
        assert!(p.iter().all(|t| t.len() == 3));
    }

    #[test]
    fn scan_shape() {
        let p = scans_and_updates(4, 2, 5);
        assert_eq!(p.len(), 4);
        // Scanners' transactions contain 5 methods.
        assert_eq!(p[0][0].reachable_methods().len(), 5);
        // Updaters' contain 1.
        assert_eq!(p[1][0].reachable_methods().len(), 1);
    }
}
