//! Shared audit-ledger assertions for the test suites and benchmarks.
//!
//! Three invariants recur across the static-analysis tests, the fault
//! suite, the sharding equivalence suite and the benchmark sanity
//! checks; they live here so every caller asserts the *same* property
//! with the same diagnostics:
//!
//! * **Ledger closure** under a static-discharge plan: every criterion
//!   reach is tallied exactly once, so the static column of an armed run
//!   absorbs exactly what a plan-free baseline discharged dynamically.
//! * **Injection accounting**: the audit's `injected` tallies equal the
//!   fault plan's own fired tallies — every fault recorded once, none
//!   leaked into `violated`.
//! * **Ledger equality**: two runs reached and resolved the same
//!   criteria the same number of times (the per-obligation columns),
//!   independent of how many raw oracle *queries* each evaluation cost —
//!   the invariant log sharding and the incremental cache must preserve.
//!
//! The chaos-matrix driver loop itself also lives here
//! ([`assert_chaos_cell`]): arm a plan, drive the system to completion
//! under a seeded random scheduler, then assert completion, exact
//! injection accounting, and the safety oracles. Every fault family —
//! rule denials, kills/stalls, HTM aborts, and the transport faults —
//! runs its matrix rows through this one loop.

use std::collections::BTreeMap;
use std::sync::Arc;

use pushpull_core::audit::CriteriaAudit;
use pushpull_core::error::{Clause, Rule};
use pushpull_core::faults::{FaultHook, FaultKind};
use pushpull_core::machine::Machine;
use pushpull_core::opacity::check_trace;
use pushpull_core::serializability::check_machine;
use pushpull_core::spec::SeqSpec;
use pushpull_tm::driver::TmSystem;

use crate::faults::FaultPlan;
use crate::scheduler::{run, RandomSched};

/// Asserts the static-discharge ledger closes: on an armed run of a
/// conflict-free workload, every obligation in `obligations` was (a)
/// never re-checked dynamically, (b) statically discharged exactly as
/// often as the plan-free `base` run discharged it dynamically, and (c)
/// cheaper — strictly fewer raw mover queries than the baseline. Also
/// requires the two runs to have reached criteria the same total number
/// of times (`total`), which is what "the ledger closes" means.
///
/// # Panics
///
/// Panics (via `assert!`) describing the first column that fails to
/// close.
pub fn assert_ledger_closes(
    audit: &CriteriaAudit,
    base: &CriteriaAudit,
    obligations: &[(Rule, Clause)],
) {
    assert!(
        audit.statically_discharged_total() > 0,
        "armed run recorded no static discharges at all\n{}",
        audit.render()
    );
    for &(rule, clause) in obligations {
        assert_eq!(
            audit.discharged_count(rule, clause),
            0,
            "{rule} {clause}: armed runs must never re-check a proven clause"
        );
        assert_eq!(
            audit.violated_count(rule, clause),
            0,
            "{rule} {clause}: proven clause recorded a violation"
        );
        assert_eq!(
            audit.statically_discharged_count(rule, clause),
            base.discharged_count(rule, clause),
            "{rule} {clause}: static column must absorb the baseline's dynamic discharges"
        );
    }
    assert_eq!(
        audit.total(),
        base.total(),
        "ledger must close: armed and baseline runs reached different criterion counts"
    );
    assert!(
        audit.mover_queries < base.mover_queries,
        "elision must cut mover queries ({} vs {})",
        audit.mover_queries,
        base.mover_queries
    );
}

/// Asserts the audit's `injected` tallies equal a fault plan's fired
/// tallies: every injected fault was recorded exactly once, by kind.
///
/// # Panics
///
/// Panics with both tally maps rendered when they diverge.
pub fn assert_injection_accounted(audit: &CriteriaAudit, fired: &BTreeMap<FaultKind, u64>) {
    assert_eq!(
        &audit.injected,
        fired,
        "audit injected tallies diverge from the plan's fired tallies\n{}",
        audit.render()
    );
}

/// Asserts two audits agree on every *ledger* column — `discharged`,
/// `violated`, `statically_discharged` and `injected`, per obligation —
/// while deliberately ignoring the raw `mover_queries`/`allowed_queries`
/// counters. Criteria *verdict* equality is exactly what log sharding
/// and the incremental prefix cache promise; what each verdict *cost* in
/// oracle queries is allowed to differ.
///
/// # Panics
///
/// Panics naming the first diverging column, with both audits rendered.
pub fn assert_ledger_matches(a: &CriteriaAudit, b: &CriteriaAudit) {
    let columns: [(&str, &BTreeMap<_, u64>, &BTreeMap<_, u64>); 3] = [
        ("discharged", &a.discharged, &b.discharged),
        ("violated", &a.violated, &b.violated),
        (
            "statically_discharged",
            &a.statically_discharged,
            &b.statically_discharged,
        ),
    ];
    for (name, left, right) in columns {
        assert_eq!(
            left,
            right,
            "audit ledgers diverge in `{name}`\n--- left:\n{}\n--- right:\n{}",
            a.render(),
            b.render()
        );
    }
    assert_eq!(
        a.injected,
        b.injected,
        "audit ledgers diverge in `injected`\n--- left:\n{}\n--- right:\n{}",
        a.render(),
        b.render()
    );
}

/// Runs one chaos-matrix cell: arms `plan` on the machine, drives `sys`
/// to completion under `RandomSched::new(seed ^ 0xC0FF_EE00)` within
/// `budget` ticks, then asserts the three-part robustness contract —
/// **completion** (a faulted run still finishes), **accounting** (the
/// audit's `injected` tallies equal the plan's fired tallies exactly),
/// and **safety** (the serializability oracle, plus the opacity oracle
/// when `expect_opaque`). Returns the finished system so callers can
/// assert fault-family-specific extras (e.g. transport counters).
///
/// Install any transport or static-discharge configuration on the
/// machine *before* calling; this helper only arms the fault hook.
///
/// # Panics
///
/// Panics, prefixed with `label`, on any machine error, wedge, tally
/// divergence, or oracle violation.
pub fn assert_chaos_cell<T, Sp>(
    label: &str,
    mut sys: T,
    plan: &Arc<FaultPlan>,
    seed: u64,
    budget: usize,
    expect_opaque: bool,
    machine: impl Fn(&T) -> &Machine<Sp>,
) -> T
where
    T: TmSystem,
    Sp: SeqSpec,
{
    machine(&sys).set_fault_hook(Some(Arc::clone(plan) as Arc<dyn FaultHook>));
    let out = run(&mut sys, &mut RandomSched::new(seed ^ 0xC0FF_EE00), budget)
        .unwrap_or_else(|e| panic!("{label}/seed {seed}: machine error: {e}"));
    assert!(
        out.completed,
        "{label}/seed {seed}: wedged after {} ticks",
        out.ticks
    );
    let m = machine(&sys);
    assert_injection_accounted(&m.audit(), &plan.fired());
    let report = check_machine(m);
    assert!(report.is_serializable(), "{label}/seed {seed}: {report}");
    if expect_opaque {
        let verdict = check_trace(&m.trace());
        assert!(
            verdict.is_opaque(),
            "{label}/seed {seed}: faulted run lost opacity"
        );
    }
    sys
}
