//! Deterministic fault plans — the harness implementation of the core
//! [`FaultHook`] seam.
//!
//! A [`FaultPlan`] is a finite list of [`FaultSpec`]s, each saying "on
//! thread `t`'s `at`-th probe of this boundary, fire this fault once".
//! Probes are counted per thread and per boundary kind with atomic
//! counters, so a plan's behaviour depends only on what the faulted
//! thread itself does — never on wall-clock time or how the OS happens
//! to interleave the other workers. Running the same single-threaded
//! schedule twice against the same plan fires the same faults at the
//! same rules.
//!
//! Every fault that actually fires is tallied in [`FaultPlan::fired`];
//! chaos tests close the loop by asserting this tally equals the
//! machine's [`CriteriaAudit::injected`] counts, proving each injected
//! fault was both delivered and recorded.
//!
//! [`CriteriaAudit::injected`]: pushpull_core::audit::CriteriaAudit

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use pushpull_core::error::{Clause, Rule};
use pushpull_core::faults::{
    deny_clause, BoundaryFault, FaultHook, FaultKind, HtmFault, TransportFault,
};
use pushpull_core::op::ThreadId;

/// One planned fault: on `thread`'s `at`-th probe of the boundary that
/// `kind` belongs to (rule entry for denials, tick start for
/// kill/stall, HTM access for the HTM kinds), fire once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// The thread the fault targets.
    pub thread: ThreadId,
    /// Zero-based probe index at which the fault fires.
    pub at: u64,
    /// What to inject.
    pub kind: FaultKind,
    /// Stall duration in ticks; only meaningful for [`FaultKind::Stall`].
    pub stall: u64,
}

const RULE_COUNT: usize = 7;

fn rule_index(rule: Rule) -> usize {
    match rule {
        Rule::App => 0,
        Rule::UnApp => 1,
        Rule::Push => 2,
        Rule::UnPush => 3,
        Rule::Pull => 4,
        Rule::UnPull => 5,
        Rule::Cmt => 6,
    }
}

/// Per-thread probe counters, interior-mutable because [`FaultHook`]
/// methods take `&self` from concurrent workers.
#[derive(Debug, Default)]
struct ThreadProbes {
    rules: [AtomicU64; RULE_COUNT],
    ticks: AtomicU64,
    htm: AtomicU64,
    transport: AtomicU64,
}

/// A deterministic, seeded-or-scripted fault plan.
///
/// Build one with [`FaultPlan::new`] plus the builder methods, or let
/// [`FaultPlan::seeded`] derive a small plan from a seed. Arm it with
/// [`Machine::set_fault_hook`](pushpull_core::machine::Machine::set_fault_hook)
/// (behind an `Arc`), run the system, then compare
/// [`fired`](FaultPlan::fired) against the machine audit's injected
/// tallies.
#[derive(Debug)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
    probes: Vec<ThreadProbes>,
    fired: Mutex<BTreeMap<FaultKind, u64>>,
    /// Shards under a *persistent* partition: every transport delivery
    /// attempt against them fires [`FaultKind::PartitionShard`] until
    /// [`heal_shard`](FaultPlan::heal_shard) removes them.
    partitioned: Mutex<BTreeSet<usize>>,
}

impl FaultPlan {
    /// An empty plan for `n_threads` threads (injects nothing until
    /// specs are added).
    pub fn new(n_threads: usize) -> Self {
        Self {
            specs: Vec::new(),
            probes: (0..n_threads).map(|_| ThreadProbes::default()).collect(),
            fired: Mutex::new(BTreeMap::new()),
            partitioned: Mutex::new(BTreeSet::new()),
        }
    }

    /// Adds an explicit spec.
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Denies `thread`'s `at`-th entry into forward rule `rule`.
    pub fn deny(self, thread: usize, rule: Rule, at: u64) -> Self {
        self.with(FaultSpec {
            thread: ThreadId(thread),
            at,
            kind: FaultKind::Deny(rule),
            stall: 0,
        })
    }

    /// Kills `thread`'s transaction at its `at`-th tick boundary.
    pub fn kill(self, thread: usize, at: u64) -> Self {
        self.with(FaultSpec {
            thread: ThreadId(thread),
            at,
            kind: FaultKind::Kill,
            stall: 0,
        })
    }

    /// Stalls `thread` for `ticks` ticks at its `at`-th tick boundary.
    pub fn stall(self, thread: usize, at: u64, ticks: u64) -> Self {
        self.with(FaultSpec {
            thread: ThreadId(thread),
            at,
            kind: FaultKind::Stall,
            stall: ticks,
        })
    }

    /// Injects an HTM fault at `thread`'s `at`-th transactional access.
    pub fn htm(self, thread: usize, kind: HtmFault, at: u64) -> Self {
        self.with(FaultSpec {
            thread: ThreadId(thread),
            at,
            kind: match kind {
                HtmFault::Capacity => FaultKind::HtmCapacity,
                HtmFault::Conflict => FaultKind::HtmConflict,
            },
            stall: 0,
        })
    }

    /// Injects a one-shot transport fault at `thread`'s `at`-th transport
    /// delivery attempt (any shard).
    pub fn transport(self, thread: usize, fault: TransportFault, at: u64) -> Self {
        self.with(FaultSpec {
            thread: ThreadId(thread),
            at,
            kind: fault.kind(),
            stall: 0,
        })
    }

    /// Builder form of [`partition_shard`](FaultPlan::partition_shard):
    /// the plan starts with `shard` persistently partitioned.
    pub fn partition(self, shard: usize) -> Self {
        self.partition_shard(shard);
        self
    }

    /// Persistently partitions `shard`: every delivery attempt against it
    /// fires [`TransportFault::Partition`] (and is tallied) until healed.
    /// Takes `&self` so a test can flip partitions mid-run through the
    /// same `Arc` the machine holds as its hook.
    pub fn partition_shard(&self, shard: usize) {
        self.partitioned
            .lock()
            .expect("partition set poisoned")
            .insert(shard);
    }

    /// Heals a persistent partition; subsequent deliveries to `shard` go
    /// back through the ordinary one-shot spec schedule.
    pub fn heal_shard(&self, shard: usize) {
        self.partitioned
            .lock()
            .expect("partition set poisoned")
            .remove(&shard);
    }

    /// Derives a small plan from `seed`: one spec of `kind` per thread,
    /// each at a low probe index so that any driver which reaches that
    /// boundary at all will trigger it.
    pub fn seeded(seed: u64, n_threads: usize, kind: FaultKind) -> Self {
        let mut plan = Self::new(n_threads);
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for thread in 0..n_threads {
            plan = plan.with(FaultSpec {
                thread: ThreadId(thread),
                at: next() % 3,
                kind,
                stall: 1 + next() % 3,
            });
        }
        plan
    }

    /// The faults that actually fired, keyed like the machine audit's
    /// injected tallies.
    pub fn fired(&self) -> BTreeMap<FaultKind, u64> {
        self.fired.lock().expect("fired tally poisoned").clone()
    }

    /// Total faults fired.
    pub fn fired_total(&self) -> u64 {
        self.fired().values().sum()
    }

    fn record(&self, kind: FaultKind) {
        *self
            .fired
            .lock()
            .expect("fired tally poisoned")
            .entry(kind)
            .or_insert(0) += 1;
    }

    /// Does any spec match `(thread, kind, n)`?
    fn matches(&self, thread: ThreadId, kind: FaultKind, n: u64) -> Option<&FaultSpec> {
        self.specs
            .iter()
            .find(|s| s.thread == thread && s.kind == kind && s.at == n)
    }
}

impl FaultHook for FaultPlan {
    fn deny_rule(&self, tid: ThreadId, rule: Rule) -> Option<Clause> {
        let probes = self.probes.get(tid.0)?;
        let n = probes.rules[rule_index(rule)].fetch_add(1, Ordering::Relaxed);
        let kind = FaultKind::Deny(rule);
        self.matches(tid, kind, n).map(|_| {
            self.record(kind);
            deny_clause(rule)
        })
    }

    fn at_boundary(&self, tid: ThreadId) -> Option<BoundaryFault> {
        let probes = self.probes.get(tid.0)?;
        let n = probes.ticks.fetch_add(1, Ordering::Relaxed);
        if self.matches(tid, FaultKind::Kill, n).is_some() {
            self.record(FaultKind::Kill);
            return Some(BoundaryFault::Kill);
        }
        if let Some(spec) = self.matches(tid, FaultKind::Stall, n) {
            self.record(FaultKind::Stall);
            return Some(BoundaryFault::Stall(spec.stall));
        }
        None
    }

    fn htm_access(&self, tid: ThreadId) -> Option<HtmFault> {
        let probes = self.probes.get(tid.0)?;
        let n = probes.htm.fetch_add(1, Ordering::Relaxed);
        if self.matches(tid, FaultKind::HtmCapacity, n).is_some() {
            self.record(FaultKind::HtmCapacity);
            return Some(HtmFault::Capacity);
        }
        if self.matches(tid, FaultKind::HtmConflict, n).is_some() {
            self.record(FaultKind::HtmConflict);
            return Some(HtmFault::Conflict);
        }
        None
    }

    fn transport_fault(&self, tid: ThreadId, shard: usize) -> Option<TransportFault> {
        // Persistent partitions win and deliberately do *not* consume a
        // probe index: however many retries the partition absorbs, the
        // one-shot schedule resumes exactly where it left off after a
        // heal. Every consult that fires is tallied, matching the
        // envelope's injected count attempt for attempt.
        if self
            .partitioned
            .lock()
            .expect("partition set poisoned")
            .contains(&shard)
        {
            self.record(FaultKind::PartitionShard);
            return Some(TransportFault::Partition);
        }
        let probes = self.probes.get(tid.0)?;
        let n = probes.transport.fetch_add(1, Ordering::Relaxed);
        for fault in [
            TransportFault::Partition,
            TransportFault::DelayReply,
            TransportFault::DropRequest,
            TransportFault::DuplicateRequest,
            TransportFault::CrashServer,
        ] {
            if self.matches(tid, fault.kind(), n).is_some() {
                self.record(fault.kind());
                return Some(fault);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn denies_exactly_the_planned_probe() {
        let plan = FaultPlan::new(2).deny(0, Rule::Push, 1);
        // Thread 0, probes 0..3: only probe 1 is denied.
        assert_eq!(plan.deny_rule(ThreadId(0), Rule::Push), None);
        assert_eq!(
            plan.deny_rule(ThreadId(0), Rule::Push),
            Some(deny_clause(Rule::Push))
        );
        assert_eq!(plan.deny_rule(ThreadId(0), Rule::Push), None);
        // Thread 1 is untouched; so are other rules on thread 0.
        assert_eq!(plan.deny_rule(ThreadId(1), Rule::Push), None);
        assert_eq!(plan.deny_rule(ThreadId(0), Rule::App), None);
        assert_eq!(plan.fired()[&FaultKind::Deny(Rule::Push)], 1);
        assert_eq!(plan.fired_total(), 1);
    }

    #[test]
    fn boundary_faults_fire_once_each() {
        let plan = FaultPlan::new(1).kill(0, 0).stall(0, 2, 5);
        assert_eq!(plan.at_boundary(ThreadId(0)), Some(BoundaryFault::Kill));
        assert_eq!(plan.at_boundary(ThreadId(0)), None);
        assert_eq!(plan.at_boundary(ThreadId(0)), Some(BoundaryFault::Stall(5)));
        assert_eq!(plan.at_boundary(ThreadId(0)), None);
        assert_eq!(plan.fired_total(), 2);
    }

    #[test]
    fn htm_faults_fire_at_the_planned_access() {
        let plan = FaultPlan::new(1).htm(0, HtmFault::Capacity, 1);
        assert_eq!(plan.htm_access(ThreadId(0)), None);
        assert_eq!(plan.htm_access(ThreadId(0)), Some(HtmFault::Capacity));
        assert_eq!(plan.fired()[&FaultKind::HtmCapacity], 1);
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::seeded(42, 3, FaultKind::Kill);
        let b = FaultPlan::seeded(42, 3, FaultKind::Kill);
        assert_eq!(a.specs, b.specs);
        let c = FaultPlan::seeded(43, 3, FaultKind::Kill);
        // Different seeds virtually always give a different plan.
        assert_eq!(a.specs.len(), c.specs.len());
        assert_eq!(a.specs.len(), 3);
    }

    #[test]
    fn out_of_range_thread_probes_are_ignored() {
        let plan = FaultPlan::new(1).deny(0, Rule::App, 0);
        assert_eq!(plan.deny_rule(ThreadId(7), Rule::App), None);
        assert_eq!(plan.at_boundary(ThreadId(7)), None);
        assert_eq!(plan.htm_access(ThreadId(7)), None);
        assert_eq!(plan.transport_fault(ThreadId(7), 0), None);
    }

    #[test]
    fn transport_faults_fire_at_the_planned_attempt() {
        let plan = FaultPlan::new(2)
            .transport(0, TransportFault::DropRequest, 1)
            .transport(0, TransportFault::CrashServer, 2);
        assert_eq!(plan.transport_fault(ThreadId(0), 0), None);
        assert_eq!(
            plan.transport_fault(ThreadId(0), 0),
            Some(TransportFault::DropRequest)
        );
        assert_eq!(
            plan.transport_fault(ThreadId(0), 3),
            Some(TransportFault::CrashServer)
        );
        assert_eq!(plan.transport_fault(ThreadId(0), 0), None);
        // Thread 1 has its own independent probe counter.
        assert_eq!(plan.transport_fault(ThreadId(1), 0), None);
        assert_eq!(plan.fired()[&FaultKind::DropRequest], 1);
        assert_eq!(plan.fired()[&FaultKind::CrashShardServer], 1);
    }

    #[test]
    fn persistent_partition_preserves_the_probe_schedule() {
        let plan = FaultPlan::new(1)
            .transport(0, TransportFault::DelayReply, 1)
            .partition(2);
        // Consults against the partitioned shard fire every time and are
        // each tallied, without burning a probe index.
        for _ in 0..3 {
            assert_eq!(
                plan.transport_fault(ThreadId(0), 2),
                Some(TransportFault::Partition)
            );
        }
        assert_eq!(plan.fired()[&FaultKind::PartitionShard], 3);
        // The one-shot schedule is untouched: probes 0 and 1 on a healthy
        // shard behave as if the partition never happened.
        assert_eq!(plan.transport_fault(ThreadId(0), 0), None);
        assert_eq!(
            plan.transport_fault(ThreadId(0), 0),
            Some(TransportFault::DelayReply)
        );
        // Healing stops the partition faults entirely.
        plan.heal_shard(2);
        assert_eq!(plan.transport_fault(ThreadId(0), 2), None);
        assert_eq!(plan.fired()[&FaultKind::PartitionShard], 3);
    }
}
