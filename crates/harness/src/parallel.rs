//! A parallel runner: real OS threads, one per model thread, each owning
//! its own [`pushpull_core::TxnHandle`].
//!
//! This is where the GlobalState/TxnHandle split pays off. Workers are
//! obtained from [`ParallelSystem::workers`], which hands each OS thread
//! exclusive `&mut` access to its own per-thread handle and driver state.
//! **No lock wraps the system as a whole**: APP/UNAPP ticks run entirely
//! on thread-local state, and only the shared-log rules
//! (PUSH/UNPUSH/PULL/UNPULL/CMT) and the drivers' own small shared
//! structures (a lock table, a conflict tracker, a commit token) take
//! short critical sections inside the machine. The interleaving is
//! decided by the *OS scheduler* rather than a seeded policy, giving the
//! test suites a source of genuinely nondeterministic interleavings
//! (every one of which must still pass the oracle, which is the point).

use std::sync::atomic::{AtomicUsize, Ordering};

use pushpull_core::error::MachineError;
use pushpull_tm::driver::{ParallelSystem, Tick};

/// Outcome of a parallel run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelOutcome {
    /// Total ticks across all workers.
    pub ticks: usize,
    /// Whether every model thread finished within its tick budget.
    pub completed: bool,
}

/// Runs `sys` with one OS thread per model thread, each ticking its own
/// worker closure until done (or until `max_ticks_per_thread`).
///
/// # Errors
///
/// Propagates the first unexpected [`MachineError`] raised by any worker.
pub fn run_parallel<T>(
    mut sys: T,
    max_ticks_per_thread: usize,
) -> Result<(T, ParallelOutcome), MachineError>
where
    T: ParallelSystem + Send,
{
    let total_ticks = AtomicUsize::new(0);
    let mut first_error: Option<MachineError> = None;
    let mut all_done = true;

    let results: Vec<Result<bool, MachineError>> = {
        let workers = sys.workers();
        let total_ticks = &total_ticks;
        std::thread::scope(|scope| {
            let handles: Vec<_> = workers
                .into_iter()
                .map(|mut worker| {
                    scope.spawn(move || {
                        for _ in 0..max_ticks_per_thread {
                            let tick = worker()?;
                            total_ticks.fetch_add(1, Ordering::Relaxed);
                            match tick {
                                Tick::Done => return Ok(true),
                                Tick::Blocked => std::thread::yield_now(),
                                _ => {}
                            }
                        }
                        Ok(false)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
    };

    for r in results {
        match r {
            Ok(done) => all_done &= done,
            Err(e) => {
                if first_error.is_none() {
                    first_error = Some(e);
                }
            }
        }
    }
    if let Some(e) = first_error {
        return Err(e);
    }
    let completed = all_done && sys.is_done();
    Ok((
        sys,
        ParallelOutcome {
            ticks: total_ticks.into_inner(),
            completed,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushpull_core::lang::Code;
    use pushpull_core::serializability::check_machine;
    use pushpull_spec::kvmap::{KvMap, MapMethod};
    use pushpull_tm::boosting::BoostingSystem;

    #[test]
    fn parallel_boosting_run_is_serializable() {
        for round in 0..5 {
            let programs: Vec<_> = (0..4u64)
                .map(|t| {
                    vec![
                        Code::seq_all(vec![
                            Code::method(MapMethod::Put(t, t as i64)),
                            Code::method(MapMethod::Get((t + 1) % 4)),
                        ]),
                        Code::method(MapMethod::Put(t + 10, 1)),
                    ]
                })
                .collect();
            let sys = BoostingSystem::new(KvMap::new(), programs);
            let (sys, outcome) = run_parallel(sys, 1_000_000).unwrap();
            assert!(outcome.completed, "round {round} incomplete");
            assert_eq!(sys.stats().commits, 8, "round {round}");
            let report = check_machine(sys.machine());
            assert!(report.is_serializable(), "round {round}: {report}");
        }
    }

    #[test]
    fn parallel_optimistic_run_is_serializable() {
        use pushpull_spec::rwmem::{Loc, MemMethod, RwMem};
        use pushpull_tm::optimistic::{OptimisticSystem, ReadPolicy};
        for round in 0..5 {
            let programs: Vec<_> = (0..4u32)
                .map(|t| {
                    vec![Code::seq_all(vec![
                        Code::method(MemMethod::Read(Loc(t % 2))),
                        Code::method(MemMethod::Write(Loc(t % 2), i64::from(t))),
                    ])]
                })
                .collect();
            let sys = OptimisticSystem::new(RwMem::new(), programs, ReadPolicy::Snapshot);
            let (sys, outcome) = run_parallel(sys, 1_000_000).unwrap();
            assert!(outcome.completed, "round {round} incomplete");
            let report = check_machine(sys.machine());
            assert!(report.is_serializable(), "round {round}: {report}");
        }
    }
}
