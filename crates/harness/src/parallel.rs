//! A parallel runner: real OS threads, one per model thread, contending
//! on the shared system.
//!
//! The PUSH/PULL model's shared log is a single synchronization point, so
//! the honest parallel realization guards the system with one lock and
//! lets worker threads race to tick their own model thread — the
//! interleaving is then decided by the *OS scheduler* rather than a
//! seeded policy, giving the test suites a source of genuinely
//! nondeterministic interleavings (every one of which must still pass the
//! oracle, which is the point).

use parking_lot::Mutex;

use pushpull_core::error::MachineError;
use pushpull_core::op::ThreadId;
use pushpull_tm::driver::{Tick, TmSystem};

/// Outcome of a parallel run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelOutcome {
    /// Total ticks across all workers.
    pub ticks: usize,
    /// Whether every model thread finished within its tick budget.
    pub completed: bool,
}

/// Runs `sys` with one OS thread per model thread, each ticking its own
/// [`ThreadId`] until done (or until `max_ticks_per_thread`).
///
/// # Errors
///
/// Propagates the first unexpected [`MachineError`] raised by any worker.
pub fn run_parallel<T>(sys: T, max_ticks_per_thread: usize) -> Result<(T, ParallelOutcome), MachineError>
where
    T: TmSystem + Send,
{
    let n = sys.thread_count();
    let shared = Mutex::new(sys);
    let total_ticks = std::sync::atomic::AtomicUsize::new(0);
    let mut first_error: Option<MachineError> = None;
    let mut all_done = true;

    let results: Vec<Result<bool, MachineError>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|t| {
                let shared = &shared;
                let total_ticks = &total_ticks;
                scope.spawn(move |_| {
                    let tid = ThreadId(t);
                    for _ in 0..max_ticks_per_thread {
                        let tick = {
                            let mut guard = shared.lock();
                            guard.tick(tid)?
                        };
                        total_ticks.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        match tick {
                            Tick::Done => return Ok(true),
                            Tick::Blocked => std::thread::yield_now(),
                            _ => {}
                        }
                    }
                    Ok(false)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    })
    .expect("scope");

    for r in results {
        match r {
            Ok(done) => all_done &= done,
            Err(e) => {
                if first_error.is_none() {
                    first_error = Some(e);
                }
            }
        }
    }
    if let Some(e) = first_error {
        return Err(e);
    }
    let sys = shared.into_inner();
    let completed = all_done && sys.is_done();
    Ok((sys, ParallelOutcome { ticks: total_ticks.into_inner(), completed }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushpull_core::lang::Code;
    use pushpull_core::serializability::check_machine;
    use pushpull_spec::kvmap::{KvMap, MapMethod};
    use pushpull_tm::boosting::BoostingSystem;

    #[test]
    fn parallel_boosting_run_is_serializable() {
        for round in 0..5 {
            let programs: Vec<_> = (0..4u64)
                .map(|t| {
                    vec![
                        Code::seq_all(vec![
                            Code::method(MapMethod::Put(t, t as i64)),
                            Code::method(MapMethod::Get((t + 1) % 4)),
                        ]),
                        Code::method(MapMethod::Put(t + 10, 1)),
                    ]
                })
                .collect();
            let sys = BoostingSystem::new(KvMap::new(), programs);
            let (sys, outcome) = run_parallel(sys, 1_000_000).unwrap();
            assert!(outcome.completed, "round {round} incomplete");
            assert_eq!(sys.stats().commits, 8, "round {round}");
            let report = check_machine(sys.machine());
            assert!(report.is_serializable(), "round {round}: {report}");
        }
    }

    #[test]
    fn parallel_optimistic_run_is_serializable() {
        use pushpull_spec::rwmem::{Loc, MemMethod, RwMem};
        use pushpull_tm::optimistic::{OptimisticSystem, ReadPolicy};
        for round in 0..5 {
            let programs: Vec<_> = (0..4u32)
                .map(|t| {
                    vec![Code::seq_all(vec![
                        Code::method(MemMethod::Read(Loc(t % 2))),
                        Code::method(MemMethod::Write(Loc(t % 2), i64::from(t))),
                    ])]
                })
                .collect();
            let sys = OptimisticSystem::new(RwMem::new(), programs, ReadPolicy::Snapshot);
            let (sys, outcome) = run_parallel(sys, 1_000_000).unwrap();
            assert!(outcome.completed, "round {round} incomplete");
            let report = check_machine(sys.machine());
            assert!(report.is_serializable(), "round {round}: {report}");
        }
    }
}
