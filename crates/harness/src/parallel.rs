//! A parallel runner: real OS threads, one per model thread, each owning
//! its own [`pushpull_core::TxnHandle`].
//!
//! This is where the GlobalState/TxnHandle split pays off. Workers are
//! obtained from [`ParallelSystem::workers`], which hands each OS thread
//! exclusive `&mut` access to its own per-thread handle and driver state.
//! **No lock wraps the system as a whole**: APP/UNAPP ticks run entirely
//! on thread-local state, and only the shared-log rules
//! (PUSH/UNPUSH/PULL/UNPULL/CMT) and the drivers' own small shared
//! structures (a lock table, a conflict tracker, a commit token) take
//! short critical sections inside the machine. The interleaving is
//! decided by the *OS scheduler* rather than a seeded policy, giving the
//! test suites a source of genuinely nondeterministic interleavings
//! (every one of which must still pass the oracle, which is the point).
//!
//! Two robustness guarantees:
//!
//! * a worker panic is **caught and propagated** as
//!   [`ParallelError::Panic`] naming the thread and the tick it died on
//!   (instead of poisoning a lock and hanging the others — a stop flag
//!   makes the surviving workers exit at their next tick);
//! * a run that exhausts its tick budget comes back with a
//!   [`WatchdogReport`]: a per-thread dump of how far each worker got
//!   and what its last tick outcome was, which is what you want in hand
//!   when diagnosing a livelock.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use pushpull_analysis::AnalysisPlan;
use pushpull_core::error::MachineError;
use pushpull_tm::driver::{ParallelSystem, Tick};

/// Why a parallel run failed.
#[derive(Debug)]
pub enum ParallelError {
    /// A worker returned an unexpected machine error.
    Machine(MachineError),
    /// A worker panicked mid-run.
    Panic {
        /// Index of the model thread whose worker panicked.
        thread: usize,
        /// Ticks that worker had completed when it panicked.
        ticks: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
}

impl std::fmt::Display for ParallelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParallelError::Machine(e) => write!(f, "worker machine error: {e}"),
            ParallelError::Panic {
                thread,
                ticks,
                message,
            } => write!(
                f,
                "worker for thread {thread} panicked after {ticks} ticks: {message}"
            ),
        }
    }
}

impl std::error::Error for ParallelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParallelError::Machine(e) => Some(e),
            ParallelError::Panic { .. } => None,
        }
    }
}

impl From<MachineError> for ParallelError {
    fn from(e: MachineError) -> Self {
        ParallelError::Machine(e)
    }
}

/// Per-thread progress snapshot for the watchdog dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadDump {
    /// Model thread index.
    pub thread: usize,
    /// Ticks this worker completed.
    pub ticks: usize,
    /// Outcome of the worker's last tick, if it ticked at all.
    pub last: Option<Tick>,
    /// Whether the worker finished all its transactions.
    pub done: bool,
}

/// What every worker was doing when a run missed its tick-budget
/// deadline — the diagnostic to read when a configuration livelocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogReport {
    /// One dump per model thread.
    pub threads: Vec<ThreadDump>,
    /// Shared-log `(acquires, contended)` lock counters at the time the
    /// watchdog tripped, when the system exposes them — a livelock whose
    /// `contended` tally keeps climbing is fighting over the log; one
    /// whose tallies are flat is stuck outside it (driver metadata,
    /// dependency waits).
    pub lock_stats: Option<(u64, u64)>,
    /// Per-shard `(acquires, contended)`, ascending by shard index —
    /// pinpoints *which* shard a log-bound livelock is fighting over.
    pub lock_stats_per_shard: Option<Vec<(u64, u64)>>,
    /// Seqlock `(snapshot reads, retries, fallbacks)` counters, when the
    /// system exposes them — a high fallback share means the lock-free
    /// path is being defeated (coarse mode or write churn).
    pub seqlock_stats: Option<(u64, u64, u64)>,
    /// Arena `(live, capacity, reused)` occupancy across the shard logs.
    pub arena_stats: Option<(u64, u64, u64)>,
    /// Transport envelope counters, when a shard transport is installed —
    /// a stall whose `timeouts` keep climbing with `degradations` still
    /// zero means the retry envelope is absorbing a fault without ever
    /// reaching the coarse fallback.
    pub transport_stats: Option<pushpull_core::TransportStats>,
    /// Group-commit batch counters, when the system runs the service
    /// commit seam — a stall with `batches` flat but commit-ready work
    /// queued means the batching stage itself is wedged.
    pub group_stats: Option<pushpull_core::GroupStats>,
    /// Nested-scope counters, when the system exposes them — a stall
    /// with `scopes_opened` climbing but neither `scopes_merged` nor
    /// `scopes_aborted` moving means threads keep re-entering a scope
    /// they can never exit.
    pub nesting_stats: Option<pushpull_core::NestingStats>,
}

impl std::fmt::Display for WatchdogReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "watchdog: tick budget exhausted")?;
        if let Some((acquires, contended)) = self.lock_stats {
            writeln!(
                f,
                "  shard locks: {acquires} acquires, {contended} contended"
            )?;
        }
        if let Some(per_shard) = &self.lock_stats_per_shard {
            // Ascending shard order: the dump is deterministic, diffable
            // across runs of the same configuration.
            for (i, (acquires, contended)) in per_shard.iter().enumerate() {
                writeln!(
                    f,
                    "    shard {i:<3} acquires={acquires:<9} contended={contended}"
                )?;
            }
        }
        if let Some((reads, retries, fallbacks)) = self.seqlock_stats {
            writeln!(
                f,
                "  seqlock: {reads} snapshot reads, {retries} retries, {fallbacks} fallbacks"
            )?;
        }
        if let Some((live, capacity, reused)) = self.arena_stats {
            writeln!(
                f,
                "  arena: {live} live / {capacity} slots, {reused} reused"
            )?;
        }
        if let Some(t) = self.transport_stats {
            writeln!(
                f,
                "  transport: {} requests, {} retries, {} timeouts, {} degradations, {} recoveries",
                t.requests, t.retries, t.timeouts, t.degradations, t.recoveries
            )?;
        }
        if let Some(g) = self.group_stats {
            if g.batches > 0 {
                writeln!(
                    f,
                    "  group commit: {} batches, {} txns, {} ops, {} locks saved",
                    g.batches, g.batched_txns, g.batched_ops, g.locks_saved
                )?;
                // Fixed ascending bucket order: deterministic output.
                write!(f, "  batch sizes:")?;
                for (i, count) in g.size_hist.iter().enumerate() {
                    if *count > 0 {
                        write!(
                            f,
                            " {}={}",
                            pushpull_core::GroupStats::bucket_label(i),
                            count
                        )?;
                    }
                }
                writeln!(f)?;
            }
        }
        if let Some(n) = &self.nesting_stats {
            if n.scopes_opened > 0 {
                writeln!(
                    f,
                    "  nesting: {} opened, {} merged, {} aborted, {} open commits, \
                     {} compensations, {} undo inverses",
                    n.scopes_opened,
                    n.scopes_merged,
                    n.scopes_aborted,
                    n.open_commits,
                    n.compensations_replayed,
                    n.undo_inverses
                )?;
            }
        }
        for t in &self.threads {
            writeln!(
                f,
                "  thread {:<3} ticks={:<9} last={:<10} done={}",
                t.thread,
                t.ticks,
                t.last.map_or("never-ran".to_string(), |l| format!("{l:?}")),
                t.done,
            )?;
        }
        Ok(())
    }
}

/// Outcome of a parallel run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelOutcome {
    /// Total ticks across all workers.
    pub ticks: usize,
    /// Whether every model thread finished within its tick budget.
    pub completed: bool,
    /// Per-thread diagnostic dump, present when the run did *not*
    /// complete (the watchdog tripped on the tick-budget deadline).
    pub watchdog: Option<WatchdogReport>,
}

struct ThreadSummary {
    ticks: usize,
    last: Option<Tick>,
    done: bool,
}

/// Runs `sys` with one OS thread per model thread, each ticking its own
/// worker closure until done (or until `max_ticks_per_thread`).
///
/// When `plan` is `Some`, its statically proven discharge facts (from
/// [`pushpull_analysis::analyze`]) are installed on the system before any
/// worker spawns, so the machine's proven mover loops are elided and
/// tallied under `statically_discharged`; `Some` of a plan that proved
/// nothing *clears* any previously installed facts. `None` leaves the
/// system's installed facts untouched.
///
/// # Errors
///
/// Propagates the first unexpected [`MachineError`] raised by any worker
/// as [`ParallelError::Machine`], and the first worker panic as
/// [`ParallelError::Panic`] naming the thread and its tick count. Either
/// way a stop flag makes the remaining workers exit at their next tick,
/// so a single bad worker can neither hang the join nor poison the rest
/// of the run.
pub fn run_parallel<T>(
    mut sys: T,
    max_ticks_per_thread: usize,
    plan: Option<&AnalysisPlan>,
) -> Result<(T, ParallelOutcome), ParallelError>
where
    T: ParallelSystem + Send,
{
    if let Some(plan) = plan {
        // Certificate first: strict-mode arming consults it, so a plan
        // carrying both must land the certificate before the discharge
        // (and before any shard routing the caller set up is exercised).
        if plan.certificate.is_some() {
            sys.install_certificate(plan.certificate.clone());
        }
        sys.set_static_discharge(plan.discharge.clone());
    }
    let total_ticks = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);

    let results: Vec<Result<ThreadSummary, ParallelError>> = {
        let workers = sys.workers();
        let total_ticks = &total_ticks;
        let stop = &stop;
        std::thread::scope(|scope| {
            let handles: Vec<_> = workers
                .into_iter()
                .enumerate()
                .map(|(thread, mut worker)| {
                    scope.spawn(move || {
                        let mut summary = ThreadSummary {
                            ticks: 0,
                            last: None,
                            done: false,
                        };
                        for _ in 0..max_ticks_per_thread {
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            let tick = match catch_unwind(AssertUnwindSafe(&mut worker)) {
                                Ok(Ok(tick)) => tick,
                                Ok(Err(e)) => {
                                    stop.store(true, Ordering::Relaxed);
                                    return Err(ParallelError::Machine(e));
                                }
                                Err(payload) => {
                                    stop.store(true, Ordering::Relaxed);
                                    let message = payload
                                        .downcast_ref::<&str>()
                                        .map(|s| (*s).to_string())
                                        .or_else(|| payload.downcast_ref::<String>().cloned())
                                        .unwrap_or_else(|| "non-string panic payload".into());
                                    return Err(ParallelError::Panic {
                                        thread,
                                        ticks: summary.ticks,
                                        message,
                                    });
                                }
                            };
                            summary.ticks += 1;
                            summary.last = Some(tick);
                            total_ticks.fetch_add(1, Ordering::Relaxed);
                            match tick {
                                Tick::Done => {
                                    summary.done = true;
                                    return Ok(summary);
                                }
                                Tick::Blocked => std::thread::yield_now(),
                                _ => {}
                            }
                        }
                        Ok(summary)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    // Unreachable: the worker body catches its own
                    // panics. Kept so a harness bug cannot hang the run.
                    Err(_) => Err(ParallelError::Panic {
                        thread: usize::MAX,
                        ticks: 0,
                        message: "worker thread died outside catch_unwind".into(),
                    }),
                })
                .collect()
        })
    };

    let mut summaries = Vec::with_capacity(results.len());
    let mut first_error: Option<ParallelError> = None;
    for r in results {
        match r {
            Ok(s) => summaries.push(s),
            Err(e) => {
                if first_error.is_none() {
                    first_error = Some(e);
                }
            }
        }
    }
    if let Some(e) = first_error {
        return Err(e);
    }
    let all_done = summaries.iter().all(|s| s.done);
    let completed = all_done && sys.is_done();
    let watchdog = (!completed).then(|| WatchdogReport {
        threads: summaries
            .iter()
            .enumerate()
            .map(|(thread, s)| ThreadDump {
                thread,
                ticks: s.ticks,
                last: s.last,
                done: s.done,
            })
            .collect(),
        lock_stats: sys.lock_stats(),
        lock_stats_per_shard: sys.lock_stats_per_shard(),
        seqlock_stats: sys.seqlock_stats(),
        arena_stats: sys.arena_stats(),
        transport_stats: sys.transport_stats(),
        group_stats: sys.group_stats(),
        nesting_stats: sys.nesting_stats(),
    });
    Ok((
        sys,
        ParallelOutcome {
            ticks: total_ticks.into_inner(),
            completed,
            watchdog,
        },
    ))
}

/// [`run_parallel`] with the machine's shared log resharded into
/// `shards` footprint shards first (see
/// [`TmSystem::set_log_shards`](pushpull_tm::driver::TmSystem::set_log_shards)).
///
/// Sharding changes only which lock a shared-log rule takes — commits,
/// audit ledgers and oracle verdicts are identical at every shard count
/// (the equivalence the `shard_equivalence` suite pins); what changes is
/// the contention profile, observable through
/// [`SystemStats::lock_contended`](pushpull_tm::driver::SystemStats).
///
/// # Errors
///
/// Exactly as [`run_parallel`].
pub fn run_parallel_sharded<T>(
    mut sys: T,
    max_ticks_per_thread: usize,
    plan: Option<&AnalysisPlan>,
    shards: usize,
) -> Result<(T, ParallelOutcome), ParallelError>
where
    T: ParallelSystem + Send,
{
    // Certificate before resharding: strict-mode `set_log_shards` demotes
    // an uncertified log to coarse routing, so a certified plan must be
    // on record before the shards are cut.
    if let Some(plan) = plan {
        if plan.certificate.is_some() {
            sys.install_certificate(plan.certificate.clone());
        }
    }
    sys.set_log_shards(shards);
    run_parallel(sys, max_ticks_per_thread, plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushpull_core::lang::Code;
    use pushpull_core::serializability::check_machine;
    use pushpull_spec::kvmap::{KvMap, MapMethod};
    use pushpull_tm::boosting::BoostingSystem;

    #[test]
    fn parallel_boosting_run_is_serializable() {
        for round in 0..5 {
            let programs: Vec<_> = (0..4u64)
                .map(|t| {
                    vec![
                        Code::seq_all(vec![
                            Code::method(MapMethod::Put(t, t as i64)),
                            Code::method(MapMethod::Get((t + 1) % 4)),
                        ]),
                        Code::method(MapMethod::Put(t + 10, 1)),
                    ]
                })
                .collect();
            let sys = BoostingSystem::new(KvMap::new(), programs);
            let (sys, outcome) = run_parallel(sys, 1_000_000, None).unwrap();
            assert!(outcome.completed, "round {round} incomplete");
            assert!(outcome.watchdog.is_none());
            assert_eq!(sys.stats().commits, 8, "round {round}");
            let report = check_machine(sys.machine());
            assert!(report.is_serializable(), "round {round}: {report}");
        }
    }

    #[test]
    fn parallel_optimistic_run_is_serializable() {
        use pushpull_spec::rwmem::{Loc, MemMethod, RwMem};
        use pushpull_tm::optimistic::{OptimisticSystem, ReadPolicy};
        for round in 0..5 {
            let programs: Vec<_> = (0..4u32)
                .map(|t| {
                    vec![Code::seq_all(vec![
                        Code::method(MemMethod::Read(Loc(t % 2))),
                        Code::method(MemMethod::Write(Loc(t % 2), i64::from(t))),
                    ])]
                })
                .collect();
            let sys = OptimisticSystem::new(RwMem::new(), programs, ReadPolicy::Snapshot);
            let (sys, outcome) = run_parallel(sys, 1_000_000, None).unwrap();
            assert!(outcome.completed, "round {round} incomplete");
            let report = check_machine(sys.machine());
            assert!(report.is_serializable(), "round {round}: {report}");
        }
    }

    /// A two-thread system whose second worker panics on its third tick.
    #[derive(Debug)]
    struct PanickySystem;

    impl pushpull_tm::driver::TmSystem for PanickySystem {
        fn tick(&mut self, _tid: pushpull_core::op::ThreadId) -> Result<Tick, MachineError> {
            Ok(Tick::Progress)
        }
        fn thread_count(&self) -> usize {
            2
        }
        fn is_done(&self) -> bool {
            false
        }
        fn name(&self) -> &'static str {
            "panicky"
        }
    }

    impl ParallelSystem for PanickySystem {
        fn workers(&mut self) -> Vec<pushpull_tm::driver::Worker<'_>> {
            let mut calls = 0u32;
            vec![
                Box::new(|| Ok(Tick::Progress)),
                Box::new(move || {
                    calls += 1;
                    if calls >= 3 {
                        panic!("injected worker panic");
                    }
                    Ok(Tick::Progress)
                }),
            ]
        }
    }

    #[test]
    fn worker_panic_surfaces_thread_and_tick() {
        let err = run_parallel(PanickySystem, 100_000, None).unwrap_err();
        match err {
            ParallelError::Panic {
                thread,
                ticks,
                ref message,
            } => {
                assert_eq!(thread, 1);
                assert_eq!(ticks, 2, "panicked on the third call");
                assert!(message.contains("injected worker panic"));
            }
            other => panic!("expected Panic, got {other:?}"),
        }
        let rendered = err.to_string();
        assert!(rendered.contains("thread 1"), "{rendered}");
    }

    #[test]
    fn tick_budget_exhaustion_produces_watchdog_dump() {
        // A genuinely contended workload with a 1-tick budget cannot
        // finish; the outcome must carry a per-thread dump.
        let programs: Vec<_> = (0..2u64)
            .map(|_| vec![Code::method(MapMethod::Put(0, 1))])
            .collect();
        let sys = BoostingSystem::new(KvMap::new(), programs);
        let (_, outcome) = run_parallel(sys, 1, None).unwrap();
        assert!(!outcome.completed);
        let dump = outcome.watchdog.expect("watchdog must trip");
        assert_eq!(dump.threads.len(), 2);
        let rendered = dump.to_string();
        assert!(rendered.contains("thread 0"), "{rendered}");
        assert!(rendered.contains("tick budget exhausted"), "{rendered}");
    }
}
