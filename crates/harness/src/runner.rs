//! Run a system to completion and collect the full evaluation report:
//! statistics, serializability verdict, opacity verdict.

use pushpull_core::error::MachineError;
use pushpull_core::machine::Machine;
use pushpull_core::opacity::{check_trace, OpacityVerdict};
use pushpull_core::serializability::{check_machine, SerializabilityReport};
use pushpull_core::spec::SeqSpec;
use pushpull_tm::driver::{SystemStats, TmSystem};

use crate::scheduler::{run, RandomSched, RunOutcome, Scheduler};

/// Everything a finished run tells us.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Scheduling outcome.
    pub outcome: RunOutcome,
    /// Commit/abort/blocked statistics.
    pub stats: SystemStats,
    /// Serializability oracle verdict.
    pub serializability: SerializabilityReport,
    /// Opacity fragment verdict.
    pub opacity: OpacityVerdict,
}

impl RunReport {
    /// Throughput proxy: committed transactions per tick.
    pub fn commits_per_tick(&self) -> f64 {
        if self.outcome.ticks == 0 {
            0.0
        } else {
            self.stats.commits as f64 / self.outcome.ticks as f64
        }
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<22} commits={:<5} aborts={:<5} blocked={:<5} ticks={:<7} abort-rate={:>5.1}% serializable={} opaque={}",
            self.algorithm,
            self.stats.commits,
            self.stats.aborts,
            self.stats.blocked_ticks,
            self.outcome.ticks,
            self.stats.abort_rate() * 100.0,
            self.serializability.is_serializable(),
            self.opacity.is_opaque(),
        )
    }
}

/// Runs `sys` under `sched` and produces the full report.
///
/// `stats` and `machine` accessors differ per system type, so callers
/// pass closures; see [`run_reported`] for the common case.
///
/// # Errors
///
/// Propagates unexpected machine errors.
pub fn run_with<T, S, Sp>(
    sys: &mut T,
    sched: &mut S,
    max_ticks: usize,
    stats: impl Fn(&T) -> SystemStats,
    machine: impl Fn(&T) -> &Machine<Sp>,
) -> Result<RunReport, MachineError>
where
    T: TmSystem,
    S: Scheduler,
    Sp: SeqSpec,
{
    let outcome = run(sys, sched, max_ticks)?;
    let m = machine(sys);
    Ok(RunReport {
        algorithm: sys.name(),
        outcome,
        stats: stats(sys),
        serializability: check_machine(m),
        opacity: check_trace(&m.trace()),
    })
}

/// Convenience macro-free wrapper: run under a seeded random scheduler.
///
/// # Errors
///
/// Propagates unexpected machine errors.
pub fn run_reported<T, Sp>(
    sys: &mut T,
    seed: u64,
    max_ticks: usize,
    stats: impl Fn(&T) -> SystemStats,
    machine: impl Fn(&T) -> &Machine<Sp>,
) -> Result<RunReport, MachineError>
where
    T: TmSystem,
    Sp: SeqSpec,
{
    run_with(sys, &mut RandomSched::new(seed), max_ticks, stats, machine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushpull_core::lang::Code;
    use pushpull_spec::kvmap::{KvMap, MapMethod};
    use pushpull_tm::boosting::BoostingSystem;

    #[test]
    fn report_carries_all_verdicts() {
        let mut sys = BoostingSystem::new(
            KvMap::new(),
            vec![
                vec![Code::method(MapMethod::Put(1, 1))],
                vec![Code::method(MapMethod::Put(2, 2))],
            ],
        );
        let report = run_reported(&mut sys, 7, 10_000, |s| s.stats(), |s| s.machine()).unwrap();
        assert!(report.outcome.completed);
        assert_eq!(report.stats.commits, 2);
        assert!(report.serializability.is_serializable());
        assert!(report.opacity.is_opaque());
        assert!(report.commits_per_tick() > 0.0);
        let line = report.to_string();
        assert!(line.contains("boosting"));
        assert!(line.contains("serializable=true"));
    }
}
