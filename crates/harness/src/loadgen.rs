//! Open- and closed-loop load generation for the service front-end —
//! the arrival models and latency-percentile recording behind B12.
//!
//! * **Closed loop**: a fixed population of in-flight sessions; a
//!   session that finishes is immediately replaced. Throughput is
//!   governed by service capacity (the classic saturation measurement).
//! * **Open loop**: sessions arrive on a fixed tick period regardless of
//!   how many are still in flight, so queueing delay is visible in the
//!   latency distribution instead of being absorbed by admission
//!   back-pressure.
//!
//! Latencies are recorded in *ticks* of the deterministic drive (or
//! nanoseconds, when the caller times wall-clock) and summarized by
//! nearest-rank percentiles over the sorted sample set — fully
//! deterministic for a deterministic drive, no interpolation.

/// When new sessions are admitted relative to completions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrival {
    /// Closed loop: keep exactly `concurrency` sessions in flight until
    /// the workload is exhausted.
    Closed {
        /// Target in-flight session count.
        concurrency: usize,
    },
    /// Open loop: admit one session every `period` ticks (period 0
    /// admits everything immediately), regardless of completions.
    Open {
        /// Ticks between arrivals.
        period: u64,
    },
}

impl Arrival {
    /// How many sessions may be admitted at tick `now`, given `started`
    /// already-admitted sessions and `in_flight` currently active ones.
    pub fn admittable(&self, now: u64, started: usize, in_flight: usize) -> usize {
        match *self {
            Arrival::Closed { concurrency } => concurrency.saturating_sub(in_flight),
            Arrival::Open { period } => {
                // `checked_div` is None for a period of 0: everything
                // is due at once.
                let due = now
                    .checked_div(period)
                    .map_or(usize::MAX, |q| q as usize + 1);
                due.saturating_sub(started)
            }
        }
    }
}

/// A latency sample set with nearest-rank percentile queries.
///
/// Samples are whatever unit the caller records (deterministic drive
/// ticks, or nanoseconds for wall-clock benches). Percentiles sort a
/// copy on demand; `record` itself is O(1).
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram {
    samples: Vec<u64>,
}

impl LatencyHistogram {
    /// An empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed-session latency.
    pub fn record(&mut self, latency: u64) {
        self.samples.push(latency);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Is the sample set empty?
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The nearest-rank percentile (`p` in 0..=100) of the recorded
    /// samples: the smallest sample such that at least `p`% of samples
    /// are ≤ it. Returns 0 on an empty set.
    pub fn percentile(&self, p: u64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        // Nearest rank: ceil(p/100 * n), clamped to [1, n].
        let rank = (p * n).div_ceil(100).clamp(1, n);
        sorted[(rank - 1) as usize]
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.percentile(50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99)
    }

    /// Maximum recorded sample (0 on empty).
    pub fn max(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// Arithmetic mean (0.0 on empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
    }
}

impl std::fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} p50={} p90={} p99={} max={}",
            self.len(),
            self.p50(),
            self.p90(),
            self.p99(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let mut h = LatencyHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.p50(), 50);
        assert_eq!(h.p90(), 90);
        assert_eq!(h.p99(), 99);
        assert_eq!(h.percentile(100), 100);
        assert_eq!(h.percentile(1), 1);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_small_and_empty() {
        let empty = LatencyHistogram::new();
        assert_eq!(empty.p99(), 0);
        assert!(empty.is_empty());
        let mut one = LatencyHistogram::new();
        one.record(7);
        assert_eq!(one.p50(), 7);
        assert_eq!(one.p99(), 7);
    }

    #[test]
    fn closed_loop_admission_tops_up() {
        let a = Arrival::Closed { concurrency: 4 };
        assert_eq!(a.admittable(0, 0, 0), 4);
        assert_eq!(a.admittable(10, 4, 4), 0);
        assert_eq!(a.admittable(10, 7, 1), 3);
    }

    #[test]
    fn open_loop_admission_follows_the_clock() {
        let a = Arrival::Open { period: 10 };
        // One due immediately, another every 10 ticks, regardless of
        // how many are still in flight.
        assert_eq!(a.admittable(0, 0, 99), 1);
        assert_eq!(a.admittable(9, 1, 99), 0);
        assert_eq!(a.admittable(10, 1, 99), 1);
        assert_eq!(a.admittable(35, 1, 0), 3);
    }
}
