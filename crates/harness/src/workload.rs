//! Random workload generators for the benchmark experiments.
//!
//! Workloads are seeded and deterministic: the same [`WorkloadSpec`]
//! always yields the same programs, so benchmark comparisons across
//! algorithms run identical transaction mixes.

use pushpull_core::lang::Code;
use pushpull_core::rng::Xorshift64;
use pushpull_spec::bank::BankMethod;
use pushpull_spec::counter::CtrMethod;
use pushpull_spec::kvmap::MapMethod;
use pushpull_spec::rwmem::{Loc, MemMethod};

/// Parameters of a generated workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Number of threads.
    pub threads: usize,
    /// Transactions per thread.
    pub txns_per_thread: usize,
    /// Operations per transaction.
    pub ops_per_txn: usize,
    /// Keys/locations/accounts are drawn from `0..key_range`.
    pub key_range: u64,
    /// Fraction of operations that are reads, in `\[0, 1\]`.
    pub read_ratio: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        Self {
            threads: 4,
            txns_per_thread: 8,
            ops_per_txn: 4,
            key_range: 16,
            read_ratio: 0.5,
            seed: 0xC0FFEE,
        }
    }
}

impl WorkloadSpec {
    fn rng(&self) -> Xorshift64 {
        Xorshift64::new(self.seed)
    }

    fn gen_programs<M: Clone>(
        &self,
        mut op: impl FnMut(&mut Xorshift64) -> M,
    ) -> Vec<Vec<Code<M>>> {
        let mut rng = self.rng();
        (0..self.threads)
            .map(|_| {
                (0..self.txns_per_thread)
                    .map(|_| {
                        Code::seq_all((0..self.ops_per_txn).map(|_| Code::method(op(&mut rng))))
                    })
                    .collect()
            })
            .collect()
    }

    /// Key-value map workload: reads are `Get`, writes are `Put`.
    pub fn kvmap_programs(&self) -> Vec<Vec<Code<MapMethod>>> {
        let range = self.key_range;
        let reads = self.read_ratio;
        self.gen_programs(move |rng| {
            let k = rng.gen_range(0..range);
            if rng.gen_bool(reads) {
                MapMethod::Get(k)
            } else {
                MapMethod::Put(k, rng.gen_range(0..1000) as i64)
            }
        })
    }

    /// Read/write memory workload over `key_range` locations.
    pub fn rwmem_programs(&self) -> Vec<Vec<Code<MemMethod>>> {
        let range = self.key_range;
        let reads = self.read_ratio;
        self.gen_programs(move |rng| {
            let l = Loc(rng.gen_range(0..range) as u32);
            if rng.gen_bool(reads) {
                MemMethod::Read(l)
            } else {
                MemMethod::Write(l, rng.gen_range(0..1000) as i64)
            }
        })
    }

    /// Counter workload: reads are `Get`, writes are `Add(1)`.
    pub fn counter_programs(&self) -> Vec<Vec<Code<CtrMethod>>> {
        let reads = self.read_ratio;
        self.gen_programs(move |rng| {
            if rng.gen_bool(reads) {
                CtrMethod::Get
            } else {
                CtrMethod::Add(1)
            }
        })
    }

    /// Bank workload: reads are `Balance`, writes alternate
    /// `Deposit`/`Withdraw`.
    pub fn bank_programs(&self) -> Vec<Vec<Code<BankMethod>>> {
        let range = self.key_range;
        let reads = self.read_ratio;
        self.gen_programs(move |rng| {
            let a = rng.gen_range(0..range) as u32;
            if rng.gen_bool(reads) {
                BankMethod::Balance(a)
            } else if rng.gen_bool(0.7) {
                BankMethod::Deposit(a, rng.gen_range(1..50) as i64)
            } else {
                BankMethod::Withdraw(a, rng.gen_range(1..50) as i64)
            }
        })
    }

    /// Randomly *structured* programs over the full grammar — sequences,
    /// nondeterministic choices `+`, and bounded-depth loops `(c)*` — so
    /// drivers exercise `step`/`fin` on genuinely nondeterministic code,
    /// not just straight-line sequences. `depth` bounds the grammar
    /// nesting.
    pub fn structured_counter_programs(&self, depth: usize) -> Vec<Vec<Code<CtrMethod>>> {
        let mut rng = self.rng();
        (0..self.threads)
            .map(|_| {
                (0..self.txns_per_thread)
                    .map(|_| gen_structured(&mut rng, depth, self.read_ratio))
                    .collect()
            })
            .collect()
    }

    /// A map workload where each thread works a *disjoint* key slice —
    /// the fully-commutative regime where boosting shines.
    pub fn kvmap_disjoint_programs(&self) -> Vec<Vec<Code<MapMethod>>> {
        let mut rng = self.rng();
        let per = (self.key_range / self.threads as u64).max(1);
        (0..self.threads)
            .map(|t| {
                let lo = t as u64 * per;
                (0..self.txns_per_thread)
                    .map(|_| {
                        Code::seq_all((0..self.ops_per_txn).map(|_| {
                            let k = lo + rng.gen_range(0..per);
                            if rng.gen_bool(self.read_ratio) {
                                Code::method(MapMethod::Get(k))
                            } else {
                                Code::method(MapMethod::Put(k, rng.gen_range(0..1000) as i64))
                            }
                        }))
                    })
                    .collect()
            })
            .collect()
    }
}

fn gen_structured(rng: &mut Xorshift64, depth: usize, read_ratio: f64) -> Code<CtrMethod> {
    let leaf = |rng: &mut Xorshift64| {
        if rng.gen_bool(read_ratio) {
            Code::method(CtrMethod::Get)
        } else {
            Code::method(CtrMethod::Add(rng.gen_range(1..4) as i64))
        }
    };
    if depth == 0 {
        return leaf(rng);
    }
    match rng.gen_range(0..4) {
        0 => leaf(rng),
        1 => Code::seq(
            gen_structured(rng, depth - 1, read_ratio),
            gen_structured(rng, depth - 1, read_ratio),
        ),
        2 => Code::choice(
            gen_structured(rng, depth - 1, read_ratio),
            gen_structured(rng, depth - 1, read_ratio),
        ),
        _ => Code::star(gen_structured(rng, depth - 1, read_ratio)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic_per_seed() {
        let spec = WorkloadSpec::default();
        assert_eq!(spec.kvmap_programs(), spec.kvmap_programs());
        assert_eq!(spec.rwmem_programs(), spec.rwmem_programs());
    }

    #[test]
    fn shape_matches_spec() {
        let spec = WorkloadSpec {
            threads: 3,
            txns_per_thread: 5,
            ops_per_txn: 2,
            ..Default::default()
        };
        let progs = spec.kvmap_programs();
        assert_eq!(progs.len(), 3);
        assert!(progs.iter().all(|p| p.len() == 5));
        // Each transaction body contains exactly 2 methods.
        for p in &progs {
            for c in p {
                assert!(c.reachable_methods().len() <= 2);
                assert!(c.size() >= 2);
            }
        }
    }

    #[test]
    fn read_ratio_zero_generates_no_reads() {
        let spec = WorkloadSpec {
            read_ratio: 0.0,
            ..Default::default()
        };
        for p in spec.kvmap_programs() {
            for c in p {
                assert!(c
                    .reachable_methods()
                    .iter()
                    .all(|m| matches!(m, MapMethod::Put(_, _))));
            }
        }
    }

    #[test]
    fn disjoint_programs_partition_keys() {
        let spec = WorkloadSpec {
            threads: 4,
            key_range: 16,
            ..Default::default()
        };
        let progs = spec.kvmap_disjoint_programs();
        for (t, p) in progs.iter().enumerate() {
            let lo = t as u64 * 4;
            for c in p {
                for m in c.reachable_methods() {
                    let k = m.key().unwrap();
                    assert!(k >= lo && k < lo + 4, "thread {t} leaked key {k}");
                }
            }
        }
    }
}
