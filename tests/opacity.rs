//! E3 / §6.1: opacity as a fragment of PUSH/PULL.
//!
//! * Algorithms that never PULL uncommitted effects (optimistic,
//!   pessimistic, boosting, HTM) produce opaque runs — checked over all
//!   interleavings of small configurations.
//! * Dependent transactions with early release are NOT opaque — and the
//!   checker pinpoints the offending pull.
//! * The commutativity refinement admits uncommitted pulls whose puller
//!   can only perform commuting methods.

use pushpull::core::lang::Code;
use pushpull::core::opacity::{check_trace, check_trace_refined, OpacityVerdict};
use pushpull::core::serializability::check_machine;
use pushpull::core::spec::commute;
use pushpull::core::{Machine, Op, OpId, TxnId};
use pushpull::harness::{explore, run, ExploreLimits, RandomSched};
use pushpull::spec::counter::{Counter, CtrMethod, CtrRet};
use pushpull::spec::kvmap::{KvMap, MapMethod};
use pushpull::tm::dependent::DependentSystem;
use pushpull::tm::optimistic::{OptimisticSystem, ReadPolicy};
use pushpull::tm::{BoostingSystem, TmSystem};

#[test]
fn optimistic_is_opaque_over_all_interleavings() {
    let prog = || {
        vec![Code::seq_all(vec![
            Code::method(CtrMethod::Get),
            Code::method(CtrMethod::Add(1)),
        ])]
    };
    let sys = OptimisticSystem::new(Counter::new(), vec![prog(), prog()], ReadPolicy::Snapshot);
    let report = explore(
        &sys,
        ExploreLimits {
            max_depth: 40,
            max_terminals: 4_000,
        },
        &mut |s| {
            check_trace(&s.machine().trace()).is_opaque()
                && check_machine(s.machine()).is_serializable()
        },
    )
    .unwrap();
    assert!(report.terminals > 1);
    assert!(report.all_ok(), "{report:?}");
}

#[test]
fn boosting_is_opaque_over_all_interleavings() {
    let sys = BoostingSystem::new(
        KvMap::new(),
        vec![
            vec![Code::method(MapMethod::Put(1, 1))],
            vec![Code::method(MapMethod::Get(1))],
        ],
    );
    let report = explore(
        &sys,
        ExploreLimits {
            max_depth: 40,
            max_terminals: 4_000,
        },
        &mut |s| check_trace(&s.machine().trace()).is_opaque(),
    )
    .unwrap();
    assert!(report.all_ok(), "{report:?}");
}

#[test]
fn dependent_with_early_release_is_not_opaque() {
    let mut sys = DependentSystem::new(
        Counter::new(),
        vec![
            vec![Code::method(CtrMethod::Add(1))],
            vec![Code::method(CtrMethod::Get)],
        ],
        true,
    );
    // Steer into the dependency: T0 releases early, T1 pulls.
    use pushpull::core::op::ThreadId;
    sys.tick(ThreadId(0)).unwrap();
    sys.tick(ThreadId(0)).unwrap();
    sys.tick(ThreadId(1)).unwrap();
    run(&mut sys, &mut RandomSched::new(5), 100_000).unwrap();
    match check_trace(&sys.machine().trace()) {
        OpacityVerdict::NotOpaque { violations } => assert!(!violations.is_empty()),
        other => panic!("expected NotOpaque, got {other:?}"),
    }
    // …and yet serializable: the whole point of the §6.5 fragment.
    assert!(check_machine(sys.machine()).is_serializable());
}

/// §6.1's refinement: "an active transaction T may PULL an operation m′
/// of an uncommitted T′ provided T will never execute a method that does
/// not commute with m′."
#[test]
fn commutativity_refinement_classifies_pullers() {
    let spec = Counter::with_universe(8);

    // Build a trace where the puller's remainder is add-only (commutes).
    let mut m = Machine::new(spec);
    let a = m.add_thread(vec![Code::method(CtrMethod::Add(1))]);
    let b = m.add_thread(vec![Code::method(CtrMethod::Add(2))]);
    let ia = m.app_auto(a).unwrap();
    m.push(a, ia).unwrap();
    m.pull(b, ia).unwrap();

    // Oracle for "an invocation of `method` commutes with the pulled op":
    // quantify over the rets the method could produce.
    let commutes = |method: &CtrMethod, _id: OpId, _pulled: &CtrMethod| -> bool {
        let spec = Counter::with_universe(8);
        let pulled_op = Op::new(OpId(900), TxnId(0), CtrMethod::Add(1), CtrRet::Ack);
        let rets: Vec<CtrRet> = match method {
            CtrMethod::Add(_) => vec![CtrRet::Ack],
            CtrMethod::Get => (-8..=8).map(CtrRet::Val).collect(),
        };
        rets.iter().all(|r| {
            let op = Op::new(OpId(901), TxnId(1), *method, *r);
            commute(&spec, &op, &pulled_op)
        })
    };
    assert_eq!(
        check_trace_refined(&m.trace(), commutes),
        OpacityVerdict::OpaqueByCommutativity
    );

    // Now a puller whose remainder contains a Get: refinement refuses.
    let mut m = Machine::new(Counter::with_universe(8));
    let a = m.add_thread(vec![Code::method(CtrMethod::Add(1))]);
    let b = m.add_thread(vec![Code::method(CtrMethod::Get)]);
    let ia = m.app_auto(a).unwrap();
    m.push(a, ia).unwrap();
    m.pull(b, ia).unwrap();
    assert!(!check_trace_refined(&m.trace(), commutes).is_opaque());
}

/// The same refinement, driven by the generic oracle of
/// `pushpull_spec::refinement` instead of a hand-written closure.
#[test]
fn refinement_oracle_classifies_pullers_generically() {
    use pushpull::spec::refinement::RefinementOracle;

    let spec = Counter::with_universe(8);
    let mut m = Machine::new(spec);
    let a = m.add_thread(vec![Code::method(CtrMethod::Add(1))]);
    let b = m.add_thread(vec![Code::method(CtrMethod::Add(2))]);
    let ia = m.app_auto(a).unwrap();
    m.push(a, ia).unwrap();
    m.pull(b, ia).unwrap();

    let pulled_op = m.global().entry(ia).unwrap().op.clone();
    let spec2 = Counter::with_universe(8);
    let oracle = RefinementOracle::new(&spec2);
    let verdict = check_trace_refined(&m.trace(), |method, _, _| oracle.judge(method, &pulled_op));
    assert_eq!(verdict, OpacityVerdict::OpaqueByCommutativity);

    // A Get-remainder puller is rejected by the same oracle.
    let mut m = Machine::new(Counter::with_universe(8));
    let a = m.add_thread(vec![Code::method(CtrMethod::Add(1))]);
    let b = m.add_thread(vec![Code::method(CtrMethod::Get)]);
    let ia = m.app_auto(a).unwrap();
    m.push(a, ia).unwrap();
    m.pull(b, ia).unwrap();
    let pulled_op = m.global().entry(ia).unwrap().op.clone();
    let verdict = check_trace_refined(&m.trace(), |method, _, _| oracle.judge(method, &pulled_op));
    assert!(!verdict.is_opaque());
}

/// Opacity is about *observations*: the machine's APP/PULL criteria force
/// every local log prefix to be allowed, so no checked run ever contains
/// an inconsistent observer.
#[test]
fn checked_runs_never_observe_inconsistent_state() {
    for seed in 1..10u64 {
        let prog = || {
            vec![Code::seq_all(vec![
                Code::method(CtrMethod::Get),
                Code::method(CtrMethod::Add(1)),
                Code::method(CtrMethod::Get),
            ])]
        };
        let mut sys = OptimisticSystem::new(
            Counter::new(),
            vec![prog(), prog(), prog()],
            ReadPolicy::Refresh,
        );
        run(&mut sys, &mut RandomSched::new(seed), 200_000).unwrap();
        let bad = pushpull::core::opacity::inconsistent_observers(
            sys.machine().spec(),
            &sys.machine().trace(),
        );
        assert!(
            bad.is_empty(),
            "seed {seed}: inconsistent observers {bad:?}"
        );
    }
}
