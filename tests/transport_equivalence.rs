//! Local-vs-channel transport golden equivalence, plus the degradation
//! lifecycle.
//!
//! The transport seam's core claim: moving every shared-log PUSH/UNPUSH
//! critical section from the caller's thread (local transport) to a
//! dedicated per-shard server thread (channel transport) changes *where*
//! the section runs, never what it decides. Every §6/§7 driver runs the
//! same workload under the deterministic round-robin scheduler on both
//! transports at shard counts 1, 4 and 16; each pair of runs must
//! produce bit-identical committed-transaction sequences (ids, threads,
//! ops and pull stamps), bit-identical traces, and identical audit
//! ledgers.
//!
//! The lifecycle tests then pin the robustness envelope itself on a
//! persistent partition with *exact* counter deltas:
//! partition → bounded retries → coarse degradation → heal → probe
//! recovery → fast path, and, under [`FallbackMode::Fail`], a clean
//! [`MachineError::TransportExhausted`] instead of a hang.

use std::sync::Arc;
use std::time::Duration;

use pushpull::core::error::MachineError;
use pushpull::core::faults::{FaultHook, FaultKind};
use pushpull::core::lang::Code;
use pushpull::core::machine::Machine;
use pushpull::core::op::ThreadId;
use pushpull::core::serializability::check_machine;
use pushpull::core::spec::SeqSpec;
use pushpull::core::{FallbackMode, SeededBackoff, TransportConfig};
use pushpull::harness::testutil::{assert_injection_accounted, assert_ledger_matches};
use pushpull::harness::{run, FaultPlan, RoundRobin};
use pushpull::spec::counter::{Counter, CtrMethod};
use pushpull::spec::kvmap::{KvMap, MapMethod};
use pushpull::spec::rwmem::{Loc, MemMethod, RwMem};
use pushpull::spec::set::SetMethod;
use pushpull::tm::mixed::{methods, mixed_spec};
use pushpull::tm::optimistic::ReadPolicy;
use pushpull::tm::{
    BoostingSystem, CheckpointOptimistic, CmBackoff, DependentSystem, ExponentialBackoff,
    HtmSystem, IrrevocableSystem, MatveevShavitSystem, MixedSystem, OptimisticSystem, Tl2System,
    TmSystem, TwoPhaseLocking,
};

const BUDGET: usize = 2_000_000;

/// Shard counts the equivalence is quantified over.
const SHARD_COUNTS: [usize; 3] = [1, 4, 16];

/// One run on the chosen transport: reshard, install the transport,
/// drive to completion round-robin, snapshot everything the claim
/// quantifies over (committed txns with their ops and stamps, the
/// rendered trace, the audit ledger).
fn golden<T, Sp>(
    label: &str,
    mut sys: T,
    shards: usize,
    channel: bool,
    machine: impl Fn(&T) -> &Machine<Sp>,
) -> (String, String, pushpull::core::audit::CriteriaAudit)
where
    T: TmSystem,
    Sp: SeqSpec + Send + Sync + 'static,
    Sp::Method: std::fmt::Display + Send + Sync + 'static,
    Sp::Ret: Send + Sync + 'static,
    Sp::State: Send + Sync + 'static,
{
    sys.set_log_shards(shards);
    // Install after resharding: resharding rebuilds the shard layout and
    // detaches any installed transport.
    if channel {
        machine(&sys).set_channel_transport(TransportConfig::default());
    } else {
        machine(&sys).set_local_transport();
    }
    let which = if channel { "channel" } else { "local" };
    let out = run(&mut sys, &mut RoundRobin, BUDGET)
        .unwrap_or_else(|e| panic!("{label}@{shards}/{which}: machine error: {e}"));
    assert!(out.completed, "{label}@{shards}/{which}: wedged");
    let m = machine(&sys);
    let t = m.transport_stats();
    assert!(
        t.requests > 0,
        "{label}@{shards}/{which}: no PUSH/UNPUSH ever crossed the transport"
    );
    assert_eq!(
        t.degradations, 0,
        "{label}@{shards}/{which}: fault-free run must never degrade"
    );
    let report = check_machine(m);
    assert!(
        report.is_serializable(),
        "{label}@{shards}/{which}: {report}"
    );
    (
        format!("{:?}", m.committed_txns()),
        m.trace().render(),
        m.audit(),
    )
}

/// Runs `make()`'s system on both transports at every shard count and
/// asserts the channel run is bit-identical to the local one.
fn assert_transport_equivalence<T, Sp>(
    label: &str,
    make: impl Fn() -> T,
    machine: impl Fn(&T) -> &Machine<Sp> + Copy,
) where
    T: TmSystem,
    Sp: SeqSpec + Send + Sync + 'static,
    Sp::Method: std::fmt::Display + Send + Sync + 'static,
    Sp::Ret: Send + Sync + 'static,
    Sp::State: Send + Sync + 'static,
{
    for shards in SHARD_COUNTS {
        let (local_commits, local_trace, local_audit) =
            golden(label, make(), shards, false, machine);
        let (chan_commits, chan_trace, chan_audit) = golden(label, make(), shards, true, machine);
        assert_eq!(
            chan_commits, local_commits,
            "{label}@{shards}: committed transactions diverge"
        );
        assert_eq!(
            chan_trace, local_trace,
            "{label}@{shards}: traces diverge — the transport changed a verdict"
        );
        assert_ledger_matches(&chan_audit, &local_audit);
    }
}

fn rmw(l: u32, v: i64) -> Vec<Code<MemMethod>> {
    vec![Code::seq_all(vec![
        Code::method(MemMethod::Read(Loc(l))),
        Code::method(MemMethod::Write(Loc(l), v)),
    ])]
}

#[test]
fn boosting_transport_equivalent() {
    let programs = || {
        (0..8u64)
            .map(|t| {
                vec![Code::seq_all(vec![
                    Code::method(MapMethod::Put(t % 4, t as i64)),
                    Code::method(MapMethod::Get((t + 1) % 4)),
                ])]
            })
            .collect::<Vec<_>>()
    };
    assert_transport_equivalence(
        "boosting/kvmap",
        || BoostingSystem::new(KvMap::new(), programs()),
        |s| s.machine(),
    );
}

#[test]
fn optimistic_transport_equivalent() {
    let programs = || {
        (0..6u32)
            .map(|t| {
                vec![Code::seq_all(vec![
                    Code::method(MemMethod::Read(Loc(t % 2))),
                    Code::method(MemMethod::Write(Loc(t % 2), i64::from(t))),
                ])]
            })
            .collect::<Vec<_>>()
    };
    assert_transport_equivalence(
        "optimistic/rwmem",
        || OptimisticSystem::new(RwMem::new(), programs(), ReadPolicy::Snapshot),
        |s| s.machine(),
    );
}

#[test]
fn pessimistic_transport_equivalent() {
    let prog = |v: i64| vec![Code::method(MemMethod::Write(Loc(0), v))];
    assert_transport_equivalence(
        "pessimistic/rwmem",
        || MatveevShavitSystem::new(RwMem::new(), vec![prog(1), prog(2), prog(3), prog(4)]),
        |s| s.machine(),
    );
}

#[test]
fn tl2_transport_equivalent() {
    assert_transport_equivalence(
        "tl2/rwmem",
        || Tl2System::new(vec![rmw(0, 1), rmw(1, 2), rmw(0, 3), rmw(1, 4)]),
        |s| s.machine(),
    );
}

#[test]
fn twophase_transport_equivalent() {
    let read0 = || vec![Code::method(MemMethod::Read(Loc(0)))];
    assert_transport_equivalence(
        "2pl/rwmem",
        || TwoPhaseLocking::new(vec![read0(), read0(), rmw(1, 7), rmw(1, 8)]),
        |s| s.machine(),
    );
}

#[test]
fn htm_transport_equivalent() {
    assert_transport_equivalence(
        "htm/rwmem",
        || HtmSystem::new(vec![rmw(0, 1), rmw(1, 2), rmw(0, 3), rmw(2, 4)]),
        |s| s.machine(),
    );
}

#[test]
fn irrevocable_transport_equivalent() {
    assert_transport_equivalence(
        "irrevocable/rwmem",
        || {
            IrrevocableSystem::new(
                RwMem::new(),
                vec![rmw(0, 10), rmw(0, 20), rmw(1, 30), rmw(0, 40)],
                ThreadId(0),
            )
        },
        |s| s.machine(),
    );
}

#[test]
fn checkpoint_transport_equivalent() {
    let prog = |l: u32, v: i64| {
        vec![Code::seq_all(vec![
            Code::method(MemMethod::Read(Loc(l))),
            Code::method(MemMethod::Read(Loc(l + 1))),
            Code::method(MemMethod::Write(Loc(l), v)),
        ])]
    };
    assert_transport_equivalence(
        "checkpoint/rwmem",
        || {
            CheckpointOptimistic::new(
                RwMem::new(),
                vec![prog(0, 1), prog(0, 2), prog(1, 3), prog(1, 4)],
            )
        },
        |s| s.machine(),
    );
}

#[test]
fn dependent_transport_equivalent() {
    let programs = || {
        (0..4i64)
            .map(|t| {
                vec![Code::seq_all(vec![
                    Code::method(CtrMethod::Add(t + 1)),
                    Code::method(CtrMethod::Get),
                ])]
            })
            .collect::<Vec<_>>()
    };
    assert_transport_equivalence(
        "dependent/counter",
        || DependentSystem::new(Counter::new(), programs(), true),
        |s| s.machine(),
    );
}

#[test]
fn mixed_transport_equivalent() {
    let programs = || {
        (0..4u64)
            .map(|t| {
                vec![Code::seq_all(vec![
                    Code::method(methods::skiplist(SetMethod::Add(t))),
                    Code::method(methods::size(CtrMethod::Add(1))),
                    Code::method(methods::hash_table(MapMethod::Put(t, t as i64))),
                    Code::method(methods::mem(MemMethod::Write(Loc((t % 2) as u32), 1))),
                ])]
            })
            .collect::<Vec<_>>()
    };
    assert_transport_equivalence(
        "mixed/product",
        || MixedSystem::new(mixed_spec(), programs()),
        |s| s.machine(),
    );
}

/// The full degradation lifecycle on one machine, with *exact* counter
/// deltas (`max_retries = 2`, one thread, four pushes):
///
/// 1. push A under a persistent partition — 3 failed delivery attempts
///    (1 initial + 2 retries), then coarse degradation:
///    requests 1, retries 2, timeouts 3, degradations 1;
/// 2. push B while degraded — one failed probe, coarse path:
///    requests 2, timeouts 4;
/// 3. heal; push C — successful probe (recovery) then a clean delivery:
///    requests 4, recoveries 1;
/// 4. push D — fast path, single request: requests 5.
///
/// The backoff pacing the retries is a tm-layer contention policy
/// bridged through [`CmBackoff`], closing the "one tuned policy drives
/// both abort and transport waiting" loop.
#[test]
fn partition_degrade_heal_recover_lifecycle() {
    let mut m: Machine<KvMap> = Machine::new(KvMap::new());
    let t = m.add_thread(vec![Code::seq_all(vec![
        Code::method(MapMethod::Put(0, 10)),
        Code::method(MapMethod::Put(1, 20)),
        Code::method(MapMethod::Put(2, 30)),
        Code::method(MapMethod::Put(3, 40)),
    ])]);
    m.set_channel_transport(TransportConfig {
        max_retries: 2,
        deadline: Duration::from_secs(5),
        fallback: FallbackMode::Coarse,
        backoff: Arc::new(CmBackoff::new(Arc::new(ExponentialBackoff::new(7)))),
    });
    let plan = Arc::new(FaultPlan::new(1));
    m.set_fault_hook(Some(plan.clone() as Arc<dyn FaultHook>));

    // 1. Persistent partition: the envelope exhausts its budget and
    //    degrades to the coarse path (the op still lands in the log).
    plan.partition_shard(0);
    let a = m.app_auto(t).unwrap();
    m.push(t, a).unwrap();
    let s = m.transport_stats();
    assert_eq!(
        (
            s.requests,
            s.retries,
            s.timeouts,
            s.degradations,
            s.recoveries
        ),
        (1, 2, 3, 1, 0),
        "push under partition: 1 call, 2 retries, 3 missed deadlines, 1 degradation"
    );
    assert_eq!(m.global().len(), 1, "the degraded push still appended");

    // 2. Still partitioned: a degraded shard is probed first; the probe
    //    fails and the coarse path carries the op.
    let b = m.app_auto(t).unwrap();
    m.push(t, b).unwrap();
    let s = m.transport_stats();
    assert_eq!(
        (
            s.requests,
            s.retries,
            s.timeouts,
            s.degradations,
            s.recoveries
        ),
        (2, 2, 4, 1, 0),
        "degraded push: 1 failed probe, no new degradation transition"
    );

    // 3. Heal: the next operation's probe succeeds, the shard recovers,
    //    and the call itself is delivered first try.
    plan.heal_shard(0);
    let c = m.app_auto(t).unwrap();
    m.push(t, c).unwrap();
    let s = m.transport_stats();
    assert_eq!(
        (
            s.requests,
            s.retries,
            s.timeouts,
            s.degradations,
            s.recoveries
        ),
        (4, 2, 4, 1, 1),
        "healed push: successful probe (recovery) + clean delivery"
    );

    // 4. Fully recovered: back to one request per push, nothing else.
    let d = m.app_auto(t).unwrap();
    m.push(t, d).unwrap();
    let s = m.transport_stats();
    assert_eq!(
        (
            s.requests,
            s.retries,
            s.timeouts,
            s.degradations,
            s.recoveries
        ),
        (5, 2, 4, 1, 1),
        "recovered push: fast path again"
    );

    m.commit(t).unwrap();
    assert_eq!(m.committed_txns().len(), 1);
    assert_eq!(m.global().len(), 4, "all four ops in the log exactly once");

    // Exact audit accounting: 3 call attempts + 1 probe consult fired
    // under the partition, every one recorded as injected.
    assert_eq!(plan.fired()[&FaultKind::PartitionShard], 4);
    assert_injection_accounted(&m.audit(), &plan.fired());
    assert!(check_machine(&m).is_serializable());
}

/// Under [`FallbackMode::Fail`] a persistent partition surfaces as a
/// clean per-thread [`MachineError::TransportExhausted`] — never a hang —
/// and the machine stays usable: after the partition heals the same
/// operation pushes and commits on the fast path.
#[test]
fn persistent_partition_fails_clean_without_coarse_fallback() {
    let mut m: Machine<KvMap> = Machine::new(KvMap::new());
    let t = m.add_thread(vec![Code::method(MapMethod::Put(0, 1))]);
    m.set_channel_transport(TransportConfig {
        max_retries: 1,
        deadline: Duration::from_secs(5),
        fallback: FallbackMode::Fail,
        backoff: Arc::new(SeededBackoff::new(3)),
    });
    let plan = Arc::new(FaultPlan::new(1).partition(0));
    m.set_fault_hook(Some(plan.clone() as Arc<dyn FaultHook>));

    let op = m.app_auto(t).unwrap();
    match m.push(t, op) {
        Err(MachineError::TransportExhausted { thread, shard }) => {
            assert_eq!(thread, t);
            assert_eq!(shard, 0);
        }
        other => panic!("expected TransportExhausted, got {other:?}"),
    }
    let s = m.transport_stats();
    assert_eq!(
        (s.requests, s.retries, s.timeouts, s.degradations),
        (1, 1, 2, 0),
        "fail mode: budget spent, no degradation"
    );
    assert_eq!(m.global().len(), 0, "the failed push appended nothing");

    // Healing makes the same operation succeed — the error was transient
    // and the machine state is intact.
    plan.heal_shard(0);
    m.push(t, op).unwrap();
    m.commit(t).unwrap();
    assert_eq!(m.committed_txns().len(), 1);
    assert_injection_accounted(&m.audit(), &plan.fired());
}
