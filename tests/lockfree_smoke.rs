//! Lock-free hot-path smoke: the observability counters must *prove*
//! the seqlock fast path is what DESIGN.md §10 claims it is.
//!
//! The tentpole property: a **read-only criteria check on a declared
//! disjoint footprint takes zero shard-lock acquisitions** — it runs
//! entirely against the shard's published [`SnapCell`] snapshot. The
//! optimistic PUSH itself still takes exactly one lock (the append must
//! serialize), but its criteria window runs lock-free. And the fallback
//! ladder must stay honest: sticky-coarse mode (an op with no declared
//! footprint at shard count > 1) disables the fast path without
//! changing any verdict.
//!
//! Everything here is single-threaded and deterministic, so the lock
//! and seqlock counters have exact expected values rather than bounds.
//!
//! [`SnapCell`]: pushpull::core::snapcell::SnapCell

use pushpull::core::lang::Code;
use pushpull::core::machine::Machine;
use pushpull::core::toy::{CounterMethod, ToyCounter};
use pushpull::spec::kvmap::{KvMap, MapMethod};
use pushpull::spec::rwmem::{Loc, MemMethod, RwMem};

/// A 4-shard memory machine with one committed write on `Loc(0)`
/// (shard 0) by thread A, and thread B holding an un-pushed op on
/// `Loc(1)` (shard 1) — the disjoint-footprint configuration.
fn disjoint_setup(b_method: MemMethod) -> (Machine<RwMem>, pushpull::core::op::OpId) {
    let mut m = Machine::new(RwMem::new());
    let ta = m.add_thread(vec![Code::method(MemMethod::Write(Loc(0), 7))]);
    let tb = m.add_thread(vec![Code::method(b_method)]);
    m.set_log_shards(4);
    let w = m.app_auto(ta).expect("app A");
    m.push(ta, w).expect("push A");
    m.commit(ta).expect("commit A");
    let op = m.app_auto(tb).expect("app B");
    (m, op)
}

const TB: pushpull::core::op::ThreadId = pushpull::core::op::ThreadId(1);

#[test]
fn readonly_disjoint_check_takes_zero_locks() {
    let (m, op) = disjoint_setup(MemMethod::Read(Loc(1)));

    let (acq_before, _) = m.lock_stats();
    let (reads_before, _, fb_before) = m.seqlock_stats();
    let audit_before = m.audit();
    for _ in 0..100 {
        assert!(
            m.can_push(TB, op).expect("well-formed op"),
            "disjoint read is pushable"
        );
    }
    let (acq_after, _) = m.lock_stats();
    let (reads_after, _, fb_after) = m.seqlock_stats();

    assert_eq!(
        acq_after, acq_before,
        "read-only disjoint criteria checks must take zero shard locks"
    );
    assert_eq!(
        reads_after,
        reads_before + 100,
        "every check must be served by the snapshot"
    );
    assert_eq!(fb_after, fb_before, "no check may fall back to the mutex");
    assert_eq!(
        m.audit(),
        audit_before,
        "can_push is unaudited — it must not move the criteria ledger"
    );
}

#[test]
fn disjoint_push_locks_only_for_the_append() {
    let (mut m, op) = disjoint_setup(MemMethod::Write(Loc(1), 9));

    let (acq_before, _) = m.lock_stats();
    let (reads_before, _, fb_before) = m.seqlock_stats();
    m.push(TB, op).expect("push B");
    let (acq_after, _) = m.lock_stats();
    let (reads_after, _, fb_after) = m.seqlock_stats();

    assert_eq!(
        acq_after,
        acq_before + 1,
        "optimistic PUSH takes exactly one lock: the append itself"
    );
    assert_eq!(
        reads_after,
        reads_before + 1,
        "the criteria window ran against the snapshot"
    );
    assert_eq!(
        fb_after, fb_before,
        "a fresh single-threaded snapshot never goes stale"
    );
    m.commit(TB).expect("commit B");
}

#[test]
fn can_push_agrees_with_push_verdicts() {
    // Bound-1 counter: after A's committed inc, B's inc is denotationally
    // disallowed — can_push must predict the PUSH (iii) rejection.
    let mut m = Machine::new(ToyCounter::with_bound(1));
    let ta = m.add_thread(vec![Code::method(CounterMethod::Inc)]);
    let tb = m.add_thread(vec![Code::method(CounterMethod::Inc)]);
    let a = m.app_auto(ta).expect("app A");
    m.push(ta, a).expect("push A");
    m.commit(ta).expect("commit A");

    let b = m.app_auto(tb).expect("app B");
    assert!(!m.can_push(tb, b).expect("well-formed op"));
    assert!(
        m.push(tb, b).is_err(),
        "push must agree with the prediction"
    );

    // Bound-2 counter, same shape: now both verdicts flip to true.
    let mut m = Machine::new(ToyCounter::with_bound(2));
    let ta = m.add_thread(vec![Code::method(CounterMethod::Inc)]);
    let tb = m.add_thread(vec![Code::method(CounterMethod::Inc)]);
    let a = m.app_auto(ta).expect("app A");
    m.push(ta, a).expect("push A");
    m.commit(ta).expect("commit A");

    let b = m.app_auto(tb).expect("app B");
    assert!(m.can_push(tb, b).expect("well-formed op"));
    m.push(tb, b).expect("push must agree with the prediction");
    m.commit(tb).expect("commit B");
}

#[test]
fn sticky_coarse_disables_the_fast_path_without_changing_verdicts() {
    // `Size` declares no footprint; pushing it at shard count 4 trips the
    // sticky-coarse rung of the fallback ladder. From then on criteria
    // checks must take locks (the snapshot path is disabled) while the
    // verdicts stay exactly what the coarse whole-log evaluation gives.
    let mut m = Machine::new(KvMap::new());
    let ta = m.add_thread(vec![Code::method(MapMethod::Size)]);
    let tb = m.add_thread(vec![Code::method(MapMethod::Put(3, 30))]);
    m.set_log_shards(4);

    let size = m.app_auto(ta).expect("app size");
    m.push(ta, size).expect("push size");
    m.commit(ta).expect("commit size");

    let put = m.app_auto(tb).expect("app put");
    let (acq_before, _) = m.lock_stats();
    let (reads_before, _, _) = m.seqlock_stats();
    assert!(m.can_push(tb, put).expect("well-formed op"));
    let (acq_after, _) = m.lock_stats();
    let (reads_after, _, _) = m.seqlock_stats();

    assert!(
        acq_after > acq_before,
        "coarse mode must route the check through the locked ladder"
    );
    assert_eq!(
        reads_after, reads_before,
        "no snapshot read may be served in coarse mode"
    );
    m.push(tb, put).expect("push put");
    m.commit(tb).expect("commit put");
}
