//! The criteria audit makes the paper's §2 methodology observable: each
//! algorithm class discharges a characteristic *pattern* of proof
//! obligations. These tests pin those patterns down.

use pushpull::core::error::{Clause, Rule};
use pushpull::core::lang::Code;
use pushpull::harness::{run, RandomSched};
use pushpull::spec::counter::{Counter, CtrMethod};
use pushpull::spec::kvmap::{KvMap, MapMethod};
use pushpull::spec::rwmem::{Loc, MemMethod, RwMem};
use pushpull::tm::dependent::DependentSystem;
use pushpull::tm::optimistic::{OptimisticSystem, ReadPolicy};
use pushpull::tm::{BoostingSystem, TmSystem};

#[test]
fn optimistic_discharges_no_unpush_obligations() {
    let prog = |l: u32| {
        vec![Code::seq_all(vec![
            Code::method(MemMethod::Read(Loc(l))),
            Code::method(MemMethod::Write(Loc(l), 1)),
        ])]
    };
    let mut sys = OptimisticSystem::new(
        RwMem::new(),
        vec![prog(0), prog(0), prog(1)],
        ReadPolicy::Snapshot,
    );
    run(&mut sys, &mut RandomSched::new(5), 1_000_000).unwrap();
    let audit = sys.machine().audit();
    // §6.2: optimistic transactions "needn't UNPUSH".
    assert_eq!(audit.discharged_count(Rule::UnPush, Clause::I), 0);
    assert_eq!(audit.discharged_count(Rule::UnPush, Clause::Ii), 0);
    assert_eq!(audit.violated_count(Rule::UnPush, Clause::Ii), 0);
    // Every commit discharged all three CMT criteria.
    let commits = sys.stats().commits;
    assert_eq!(audit.discharged_count(Rule::Cmt, Clause::Iii), commits);
    // Conflicts manifested as PUSH criterion failures.
    assert!(audit.total() > 0);
}

#[test]
fn boosting_discharges_push_obligations_per_operation() {
    let mut sys = BoostingSystem::new(
        KvMap::new(),
        vec![
            vec![Code::seq_all(vec![
                Code::method(MapMethod::Put(1, 10)),
                Code::method(MapMethod::Get(1)),
            ])],
            vec![Code::method(MapMethod::Put(2, 20))],
        ],
    );
    run(&mut sys, &mut RandomSched::new(7), 1_000_000).unwrap();
    let audit = sys.machine().audit();
    // Three operations, each APP'd and PUSH'd eagerly: three discharges
    // of each PUSH criterion (no aborts on this disjoint workload).
    assert_eq!(sys.stats().aborts, 0);
    assert_eq!(audit.discharged_count(Rule::Push, Clause::I), 3);
    assert_eq!(audit.discharged_count(Rule::Push, Clause::Ii), 3);
    assert_eq!(audit.discharged_count(Rule::Push, Clause::Iii), 3);
    assert_eq!(audit.discharged_count(Rule::App, Clause::Ii), 3);
    // The audit renders as a table naming the paper's criteria.
    let table = audit.render();
    assert!(table.contains("PUSH criterion (ii)"));
}

#[test]
fn dependent_discharges_pull_obligations() {
    let mut sys = DependentSystem::new(
        Counter::new(),
        vec![
            vec![Code::method(CtrMethod::Add(1))],
            vec![Code::method(CtrMethod::Get)],
        ],
        true,
    );
    use pushpull::core::op::ThreadId;
    sys.tick(ThreadId(0)).unwrap();
    sys.tick(ThreadId(0)).unwrap(); // early release
    sys.tick(ThreadId(1)).unwrap(); // pulls the uncommitted add
    run(&mut sys, &mut RandomSched::new(9), 1_000_000).unwrap();
    let audit = sys.machine().audit();
    assert!(audit.discharged_count(Rule::Pull, Clause::I) >= 1);
    assert!(audit.discharged_count(Rule::Pull, Clause::Ii) >= 1);
    // The commit-gating showed up as CMT criterion (iii) checks (the
    // blocked attempts happen before CMT is attempted, so at least the
    // final commits discharged it).
    assert!(audit.discharged_count(Rule::Cmt, Clause::Iii) >= 2);
}

#[test]
fn unchecked_mode_discharges_nothing() {
    use pushpull::core::machine::CheckMode;
    use pushpull::core::Machine;
    let mut m = Machine::with_mode(Counter::new(), CheckMode::Unchecked);
    let t = m.add_thread(vec![Code::method(CtrMethod::Add(1))]);
    let op = m.app_auto(t).unwrap();
    m.push(t, op).unwrap();
    m.commit(t).unwrap();
    let audit = m.audit();
    assert_eq!(audit.total(), 0, "{}", audit.render());
    assert_eq!(audit.mover_queries, 0);
}

#[test]
fn reset_audit_clears_counters() {
    use pushpull::core::Machine;
    let mut m = Machine::new(Counter::new());
    let t = m.add_thread(vec![Code::method(CtrMethod::Add(1))]);
    let op = m.app_auto(t).unwrap();
    m.push(t, op).unwrap();
    assert!(m.audit().total() > 0);
    m.reset_audit();
    assert_eq!(m.audit().total(), 0);
}
