//! End-to-end correctness on the structured workload families: FIFO
//! semantics survive transactional execution, money is conserved,
//! scanners see consistent snapshots, and strict serializability
//! (real-time order) holds throughout.

use pushpull::core::serializability::{check_machine, real_time_violations};
use pushpull::core::spec::SeqSpec;
use pushpull::harness::patterns;
use pushpull::harness::{run, RandomSched};
use pushpull::spec::bank::Bank;
use pushpull::spec::kvmap::{KvMap, MapMethod, MapRet};
use pushpull::spec::queue::{QueueMethod, QueueRet, QueueSpec};
use pushpull::spec::rwmem::RwMem;
use pushpull::tm::optimistic::{OptimisticSystem, ReadPolicy};
use pushpull::tm::pessimistic::MatveevShavitSystem;
use pushpull::tm::{BoostingSystem, TmSystem};

/// FIFO through TM: per-producer order of dequeued values must be
/// preserved, and no value is dequeued twice or invented.
#[test]
fn producer_consumer_preserves_fifo() {
    for seed in 1..=8u64 {
        let progs = patterns::producer_consumer(2, 2, 3);
        let mut sys = MatveevShavitSystem::new(QueueSpec::new(), progs);
        run(&mut sys, &mut RandomSched::new(seed), 2_000_000).unwrap();
        assert!(sys.is_done(), "seed {seed}");
        let report = check_machine(sys.machine());
        assert!(report.is_serializable(), "seed {seed}: {report}");

        // Reconstruct the dequeued sequence from the committed log.
        let committed = sys.machine().global().committed_ops();
        let dequeued: Vec<i64> = committed
            .iter()
            .filter_map(|o| match (o.method, o.ret) {
                (QueueMethod::Deq, QueueRet::Item(Some(v))) => Some(v),
                _ => None,
            })
            .collect();
        // No duplicates.
        let mut sorted = dequeued.clone();
        sorted.sort();
        let n = sorted.len();
        sorted.dedup();
        assert_eq!(sorted.len(), n, "seed {seed}: duplicate dequeue");
        // Per-producer order (values are p*10_000 + i).
        for p in 0..2i64 {
            let seq: Vec<i64> = dequeued
                .iter()
                .copied()
                .filter(|v| v / 10_000 == p)
                .collect();
            let mut expected = seq.clone();
            expected.sort();
            assert_eq!(seq, expected, "seed {seed}: producer {p} order violated");
        }
        assert!(
            real_time_violations(sys.machine()).is_empty(),
            "seed {seed}"
        );
    }
}

/// Money conservation under boosted transfers across seeds.
#[test]
fn transfers_conserve_money() {
    for seed in 1..=8u64 {
        let progs = patterns::transfers(3, 2, 5, 50);
        let mut sys = BoostingSystem::new(Bank::new(), progs);
        run(&mut sys, &mut RandomSched::new(seed), 2_000_000).unwrap();
        assert!(sys.is_done(), "seed {seed}");
        assert!(
            check_machine(sys.machine()).is_serializable(),
            "seed {seed}"
        );
        let committed = sys.machine().global().committed_ops();
        let spec = Bank::new();
        let state = spec
            .denote(&committed)
            .into_iter()
            .next()
            .expect("deterministic");
        let total: i64 = state.values().sum();
        // Failed withdraws leave their paired deposit unmatched: count them.
        let failed = committed
            .iter()
            .filter(|o| {
                matches!(
                    (o.method, o.ret),
                    (
                        pushpull::spec::bank::BankMethod::Withdraw(_, _),
                        pushpull::spec::bank::BankRet::Ok(false)
                    )
                )
            })
            .count() as i64;
        assert_eq!(total, 3 * 50 + failed * 5, "seed {seed}");
    }
}

/// Scanners racing updaters: every committed scan observed a consistent
/// snapshot (it replays atomically — already enforced by the oracle, but
/// here we additionally check the scan's internal consistency: all gets
/// of one scan agree with a single map state).
#[test]
fn scans_observe_consistent_snapshots() {
    for seed in 1..=8u64 {
        let progs = patterns::scans_and_updates(4, 3, 4);
        let mut sys = OptimisticSystem::new(KvMap::new(), progs, ReadPolicy::Snapshot);
        run(&mut sys, &mut RandomSched::new(seed), 4_000_000).unwrap();
        assert!(sys.is_done(), "seed {seed}");
        let report = check_machine(sys.machine());
        assert!(report.is_serializable(), "seed {seed}: {report}");
        // Internal consistency of each committed scan: replay the serial
        // witness and check the scan's observations against the state at
        // its serial position.
        let spec = KvMap::new();
        let mut prefix: Vec<pushpull::spec::kvmap::MapOp> = Vec::new();
        for txn in sys.machine().committed_txns() {
            let is_scan = txn
                .ops
                .iter()
                .all(|o| matches!(o.method, MapMethod::Get(_)));
            if is_scan && !txn.ops.is_empty() {
                let state = spec.denote(&prefix).into_iter().next().unwrap();
                for o in &txn.ops {
                    if let (MapMethod::Get(k), MapRet::Val(v)) = (&o.method, &o.ret) {
                        assert_eq!(
                            state.get(k).copied(),
                            *v,
                            "seed {seed}: scan observed torn state"
                        );
                    }
                }
            }
            prefix.extend(txn.ops.iter().cloned());
        }
    }
}

/// RMW chains over memory: the torture test, across algorithms.
#[test]
fn rmw_chains_all_serializable() {
    for seed in 1..=6u64 {
        let progs = patterns::rmw_chains(3, 3, 2);
        let mut sys = OptimisticSystem::new(RwMem::new(), progs.clone(), ReadPolicy::Snapshot);
        run(&mut sys, &mut RandomSched::new(seed), 4_000_000).unwrap();
        assert!(sys.is_done(), "opt seed {seed}");
        assert!(
            check_machine(sys.machine()).is_serializable(),
            "opt seed {seed}"
        );
        assert!(
            real_time_violations(sys.machine()).is_empty(),
            "opt seed {seed}"
        );

        let mut sys = MatveevShavitSystem::new(RwMem::new(), progs);
        run(&mut sys, &mut RandomSched::new(seed), 4_000_000).unwrap();
        assert!(sys.is_done(), "ms seed {seed}");
        assert!(
            check_machine(sys.machine()).is_serializable(),
            "ms seed {seed}"
        );
        assert!(
            real_time_violations(sys.machine()).is_empty(),
            "ms seed {seed}"
        );
    }
}
