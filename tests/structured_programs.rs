//! Nondeterministic structured programs (`+`, `(c)*`) driven through the
//! machine — the full Example 1 grammar at runtime, not just straight
//! lines. Drivers resolve nondeterminism deterministically (first
//! `step` option; commit as soon as `fin` holds, which is CMT criterion
//! (i) verbatim); the atomic-replay oracle must still explain every
//! committed transaction through its *original* nondeterministic body.

use pushpull::core::lang::Code;
use pushpull::core::serializability::check_machine;
use pushpull::harness::{run, RandomSched, WorkloadSpec};
use pushpull::spec::counter::{Counter, CtrMethod};
use pushpull::tm::optimistic::{OptimisticSystem, ReadPolicy};
use pushpull::tm::TmSystem;

#[test]
fn random_structured_programs_run_serializably() {
    for seed in 1..=10u64 {
        let spec = WorkloadSpec {
            threads: 3,
            txns_per_thread: 3,
            ops_per_txn: 0, // unused by the structured generator
            key_range: 0,
            read_ratio: 0.4,
            seed,
        };
        let progs = spec.structured_counter_programs(3);
        let mut sys = OptimisticSystem::new(Counter::new(), progs, ReadPolicy::Snapshot);
        run(&mut sys, &mut RandomSched::new(seed * 17), 4_000_000).unwrap();
        assert!(sys.is_done(), "seed {seed} did not finish");
        assert_eq!(sys.stats().commits, 9, "seed {seed}");
        let report = check_machine(sys.machine());
        assert!(report.is_serializable(), "seed {seed}: {report}");
    }
}

#[test]
fn choice_transactions_commit_one_branch() {
    // tx (add(1) + add(10)): exactly one branch's effect commits.
    let prog = vec![Code::choice(
        Code::method(CtrMethod::Add(1)),
        Code::method(CtrMethod::Add(10)),
    )];
    let mut sys = OptimisticSystem::new(Counter::new(), vec![prog], ReadPolicy::Snapshot);
    run(&mut sys, &mut RandomSched::new(3), 10_000).unwrap();
    assert_eq!(sys.stats().commits, 1);
    let ops = &sys.machine().committed_txns()[0].ops;
    assert_eq!(ops.len(), 1);
    assert!(matches!(
        ops[0].method,
        CtrMethod::Add(1) | CtrMethod::Add(10)
    ));
    // The oracle replays the op against the *choice* body.
    assert!(check_machine(sys.machine()).is_serializable());
}

#[test]
fn star_transactions_terminate_by_committing() {
    // tx (add(1))*: the driver may loop, but fin((c)*) holds, so it can
    // commit; our driver commits at the first opportunity — zero
    // iterations — which is a legal atomic behaviour of the star.
    let prog = vec![Code::star(Code::method(CtrMethod::Add(1)))];
    let mut sys = OptimisticSystem::new(Counter::new(), vec![prog], ReadPolicy::Snapshot);
    run(&mut sys, &mut RandomSched::new(4), 10_000).unwrap();
    assert_eq!(sys.stats().commits, 1);
    assert!(check_machine(sys.machine()).is_serializable());
}

#[test]
fn star_with_mandatory_prefix_executes_the_prefix() {
    // tx (get ; (add(1))*): fin fails until the get has run.
    let prog = vec![Code::seq(
        Code::method(CtrMethod::Get),
        Code::star(Code::method(CtrMethod::Add(1))),
    )];
    let mut sys = OptimisticSystem::new(Counter::new(), vec![prog], ReadPolicy::Snapshot);
    run(&mut sys, &mut RandomSched::new(5), 10_000).unwrap();
    assert_eq!(sys.stats().commits, 1);
    let ops = &sys.machine().committed_txns()[0].ops;
    assert_eq!(
        ops.len(),
        1,
        "the get ran; the star committed at zero iterations"
    );
    assert!(matches!(ops[0].method, CtrMethod::Get));
    assert!(check_machine(sys.machine()).is_serializable());
}

/// Structural resolution at machine level agrees with driver-level
/// resolution: resolving the choice first, then running, yields a
/// committed log the oracle also accepts against the *resolved* code.
#[test]
fn struct_steps_compose_with_rules() {
    use pushpull::core::structural::StructStep;
    use pushpull::core::Machine;
    let mut m = Machine::new(Counter::new());
    let t = m.add_thread(vec![Code::seq(
        Code::choice(
            Code::method(CtrMethod::Add(5)),
            Code::method(CtrMethod::Get),
        ),
        Code::method(CtrMethod::Add(1)),
    )]);
    // Resolve the choice to the right branch structurally.
    m.struct_step(t, StructStep::NondetR).unwrap();
    let a = m.app_auto(t).unwrap(); // get
    let b = m.app_auto(t).unwrap(); // add(1)
    m.push(t, a).unwrap();
    m.push(t, b).unwrap();
    m.commit(t).unwrap();
    let txn = &m.committed_txns()[0];
    assert!(matches!(txn.ops[0].method, CtrMethod::Get));
    assert!(matches!(txn.ops[1].method, CtrMethod::Add(1)));
    // The oracle replays against the ORIGINAL (pre-resolution) body,
    // which still contains the observed path.
    assert!(check_machine(&m).is_serializable());
}
