//! Group-commit golden equivalence for the service front-end, plus the
//! server's chaos rows and the multiplexing scale test.
//!
//! The server's core claim mirrors the transport seam's: batching
//! commit-ready transactions per destination shard (one shard-lock
//! acquisition and one contiguous stamp reservation per batch) changes
//! *how many times the lock is taken*, never what is decided. Ten
//! workload families — the same spec/method mixes the §6/§7 drivers run —
//! go through [`TxnServer`] with group commit on and off, at shard
//! counts 1, 4 and 16; each pair of runs must produce bit-identical
//! committed-transaction sequences, bit-identical traces, and identical
//! audit ledgers.
//!
//! Riding along:
//!
//! * the driver-facing `service_commit_group` seam contract (forwarded
//!   by every machine-backed driver, validated end-to-end on a raw
//!   machine);
//! * the server's chaos rows: every transport fault kind through the
//!   whole session loop under a seeded random scheduler, with exact
//!   injection accounting, and a persistent partition under
//!   [`FallbackMode::Fail`] failing every session cleanly instead of
//!   hanging;
//! * ten thousand logical sessions multiplexed onto 256 worker slots,
//!   with fewer lock acquisitions than committed transactions.

use std::sync::Arc;
use std::time::Duration;

use pushpull::core::audit::CriteriaAudit;
use pushpull::core::error::MachineError;
use pushpull::core::faults::{FaultHook, ALL_TRANSPORT_FAULT_KINDS};
use pushpull::core::lang::Code;
use pushpull::core::machine::Machine;
use pushpull::core::op::ThreadId;
use pushpull::core::serializability::check_machine;
use pushpull::core::spec::SeqSpec;
use pushpull::core::{FallbackMode, GroupTxnResult, SeededBackoff, TransportConfig};
use pushpull::harness::testutil::{
    assert_chaos_cell, assert_injection_accounted, assert_ledger_matches,
};
use pushpull::harness::{run, FaultPlan, RoundRobin, WorkloadSpec};
use pushpull::server::{ServerConfig, SessionOutcome, SessionScript, TxnServer};
use pushpull::spec::bank::Bank;
use pushpull::spec::counter::{Counter, CtrMethod};
use pushpull::spec::kvmap::{KvMap, MapMethod};
use pushpull::spec::queue::{QueueMethod, QueueSpec};
use pushpull::spec::register::{CasRegister, RegMethod};
use pushpull::spec::rwmem::{Loc, MemMethod, RwMem};
use pushpull::spec::set::{SetMethod, SetSpec};
use pushpull::tm::mixed::{methods, mixed_spec};
use pushpull::tm::{BoostingSystem, TmSystem};

const BUDGET: usize = 2_000_000;

/// Shard counts the equivalence is quantified over.
const SHARD_COUNTS: [usize; 3] = [1, 4, 16];

/// Sessions from a generated per-thread workload: every transaction body
/// becomes one logical session (the server, not the generator, decides
/// placement).
fn sessions_from<M: Clone + PartialEq>(programs: Vec<Vec<Code<M>>>) -> Vec<SessionScript<M>> {
    programs
        .iter()
        .flatten()
        .map(SessionScript::from_code)
        .collect()
}

/// One server run: reshard, drive to completion round-robin, snapshot
/// everything the claim quantifies over.
fn golden<S: SeqSpec>(
    label: &str,
    spec: S,
    scripts: Vec<SessionScript<S::Method>>,
    shards: usize,
    group: bool,
) -> (String, String, CriteriaAudit)
where
    S::Method: std::fmt::Display,
    S::Ret: std::fmt::Debug,
{
    let expected = scripts.len() as u64;
    let mut sys = TxnServer::new(
        spec,
        scripts,
        ServerConfig {
            workers: 2,
            slots_per_worker: 4,
            group_commit: group,
            ..ServerConfig::default()
        },
    );
    sys.set_log_shards(shards);
    let which = if group { "group" } else { "single" };
    let out = run(&mut sys, &mut RoundRobin, BUDGET)
        .unwrap_or_else(|e| panic!("{label}@{shards}/{which}: machine error: {e}"));
    assert!(out.completed, "{label}@{shards}/{which}: wedged");
    let stats = sys.stats();
    assert_eq!(
        stats.sessions, expected,
        "{label}@{shards}/{which}: sessions lost"
    );
    if !group {
        assert_eq!(
            stats.group_batches, 0,
            "{label}@{shards}/{which}: batching disabled but batches sealed"
        );
    }
    let m = sys.machine();
    let report = check_machine(m);
    assert!(
        report.is_serializable(),
        "{label}@{shards}/{which}: {report}"
    );
    (
        format!("{:?}", m.committed_txns()),
        m.trace().render(),
        m.audit(),
    )
}

/// Runs `scripts()` through the server with group commit on and off at
/// every shard count and asserts the batched run is bit-identical to the
/// per-transaction one.
fn assert_group_equivalence<S: SeqSpec>(
    label: &str,
    spec: impl Fn() -> S,
    scripts: impl Fn() -> Vec<SessionScript<S::Method>>,
) where
    S::Method: std::fmt::Display,
    S::Ret: std::fmt::Debug,
{
    for shards in SHARD_COUNTS {
        let (on_commits, on_trace, on_audit) = golden(label, spec(), scripts(), shards, true);
        let (off_commits, off_trace, off_audit) = golden(label, spec(), scripts(), shards, false);
        assert_eq!(
            on_commits, off_commits,
            "{label}@{shards}: committed transactions diverge"
        );
        assert_eq!(
            on_trace, off_trace,
            "{label}@{shards}: traces diverge — batching changed a verdict"
        );
        assert_ledger_matches(&on_audit, &off_audit);
    }
}

#[test]
fn kvmap_contended_group_equivalent() {
    let wl = WorkloadSpec {
        threads: 4,
        txns_per_thread: 4,
        ops_per_txn: 3,
        key_range: 4,
        read_ratio: 0.5,
        seed: 11,
    };
    assert_group_equivalence("server/kvmap", KvMap::new, || {
        sessions_from(wl.kvmap_programs())
    });
}

#[test]
fn kvmap_disjoint_group_equivalent() {
    let wl = WorkloadSpec {
        threads: 4,
        txns_per_thread: 4,
        ops_per_txn: 3,
        key_range: 64,
        read_ratio: 0.2,
        seed: 12,
    };
    assert_group_equivalence("server/kvmap-disjoint", KvMap::new, || {
        sessions_from(wl.kvmap_disjoint_programs())
    });
}

#[test]
fn rwmem_group_equivalent() {
    let wl = WorkloadSpec {
        threads: 4,
        txns_per_thread: 4,
        ops_per_txn: 3,
        key_range: 6,
        read_ratio: 0.6,
        seed: 13,
    };
    assert_group_equivalence("server/rwmem", RwMem::new, || {
        sessions_from(wl.rwmem_programs())
    });
}

#[test]
fn counter_group_equivalent() {
    let wl = WorkloadSpec {
        threads: 3,
        txns_per_thread: 4,
        ops_per_txn: 2,
        key_range: 8,
        read_ratio: 0.3,
        seed: 14,
    };
    assert_group_equivalence("server/counter", Counter::new, || {
        sessions_from(wl.counter_programs())
    });
}

#[test]
fn bank_group_equivalent() {
    let wl = WorkloadSpec {
        threads: 3,
        txns_per_thread: 4,
        ops_per_txn: 3,
        key_range: 4,
        read_ratio: 0.4,
        seed: 15,
    };
    assert_group_equivalence("server/bank", Bank::new, || {
        sessions_from(wl.bank_programs())
    });
}

#[test]
fn set_group_equivalent() {
    assert_group_equivalence("server/set", SetSpec::new, || {
        (0..12u64)
            .map(|s| {
                SessionScript::commit(vec![
                    SetMethod::Add(s % 5),
                    SetMethod::Contains((s + 1) % 5),
                    SetMethod::Remove((s + 2) % 5),
                ])
            })
            .collect()
    });
}

#[test]
fn queue_group_equivalent() {
    assert_group_equivalence("server/queue", QueueSpec::new, || {
        (0..12i64)
            .map(|s| {
                if s % 3 == 0 {
                    SessionScript::commit(vec![QueueMethod::Deq])
                } else {
                    SessionScript::commit(vec![QueueMethod::Enq(s), QueueMethod::Peek])
                }
            })
            .collect()
    });
}

#[test]
fn register_group_equivalent() {
    assert_group_equivalence("server/register", CasRegister::new, || {
        (0..10i64)
            .map(|s| match s % 3 {
                0 => SessionScript::commit(vec![RegMethod::Write(s), RegMethod::Read]),
                1 => SessionScript::commit(vec![RegMethod::Read]),
                _ => SessionScript::commit(vec![RegMethod::Cas {
                    expected: s - 2,
                    new: s,
                }]),
            })
            .collect()
    });
}

#[test]
fn mixed_product_group_equivalent() {
    assert_group_equivalence("server/mixed", mixed_spec, || {
        (0..8u64)
            .map(|s| {
                SessionScript::commit(vec![
                    methods::skiplist(SetMethod::Add(s % 4)),
                    methods::size(CtrMethod::Add(1)),
                    methods::hash_table(MapMethod::Put(s, s as i64)),
                    methods::mem(MemMethod::Write(Loc((s % 2) as u32), 1)),
                ])
            })
            .collect()
    });
}

#[test]
fn abort_mix_group_equivalent() {
    // Half the sessions close with Abort: the rewinds must also be
    // invisible to what the committed half decides.
    assert_group_equivalence("server/abort-mix", KvMap::new, || {
        (0..16u64)
            .map(|s| {
                let ops = vec![MapMethod::Put(s % 6, s as i64), MapMethod::Get((s + 1) % 6)];
                if s % 2 == 0 {
                    SessionScript::commit(ops)
                } else {
                    SessionScript::abort(ops)
                }
            })
            .collect()
    });
}

/// The driver-facing commit seam: every machine-backed driver forwards
/// `service_commit_group`, idle threads report back `Ineligible` for the
/// caller's per-transaction fallback, malformed batches error, and on a
/// raw machine the same entry point really does commit a multi-thread
/// batch under one acquisition.
#[test]
fn service_commit_seam_contract() {
    // The hook, through a driver.
    let mut sys = BoostingSystem::new(
        KvMap::new(),
        vec![vec![Code::method(MapMethod::Put(0, 1))], vec![]],
    );
    let out = sys
        .service_commit_group(&[])
        .expect("machine-backed drivers forward the seam")
        .expect("empty batch is not an error");
    assert!(out.results.is_empty());
    assert_eq!(out.batches, 0);
    let out = sys.service_commit_group(&[ThreadId(0)]).unwrap().unwrap();
    assert!(
        matches!(out.results[..], [(ThreadId(0), GroupTxnResult::Ineligible)]),
        "a thread with nothing applied must fall back, got {:?}",
        out.results
    );
    assert!(
        sys.service_commit_group(&[ThreadId(0), ThreadId(0)])
            .unwrap()
            .is_err(),
        "duplicate tids must be rejected"
    );
    assert!(
        sys.service_commit_group(&[ThreadId(9)]).unwrap().is_err(),
        "out-of-range tids must be rejected"
    );

    // The same entry point on a raw machine, committing for real: two
    // applied transactions on one shard, one batch, one acquisition.
    let mut m: Machine<KvMap> = Machine::new(KvMap::new());
    let t0 = m.add_thread(vec![Code::method(MapMethod::Put(0, 10))]);
    let t1 = m.add_thread(vec![Code::method(MapMethod::Put(1, 20))]);
    m.app_auto(t0).unwrap();
    m.app_auto(t1).unwrap();
    let (before, _) = m.lock_stats();
    let out = m.commit_group(&[t0, t1]).unwrap();
    assert!(out
        .results
        .iter()
        .all(|(_, r)| matches!(r, GroupTxnResult::Committed(_))));
    assert_eq!((out.batches, out.batched_txns), (1, 2));
    let (after, _) = m.lock_stats();
    assert_eq!(after - before, 1, "a 2-txn batch takes the lock once");
    assert_eq!(m.committed_txns().len(), 2);
    assert!(check_machine(&m).is_serializable());
}

/// Every transport fault kind through the whole server loop: admission,
/// APP, commit (per-transaction under a transport), retry. The chaos
/// contract — completion, exact injection accounting, serializability —
/// holds on every cell, and every session still reaches an outcome.
#[test]
fn server_chaos_transport_matrix() {
    for kind in ALL_TRANSPORT_FAULT_KINDS {
        for seed in 1..=3u64 {
            let scripts: Vec<_> = (0..12u64)
                .map(|s| {
                    SessionScript::commit(vec![
                        MapMethod::Put(s % 5, s as i64),
                        MapMethod::Get((s + 2) % 5),
                    ])
                })
                .collect();
            let expected = scripts.len();
            let sys = TxnServer::new(
                KvMap::new(),
                scripts,
                ServerConfig {
                    workers: 2,
                    slots_per_worker: 3,
                    seed,
                    ..ServerConfig::default()
                },
            );
            let n = sys.thread_count();
            let plan = Arc::new(FaultPlan::seeded(seed, n, kind));
            sys.machine()
                .set_channel_transport(TransportConfig::default());
            let cell = format!("server/{kind}");
            let sys = assert_chaos_cell(&cell, sys, &plan, seed, BUDGET, false, |s| s.machine());
            assert_eq!(
                sys.stats().sessions as usize,
                expected,
                "{cell}/seed {seed}: sessions lost under faults"
            );
            let t = sys.machine().transport_stats();
            assert!(t.requests > 0, "{cell}/seed {seed}: no transport requests");
        }
    }
}

/// A persistent partition under [`FallbackMode::Fail`]: the server must
/// fail every session with [`MachineError::TransportExhausted`] — never
/// hang, never wedge a worker — and account every injected fault.
#[test]
fn persistent_partition_fails_every_session_clean() {
    let scripts: Vec<_> = (0..10u64)
        .map(|s| SessionScript::commit(vec![MapMethod::Put(s, s as i64)]))
        .collect();
    let mut sys = TxnServer::new(
        KvMap::new(),
        scripts,
        ServerConfig {
            workers: 2,
            slots_per_worker: 2,
            ..ServerConfig::default()
        },
    );
    sys.set_log_shards(1);
    sys.machine().set_channel_transport(TransportConfig {
        max_retries: 1,
        deadline: Duration::from_secs(5),
        fallback: FallbackMode::Fail,
        backoff: Arc::new(SeededBackoff::new(3)),
    });
    let plan = Arc::new(FaultPlan::new(sys.thread_count()).partition(0));
    sys.machine()
        .set_fault_hook(Some(Arc::clone(&plan) as Arc<dyn FaultHook>));
    let out = run(&mut sys, &mut RoundRobin, BUDGET).expect("exhaustion is handled, not raised");
    assert!(out.completed, "partitioned server must drain, not hang");

    let outcomes = sys.outcomes();
    assert_eq!(outcomes.len(), 10);
    for (s, o) in outcomes {
        assert!(
            matches!(
                o,
                SessionOutcome::Failed {
                    error: MachineError::TransportExhausted { .. }
                }
            ),
            "{s}: expected TransportExhausted, got {o:?}"
        );
    }
    assert_eq!(sys.stats().commits, 0);
    assert_eq!(
        sys.machine().committed_txns().len(),
        0,
        "nothing may commit through a dead transport in Fail mode"
    );
    assert_injection_accounted(&sys.machine().audit(), &plan.fired());
}

/// Ten thousand logical sessions multiplexed onto 256 worker slots
/// (4 workers × 64 handles): every session commits, batches amortize the
/// shard lock below one acquisition per committed transaction, and the
/// deterministic outcome order names every session exactly once. (The
/// O(n²) whole-log serializability oracle is deliberately skipped at
/// this scale; the equivalence families above cover the verdicts.)
#[test]
fn ten_thousand_sessions_multiplex() {
    const SESSIONS: u64 = 10_000;
    let scripts: Vec<_> = (0..SESSIONS)
        .map(|s| SessionScript::commit(vec![MapMethod::Put(s, s as i64)]))
        .collect();
    let mut sys = TxnServer::new(
        KvMap::new(),
        scripts,
        ServerConfig {
            workers: 4,
            slots_per_worker: 64,
            ..ServerConfig::default()
        },
    );
    let out = run(&mut sys, &mut RoundRobin, BUDGET).expect("machine error");
    assert!(out.completed, "10k-session drain wedged");
    let stats = sys.stats();
    assert_eq!(stats.sessions, SESSIONS);
    assert_eq!(stats.commits, SESSIONS);
    assert!(
        stats.lock_acquires < stats.commits,
        "batched disjoint load must average below one lock acquisition \
         per committed transaction ({} acquires / {} commits)",
        stats.lock_acquires,
        stats.commits
    );
    assert!(stats.group_batches > 0);
    assert_eq!(stats.group_txns, SESSIONS, "every commit should batch");
    let outcomes = sys.outcomes();
    assert_eq!(outcomes.len(), SESSIONS as usize);
    // Sorted, dense, and all committed.
    for (i, (s, o)) in outcomes.iter().enumerate() {
        assert_eq!(s.0, i as u64);
        assert!(o.is_committed(), "{s}: {o:?}");
    }
}
