//! Heavier exhaustive model-checking configurations, ignored by default
//! (`cargo test -- --ignored` to run). These push the interleaving
//! explorer to three threads and longer transactions; the quick variants
//! in the other test files cover the same claims on smaller
//! configurations.

use pushpull::core::lang::Code;
use pushpull::core::opacity::check_trace;
use pushpull::core::serializability::check_machine;
use pushpull::harness::{explore, ExploreLimits};
use pushpull::spec::counter::{Counter, CtrMethod};
use pushpull::spec::kvmap::{KvMap, MapMethod};
use pushpull::spec::rwmem::{Loc, MemMethod, RwMem};
use pushpull::tm::optimistic::{OptimisticSystem, ReadPolicy};
use pushpull::tm::BoostingSystem;

#[test]
#[ignore = "heavy: minutes of exhaustive exploration"]
fn three_thread_optimistic_counter_exhaustive() {
    let prog = || {
        vec![Code::seq_all(vec![
            Code::method(CtrMethod::Get),
            Code::method(CtrMethod::Add(1)),
        ])]
    };
    let sys = OptimisticSystem::new(
        Counter::new(),
        vec![prog(), prog(), prog()],
        ReadPolicy::Snapshot,
    );
    let report = explore(
        &sys,
        ExploreLimits {
            max_depth: 60,
            max_terminals: 2_000_000,
        },
        &mut |s| {
            check_machine(s.machine()).is_serializable()
                && check_trace(&s.machine().trace()).is_opaque()
        },
    )
    .unwrap();
    assert!(report.terminals > 1_000);
    assert!(report.all_ok(), "{report:?}");
}

#[test]
#[ignore = "heavy: minutes of exhaustive exploration"]
fn three_thread_boosting_map_exhaustive() {
    let sys = BoostingSystem::new(
        KvMap::new(),
        vec![
            vec![Code::seq_all(vec![
                Code::method(MapMethod::Put(1, 10)),
                Code::method(MapMethod::Get(2)),
            ])],
            vec![Code::seq_all(vec![
                Code::method(MapMethod::Put(2, 20)),
                Code::method(MapMethod::Get(3)),
            ])],
            vec![Code::method(MapMethod::Put(1, 30))],
        ],
    );
    let report = explore(
        &sys,
        ExploreLimits {
            max_depth: 64,
            max_terminals: 2_000_000,
        },
        &mut |s| check_machine(s.machine()).is_serializable(),
    )
    .unwrap();
    assert!(report.terminals > 1_000);
    assert!(report.all_ok(), "{report:?}");
}

#[test]
#[ignore = "heavy: minutes of exhaustive exploration"]
fn rmw_pair_longer_transactions_exhaustive() {
    let prog = |l: u32, v: i64| {
        vec![Code::seq_all(vec![
            Code::method(MemMethod::Read(Loc(l))),
            Code::method(MemMethod::Write(Loc(l), v)),
            Code::method(MemMethod::Read(Loc(1 - l))),
            Code::method(MemMethod::Write(Loc(1 - l), v + 1)),
        ])]
    };
    let sys = OptimisticSystem::new(
        RwMem::new(),
        vec![prog(0, 1), prog(1, 10)],
        ReadPolicy::Snapshot,
    );
    let report = explore(
        &sys,
        ExploreLimits {
            max_depth: 72,
            max_terminals: 2_000_000,
        },
        &mut |s| check_machine(s.machine()).is_serializable(),
    )
    .unwrap();
    assert!(report.terminals > 100);
    assert!(report.all_ok(), "{report:?}");
}
