//! A rule-level fuzzer for the PUSH/PULL machine itself.
//!
//! Unlike the algorithm tests (which exercise the machine through §6's
//! disciplined drivers), this test applies *random admissible rules* —
//! any APP/UNAPP/PUSH/UNPUSH/PULL/UNPULL/CMT that the criteria admit —
//! and asserts that Theorem 5.17 still holds at the end: whatever wild
//! interleaving of rule applications the criteria let through, the
//! committed transactions are serializable and the §5 invariants hold at
//! every step. This is the strongest executable form of the paper's main
//! theorem this reproduction offers.

use pushpull::core::invariants::check_all;
use pushpull::core::lang::Code;
use pushpull::core::log::GlobalFlag;
use pushpull::core::op::{OpId, ThreadId};
use pushpull::core::rng::Xorshift64;
use pushpull::core::serializability::check_machine;
use pushpull::core::spec::SeqSpec as _;
use pushpull::core::{Machine, MachineError};
use pushpull::spec::counter::{Counter, CtrMethod};
use pushpull::spec::kvmap::{KvMap, MapMethod};

/// One random rule attempt. Criterion violations are fine (the rule is
/// simply not taken); structural errors for targets we chose in-range
/// are fine too (wrong flag etc.); anything else would be a bug.
fn random_step<S>(m: &mut Machine<S>, rng: &mut Xorshift64) -> bool
where
    S: pushpull::core::spec::SeqSpec,
{
    let n = m.thread_count();
    let tid = ThreadId(rng.gen_index(n));
    if m.thread(tid).map(|t| t.is_done()).unwrap_or(true) {
        return false;
    }
    let kind = rng.gen_range(0..8);
    let result: Result<(), MachineError> = match kind {
        // APP
        0 | 1 => m.app_auto(tid).map(|_| ()),
        // UNAPP
        2 => m.unapp(tid).map(|_| ()),
        // PUSH a random unpushed own op
        3 => {
            let ids = m.unpushed_ids(tid).unwrap_or_default();
            if ids.is_empty() {
                return false;
            }
            let id = ids[rng.gen_index(ids.len())];
            m.push(tid, id)
        }
        // UNPUSH a random pushed own op
        4 => {
            let ids: Vec<OpId> = m
                .thread(tid)
                .map(|t| t.local().pushed_ops().iter().map(|o| o.id).collect())
                .unwrap_or_default();
            if ids.is_empty() {
                return false;
            }
            let id = ids[rng.gen_index(ids.len())];
            m.unpush(tid, id)
        }
        // PULL a random foreign global op
        5 => {
            let own = m.thread(tid).map(|t| t.txn()).unwrap();
            let ids: Vec<OpId> = m
                .global()
                .iter()
                .filter(|e| e.op.txn != own)
                .map(|e| e.op.id)
                .collect();
            if ids.is_empty() {
                return false;
            }
            let id = ids[rng.gen_index(ids.len())];
            m.pull(tid, id)
        }
        // UNPULL a random pulled op
        6 => {
            let ids: Vec<OpId> = m
                .thread(tid)
                .map(|t| t.local().pulled_ops().iter().map(|o| o.id).collect())
                .unwrap_or_default();
            if ids.is_empty() {
                return false;
            }
            let id = ids[rng.gen_index(ids.len())];
            m.unpull(tid, id)
        }
        // CMT
        _ => m.commit(tid).map(|_| ()),
    };
    match result {
        Ok(()) => true,
        Err(MachineError::Criterion(_)) => false,
        Err(MachineError::NoSuchStep(_))
        | Err(MachineError::NoAllowedResult(_))
        | Err(MachineError::NothingToUnapply(_))
        | Err(MachineError::WrongFlag { .. })
        | Err(MachineError::ThreadFinished(_)) => false,
        Err(e) => panic!("unexpected machine error: {e}"),
    }
}

/// After fuzzing, stuck transactions are force-finished: rewind them so
/// only committed work remains, then the oracle judges the result.
fn drain<S: pushpull::core::spec::SeqSpec>(m: &mut Machine<S>) {
    for t in 0..m.thread_count() {
        let tid = ThreadId(t);
        if !m.thread(tid).map(|t| t.is_done()).unwrap_or(true) {
            // A full rewind is always admissible (Lemma 5.15's I_⊆).
            m.rewind_all(tid).expect("rewind must be admissible");
        }
    }
}

#[test]
fn fuzz_counter_machine() {
    for seed in 0..30u64 {
        let mut rng = Xorshift64::new(seed + 1);
        let mut m = Machine::new(Counter::new());
        for _ in 0..3 {
            m.add_thread(vec![
                Code::seq_all(vec![
                    Code::method(CtrMethod::Add(1)),
                    Code::method(CtrMethod::Get),
                ]),
                Code::method(CtrMethod::Add(2)),
            ]);
        }
        for step in 0..400 {
            random_step(&mut m, &mut rng);
            if step % 50 == 0 {
                let v = check_all(&m);
                assert!(v.is_empty(), "seed {seed} step {step}: {v:?}");
            }
        }
        drain(&mut m);
        let v = check_all(&m);
        assert!(v.is_empty(), "seed {seed} post-drain: {v:?}");
        let report = check_machine(&m);
        assert!(report.is_serializable(), "seed {seed}: {report}");
    }
}

#[test]
fn fuzz_kvmap_machine() {
    for seed in 0..30u64 {
        let mut rng = Xorshift64::new(1000 + seed);
        let mut m = Machine::new(KvMap::new());
        for t in 0..3u64 {
            m.add_thread(vec![
                Code::seq_all(vec![
                    Code::method(MapMethod::Put(t % 2, t as i64)),
                    Code::method(MapMethod::Get((t + 1) % 2)),
                ]),
                Code::method(MapMethod::Remove(t % 3)),
            ]);
        }
        for _ in 0..400 {
            random_step(&mut m, &mut rng);
        }
        let mid = check_all(&m);
        assert!(mid.is_empty(), "seed {seed}: {mid:?}");
        drain(&mut m);
        let report = check_machine(&m);
        assert!(report.is_serializable(), "seed {seed}: {report}");
    }
}

/// The fuzzer must actually commit work sometimes — guard against a
/// vacuously-passing test.
#[test]
fn fuzz_commits_nontrivially() {
    let mut total_commits = 0u64;
    for seed in 0..20u64 {
        let mut rng = Xorshift64::new(500 + seed);
        let mut m = Machine::new(Counter::new());
        for _ in 0..2 {
            m.add_thread(vec![Code::method(CtrMethod::Add(1))]);
        }
        for _ in 0..200 {
            random_step(&mut m, &mut rng);
        }
        total_commits += m.committed_txns().len() as u64;
        // Sanity: the committed log denotes a consistent counter value.
        let committed = m.global().committed_ops();
        assert!(m.spec().allowed(&committed));
        let uncommitted = m
            .global()
            .iter()
            .filter(|e| e.flag == GlobalFlag::Uncommitted)
            .count();
        let _ = uncommitted;
    }
    assert!(
        total_commits >= 10,
        "fuzzer committed almost nothing: {total_commits}"
    );
}
