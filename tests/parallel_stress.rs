//! Parallel stress: every §6/§7 algorithm under the handle-based
//! [`run_parallel`] harness — real OS threads, each owning its own
//! `TxnHandle`, no whole-system lock — with the OS scheduler providing
//! genuinely nondeterministic interleavings.
//!
//! Every run must still pass the serializability oracle, and each
//! algorithm's audit *pattern* (which proof obligations it discharges,
//! which it never violates) must survive real concurrency, not just the
//! seeded single-threaded schedulers.

use pushpull::core::error::{Clause, Rule};
use pushpull::core::lang::Code;
use pushpull::core::op::ThreadId;
use pushpull::core::serializability::check_machine;
use pushpull::harness::run_parallel;
use pushpull::spec::counter::{Counter, CtrMethod};
use pushpull::spec::kvmap::{KvMap, MapMethod};
use pushpull::spec::rwmem::{Loc, MemMethod, RwMem};
use pushpull::spec::set::SetMethod;
use pushpull::tm::mixed::{methods, mixed_spec};
use pushpull::tm::optimistic::ReadPolicy;
use pushpull::tm::{
    BoostingSystem, CheckpointOptimistic, DependentSystem, HtmSystem, IrrevocableSystem,
    MatveevShavitSystem, MixedSystem, OptimisticSystem, Tl2System, TwoPhaseLocking,
};

/// Generous per-thread tick budget: threshold-based abort policies bound
/// every wait, so a run that exhausts this has genuinely wedged.
const BUDGET: usize = 2_000_000;

const ROUNDS: usize = 4;

fn rmw(l: u32, v: i64) -> Vec<Code<MemMethod>> {
    vec![Code::seq_all(vec![
        Code::method(MemMethod::Read(Loc(l))),
        Code::method(MemMethod::Write(Loc(l), v)),
    ])]
}

/// §6.3 boosting across 8 OS threads contending on 4 keys. APP ticks
/// touch no global lock; the abstract lock manager serializes conflicts.
#[test]
fn parallel_boosting_eight_threads() {
    for round in 0..ROUNDS {
        let programs: Vec<_> = (0..8u64)
            .map(|t| {
                vec![Code::seq_all(vec![
                    Code::method(MapMethod::Put(t % 4, t as i64)),
                    Code::method(MapMethod::Get((t + 1) % 4)),
                ])]
            })
            .collect();
        let sys = BoostingSystem::new(KvMap::new(), programs);
        let (sys, outcome) = run_parallel(sys, BUDGET, None).unwrap();
        assert!(outcome.completed, "round {round} incomplete");
        assert_eq!(sys.stats().commits, 8, "round {round}");
        let audit = sys.machine().audit();
        // Every commit discharges CMT criterion (iii) exactly once.
        assert_eq!(
            audit.discharged_count(Rule::Cmt, Clause::Iii),
            8,
            "round {round}"
        );
        let report = check_machine(sys.machine());
        assert!(report.is_serializable(), "round {round}: {report}");
    }
}

/// §6.2 optimistic (snapshot reads) across 6 OS threads on 2 locations.
/// (Unlike the seeded runs, a commit-time push batch can conflict *mid*
/// batch here, so the abort path may legitimately UNPUSH the partial
/// batch — the parallel invariant is the CMT discharge pattern.)
#[test]
fn parallel_optimistic_six_threads() {
    for round in 0..ROUNDS {
        let programs: Vec<_> = (0..6u32)
            .map(|t| {
                vec![Code::seq_all(vec![
                    Code::method(MemMethod::Read(Loc(t % 2))),
                    Code::method(MemMethod::Write(Loc(t % 2), i64::from(t))),
                ])]
            })
            .collect();
        let sys = OptimisticSystem::new(RwMem::new(), programs, ReadPolicy::Snapshot);
        let (sys, outcome) = run_parallel(sys, BUDGET, None).unwrap();
        assert!(outcome.completed, "round {round} incomplete");
        assert_eq!(sys.stats().commits, 6, "round {round}");
        let audit = sys.machine().audit();
        assert_eq!(
            audit.discharged_count(Rule::Cmt, Clause::Iii),
            6,
            "round {round}"
        );
        let report = check_machine(sys.machine());
        assert!(report.is_serializable(), "round {round}: {report}");
    }
}

/// §6.3 Matveev–Shavit: even under full write-write contention on real
/// threads, writers never abort — the commit token orders their bursts.
#[test]
fn parallel_pessimistic_writers_never_abort() {
    for round in 0..ROUNDS {
        let prog = |v: i64| vec![Code::method(MemMethod::Write(Loc(0), v))];
        let sys = MatveevShavitSystem::new(RwMem::new(), vec![prog(1), prog(2), prog(3), prog(4)]);
        let (sys, outcome) = run_parallel(sys, BUDGET, None).unwrap();
        assert!(outcome.completed, "round {round} incomplete");
        assert_eq!(sys.stats().commits, 4, "round {round}");
        assert_eq!(
            sys.stats().aborts,
            0,
            "round {round}: writers must not abort"
        );
        let report = check_machine(sys.machine());
        assert!(report.is_serializable(), "round {round}: {report}");
    }
}

/// §6.2 concrete TL2 under real contention: version-clock validation
/// aborts resolve every race, and every run serializes.
#[test]
fn parallel_tl2_four_threads() {
    for round in 0..ROUNDS {
        let sys = Tl2System::new(vec![rmw(0, 1), rmw(1, 2), rmw(0, 3), rmw(1, 4)]);
        let (sys, outcome) = run_parallel(sys, BUDGET, None).unwrap();
        assert!(outcome.completed, "round {round} incomplete");
        assert_eq!(sys.stats().commits, 4, "round {round}");
        let report = check_machine(sys.machine());
        assert!(report.is_serializable(), "round {round}: {report}");
    }
}

/// §6.3 strict 2PL: shared read locks admit concurrent read pushes
/// (reads move across reads) and exclusive locks fence writes, so a 2PL
/// run discharges PUSH obligations but never violates one — even with
/// the interleaving chosen by the OS scheduler.
#[test]
fn parallel_twophase_never_violates_push_criteria() {
    for round in 0..ROUNDS {
        let read0 = || vec![Code::method(MemMethod::Read(Loc(0)))];
        let sys = TwoPhaseLocking::new(vec![read0(), read0(), rmw(1, 7), rmw(1, 8)]);
        let (sys, outcome) = run_parallel(sys, BUDGET, None).unwrap();
        assert!(outcome.completed, "round {round} incomplete");
        assert_eq!(sys.stats().commits, 4, "round {round}");
        let audit = sys.machine().audit();
        assert_eq!(
            audit.violated_count(Rule::Push, Clause::Ii),
            0,
            "round {round}"
        );
        assert_eq!(
            audit.violated_count(Rule::Push, Clause::Iii),
            0,
            "round {round}"
        );
        assert!(
            audit.discharged_count(Rule::Push, Clause::Ii) > 0,
            "round {round}"
        );
        let report = check_machine(sys.machine());
        assert!(report.is_serializable(), "round {round}: {report}");
    }
}

/// §7 simulated HTM: eager word-granularity conflict detection
/// (requester loses) across 4 OS threads.
#[test]
fn parallel_htm_four_threads() {
    for round in 0..ROUNDS {
        let sys = HtmSystem::new(vec![rmw(0, 1), rmw(1, 2), rmw(0, 3), rmw(2, 4)]);
        let (sys, outcome) = run_parallel(sys, BUDGET, None).unwrap();
        assert!(outcome.completed, "round {round} incomplete");
        assert_eq!(sys.stats().commits, 4, "round {round}");
        let report = check_machine(sys.machine());
        assert!(report.is_serializable(), "round {round}: {report}");
    }
}

/// §6.4 irrevocability: the eager-PUSH thread never aborts while racing
/// optimistic threads on the same locations, on real OS threads.
#[test]
fn parallel_irrevocable_thread_never_aborts() {
    for round in 0..ROUNDS {
        let programs = vec![rmw(0, 10), rmw(0, 20), rmw(1, 30), rmw(0, 40)];
        let sys = IrrevocableSystem::new(RwMem::new(), programs, ThreadId(0));
        let (sys, outcome) = run_parallel(sys, BUDGET, None).unwrap();
        assert!(outcome.completed, "round {round} incomplete");
        assert_eq!(sys.stats().commits, 4, "round {round}");
        assert_eq!(
            sys.irrevocable_aborts(),
            0,
            "round {round}: irrevocable aborted"
        );
        let report = check_machine(sys.machine());
        assert!(report.is_serializable(), "round {round}: {report}");
    }
}

/// §6.2 checkpoint/partial-abort optimism under contention: invalidated
/// suffixes rewind rather than full-abort, and every run serializes.
#[test]
fn parallel_checkpoint_four_threads() {
    for round in 0..ROUNDS {
        let prog = |l: u32, v: i64| {
            vec![Code::seq_all(vec![
                Code::method(MemMethod::Read(Loc(l))),
                Code::method(MemMethod::Read(Loc(l + 1))),
                Code::method(MemMethod::Write(Loc(l), v)),
            ])]
        };
        let sys = CheckpointOptimistic::new(
            RwMem::new(),
            vec![prog(0, 1), prog(0, 2), prog(1, 3), prog(1, 4)],
        );
        let (sys, outcome) = run_parallel(sys, BUDGET, None).unwrap();
        assert!(outcome.completed, "round {round} incomplete");
        assert_eq!(sys.stats().commits, 4, "round {round}");
        let report = check_machine(sys.machine());
        assert!(report.is_serializable(), "round {round}: {report}");
    }
}

/// §6.5 dependent transactions: eager release publishes uncommitted
/// effects, racing threads PULL them and gate their commits; every
/// dependency is resolved (or detangled) by the end.
#[test]
fn parallel_dependent_four_threads() {
    for round in 0..ROUNDS {
        let programs: Vec<_> = (0..4i64)
            .map(|t| {
                vec![Code::seq_all(vec![
                    Code::method(CtrMethod::Add(t + 1)),
                    Code::method(CtrMethod::Get),
                ])]
            })
            .collect();
        let sys = DependentSystem::new(Counter::new(), programs, true);
        let (sys, outcome) = run_parallel(sys, BUDGET, None).unwrap();
        assert!(outcome.completed, "round {round} incomplete");
        assert_eq!(sys.stats().commits, 4, "round {round}");
        for t in 0..4 {
            assert!(
                sys.dependencies(ThreadId(t)).is_empty(),
                "round {round}: thread {t} still has dependencies"
            );
        }
        let report = check_machine(sys.machine());
        assert!(report.is_serializable(), "round {round}: {report}");
    }
}

/// §7 mixed boosting + HTM transactions on 4 OS threads: boosted
/// skiplist/hash-table ops share eagerly while HTM words conflict-check,
/// with partial HTM rewinds — still serializable on every run.
#[test]
fn parallel_mixed_four_threads() {
    for round in 0..ROUNDS {
        let programs: Vec<_> = (0..4u64)
            .map(|t| {
                vec![Code::seq_all(vec![
                    Code::method(methods::skiplist(SetMethod::Add(t))),
                    Code::method(methods::size(CtrMethod::Add(1))),
                    Code::method(methods::hash_table(MapMethod::Put(t, t as i64))),
                    Code::method(methods::mem(MemMethod::Write(Loc((t % 2) as u32), 1))),
                ])]
            })
            .collect();
        let sys = MixedSystem::new(mixed_spec(), programs);
        let (sys, outcome) = run_parallel(sys, BUDGET, None).unwrap();
        assert!(outcome.completed, "round {round} incomplete");
        assert_eq!(sys.stats().commits, 4, "round {round}");
        let report = check_machine(sys.machine());
        assert!(report.is_serializable(), "round {round}: {report}");
    }
}
