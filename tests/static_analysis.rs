//! The static criteria prover end to end: analyze a workload, install
//! the plan through [`run_parallel`], and check that
//!
//! 1. proven mover clauses are *elided* at runtime (the audit's
//!    `statically_discharged` column fills, `mover_queries` drops) while
//!    the ledger still closes exactly — every criterion evaluation lands
//!    in `discharged`, `violated` or `statically_discharged`, and the
//!    per-obligation totals match a plan-free run of the same workload;
//! 2. results are unchanged: same commits, serializability oracle green
//!    (debug builds additionally re-run every elided predicate inside
//!    the machine and panic on disagreement);
//! 3. analysis-enabled runs survive fault injection;
//! 4. a driver that mis-declares its §6 rule pattern is caught by the
//!    `pattern-divergence` lint (the negative test).

use std::sync::Arc;

use pushpull::analysis::{analyze, check_declaration, Severity, PATTERN_DIVERGENCE};
use pushpull::core::error::{Clause, MachineError, Rule};
use pushpull::core::faults::{FaultHook, FaultKind};
use pushpull::core::lang::Code;
use pushpull::core::op::ThreadId;
use pushpull::core::serializability::check_machine;
use pushpull::core::RulePattern;
use pushpull::harness::testutil::assert_ledger_closes;
use pushpull::harness::{run, run_parallel, FaultPlan, RoundRobin};
use pushpull::spec::kvmap::{KvMap, MapMethod};
use pushpull::tm::{full_rule_pattern, BoostingSystem, ParallelSystem, Tick, TmSystem};

const BUDGET: usize = 2_000_000;

/// Disjoint-key workload: every thread writes its own keys and reads a
/// key nobody writes, so every ordered method pair in the union
/// footprint is a proven mover (distinct keys, or read/read) and all
/// four mover clauses discharge statically.
fn disjoint_key_programs(threads: u64) -> Vec<Vec<Code<MapMethod>>> {
    (0..threads)
        .map(|t| {
            vec![
                Code::seq_all(vec![
                    Code::method(MapMethod::Put(t, t as i64)),
                    Code::method(MapMethod::Get(1000 + t)),
                ]),
                Code::method(MapMethod::Put(t + 100, 1)),
            ]
        })
        .collect()
}

/// Obligations whose loops the prover can elide on this workload.
const MOVER_OBLIGATIONS: [(Rule, Clause); 4] = [
    (Rule::Push, Clause::I),
    (Rule::Push, Clause::Ii),
    (Rule::UnPush, Clause::I),
    (Rule::Pull, Clause::Iii),
];

#[test]
fn static_plan_elides_checks_and_ledger_closes() {
    let programs = disjoint_key_programs(6);
    let plan = analyze(&KvMap::new(), &programs);
    let facts = plan
        .discharge
        .as_ref()
        .expect("disjoint keys: all four mover clauses must be provable");
    for (rule, clause) in MOVER_OBLIGATIONS {
        assert!(facts.discharges(rule, clause), "{rule} {clause} unproven");
    }
    assert_eq!(plan.errors(), 0, "{plan}");

    // Deterministic round-robin schedule so the armed and plan-free runs
    // reach every criterion the same number of times (pull timing — and
    // hence criterion counts — varies under OS-thread interleavings).
    let mut base = BoostingSystem::new(KvMap::new(), programs.clone());
    run(&mut base, &mut RoundRobin, BUDGET).unwrap();
    assert!(base.is_done());
    let base_audit = base.machine().audit();
    assert_eq!(base_audit.statically_discharged_total(), 0);

    // Same schedule, facts armed.
    let mut sys = BoostingSystem::new(KvMap::new(), programs);
    sys.set_static_discharge(plan.discharge.clone());
    run(&mut sys, &mut RoundRobin, BUDGET).unwrap();
    assert!(sys.is_done());
    assert_eq!(sys.stats().commits, base.stats().commits);
    let audit = sys.machine().audit();

    // The proven clauses were reached, every reach was elided, the
    // static column exactly absorbs the baseline's dynamic discharges,
    // and the elision measurably cut mover queries.
    assert_ledger_closes(&audit, &base_audit, &MOVER_OBLIGATIONS);

    // And harmless: the oracle still passes (in debug builds the machine
    // also re-ran every elided predicate and would have panicked on any
    // disagreement).
    let report = check_machine(sys.machine());
    assert!(report.is_serializable(), "{report}");
}

#[test]
fn analysis_enabled_run_survives_fault_injection() {
    for seed in 1..=3u64 {
        let programs = disjoint_key_programs(4);
        let plan = analyze(&KvMap::new(), &programs);
        assert!(plan.discharge.is_some());
        let sys = BoostingSystem::new(KvMap::new(), programs);
        // Kills exercise the abort path, so the elided UNPUSH (i) loop
        // actually runs (statically) under the same chaos the dynamic
        // check would face.
        let faults = Arc::new(FaultPlan::seeded(seed, sys.thread_count(), FaultKind::Kill));
        sys.machine()
            .set_fault_hook(Some(faults.clone() as Arc<dyn FaultHook>));
        let (sys, out) = run_parallel(sys, BUDGET, Some(&plan)).unwrap();
        assert!(out.completed, "seed {seed}: faulted run wedged");
        let audit = sys.machine().audit();
        assert!(audit.statically_discharged_total() > 0, "seed {seed}");
        let report = check_machine(sys.machine());
        assert!(report.is_serializable(), "seed {seed}: {report}");
    }
}

/// A wrapper that forwards a real boosting system but lies about its §6
/// rule pattern: it claims to run without PUSH (or CMT), which no
/// committing Push/Pull driver can.
struct Misdeclared(BoostingSystem<KvMap>);

impl TmSystem for Misdeclared {
    fn tick(&mut self, tid: ThreadId) -> Result<Tick, MachineError> {
        self.0.tick(tid)
    }
    fn thread_count(&self) -> usize {
        self.0.thread_count()
    }
    fn is_done(&self) -> bool {
        self.0.is_done()
    }
    fn name(&self) -> &'static str {
        "misdeclared-boosting"
    }
    fn declared_pattern(&self) -> Option<RulePattern> {
        Some(RulePattern::from_iter([Rule::App, Rule::Pull]))
    }
}

impl ParallelSystem for Misdeclared {
    fn workers(&mut self) -> Vec<pushpull::tm::Worker<'_>> {
        self.0.workers()
    }
}

#[test]
fn mis_declared_driver_is_caught() {
    let programs = disjoint_key_programs(2);
    let spec = KvMap::new();

    // The genuine driver declares all seven rules: no error (at most a
    // note that its abort path is conflict-dead on this workload).
    let real = BoostingSystem::new(KvMap::new(), programs.clone());
    let mut plan = analyze(&spec, &programs);
    let diag = check_declaration(
        &mut plan,
        &spec,
        &programs,
        real.name(),
        real.declared_pattern(),
    );
    assert!(
        diag.as_ref().is_none_or(|d| d.severity < Severity::Error),
        "genuine declaration must not error: {diag:?}"
    );
    assert_eq!(real.declared_pattern(), Some(full_rule_pattern()));

    // The liar is caught: the workload requires PUSH and CMT, which the
    // declaration omits.
    let liar = Misdeclared(BoostingSystem::new(KvMap::new(), programs.clone()));
    let mut plan = analyze(&spec, &programs);
    let diag = check_declaration(
        &mut plan,
        &spec,
        &programs,
        liar.name(),
        liar.declared_pattern(),
    )
    .expect("mis-declaration must produce a diagnostic");
    assert_eq!(diag.severity, Severity::Error);
    assert_eq!(diag.lint, PATTERN_DIVERGENCE);
    assert!(diag.message.contains("misdeclared-boosting"), "{diag}");
    assert_eq!(plan.errors(), 1);
}

#[test]
fn conflicting_workload_gets_no_elision_but_same_results() {
    // All threads hammer one key: nothing is provable, the plan is
    // empty, and an installed empty plan changes nothing.
    let programs: Vec<Vec<Code<MapMethod>>> = (0..4)
        .map(|t| {
            vec![Code::seq_all(vec![
                Code::method(MapMethod::Put(0, t)),
                Code::method(MapMethod::Get(0)),
            ])]
        })
        .collect();
    let plan = analyze(&KvMap::new(), &programs);
    assert!(
        plan.discharge.is_none(),
        "single-key write contention proves nothing: {plan}"
    );
    let sys = BoostingSystem::new(KvMap::new(), programs);
    let (sys, out) = run_parallel(sys, BUDGET, Some(&plan)).unwrap();
    assert!(out.completed);
    let audit = sys.machine().audit();
    assert_eq!(audit.statically_discharged_total(), 0);
    assert_eq!(sys.stats().commits, 4);
    assert!(check_machine(sys.machine()).is_serializable());
}
