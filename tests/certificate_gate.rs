//! The certificate gate end to end: strict mode
//! (`set_require_certificate(true)`) must never trust uncertified
//! declarations —
//!
//! 1. sharding an uncertified log demotes to the sticky coarse path
//!    (sound: identical verdicts, every critical section takes all
//!    shard locks) with a recorded diagnostic, never a panic or a
//!    mis-route;
//! 2. arming static discharge without a valid certificate is refused
//!    (the audit's `statically_discharged` column stays empty);
//! 3. a certified plan (from `analyze_certified`) arms and routes
//!    fine-grained exactly as the historical trust-the-declarations
//!    path — bit-identical traces under the deterministic scheduler.

use pushpull::analysis::{analyze, analyze_certified};
use pushpull::core::lang::Code;
use pushpull::core::serializability::check_machine;
use pushpull::harness::{run, run_parallel_sharded, RoundRobin};
use pushpull::spec::kvmap::{KvMap, MapMethod};
use pushpull::tm::{BoostingSystem, TmSystem};

const BUDGET: usize = 2_000_000;
const THREADS: u64 = 4;

/// Each thread puts its own key and reads its neighbour's: the
/// footprint is fully declared (no `Size`), keys 0..THREADS.
fn programs() -> Vec<Vec<Code<MapMethod>>> {
    (0..THREADS)
        .map(|t| {
            vec![Code::seq_all(vec![
                Code::method(MapMethod::Put(t, 1)),
                Code::method(MapMethod::Get((t + 1) % THREADS)),
            ])]
        })
        .collect()
}

/// The bounded spec variant the certifier can exhaustively check.
fn bounded_spec() -> KvMap {
    KvMap::bounded((0..THREADS).collect(), vec![1])
}

#[test]
fn strict_uncertified_sharding_demotes_to_coarse_with_same_verdicts() {
    // Baseline: single-lock log, strict mode off.
    let mut base = BoostingSystem::new(KvMap::new(), programs());
    let out = run(&mut base, &mut RoundRobin, BUDGET).unwrap();
    assert!(out.completed);
    let base_commits = base.machine().committed_txns().len();
    let base_trace = base.machine().trace().render();

    // Strict mode + shards, no certificate: reshards, but demoted.
    let mut sys = BoostingSystem::new(KvMap::new(), programs());
    sys.set_require_certificate(true);
    sys.set_log_shards(4);
    assert_eq!(
        sys.machine().log_shards(),
        4,
        "resharding itself still happens"
    );
    assert!(
        sys.machine().global_state().coarse_mode(),
        "uncertified fine-grained routing must demote to coarse"
    );
    let diags = sys
        .arming_diagnostics()
        .expect("driver exposes the gate log");
    assert!(
        diags.iter().any(|d| d.contains("coarse")),
        "demotion must be recorded: {diags:?}"
    );

    // The demoted run completes with identical verdicts — coarse mode
    // changes the cost of the criteria, never their outcome.
    let out = run(&mut sys, &mut RoundRobin, BUDGET).unwrap();
    assert!(out.completed, "demoted run must not wedge");
    assert_eq!(sys.machine().committed_txns().len(), base_commits);
    assert_eq!(sys.machine().trace().render(), base_trace);
    let report = check_machine(sys.machine());
    assert!(report.is_serializable(), "{report}");
}

#[test]
fn strict_mode_on_an_already_sharded_uncertified_log_demotes_immediately() {
    let mut sys = BoostingSystem::new(KvMap::new(), programs());
    sys.set_log_shards(4);
    assert!(!sys.machine().global_state().coarse_mode());
    sys.set_require_certificate(true);
    assert!(
        sys.machine().global_state().coarse_mode(),
        "enabling strict mode on a sharded uncertified log demotes on the spot"
    );
    let out = run(&mut sys, &mut RoundRobin, BUDGET).unwrap();
    assert!(out.completed);
    assert!(check_machine(sys.machine()).is_serializable());
}

#[test]
fn strict_uncertified_arming_is_refused() {
    let programs = programs();
    let plan = analyze(&KvMap::new(), &programs);
    assert!(
        plan.discharge.is_some(),
        "PUSH (i) at least must be provable"
    );

    let mut sys = BoostingSystem::new(KvMap::new(), programs);
    sys.set_require_certificate(true);
    sys.set_static_discharge(plan.discharge.clone());
    let out = run(&mut sys, &mut RoundRobin, BUDGET).unwrap();
    assert!(out.completed);
    // Nothing was elided: the refusal kept the exact dynamic checks.
    assert_eq!(sys.machine().audit().statically_discharged_total(), 0);
    let diags = sys.arming_diagnostics().unwrap();
    assert!(
        diags.iter().any(|d| d.contains("refused")),
        "refusal must be recorded: {diags:?}"
    );
    assert!(check_machine(sys.machine()).is_serializable());
}

#[test]
fn certified_plan_arms_and_routes_fine_under_strict_mode() {
    let programs = programs();
    let spec = bounded_spec();
    let plan = analyze_certified(&spec, &programs, "kvmap");
    assert_eq!(plan.errors(), 0, "{plan}");
    assert!(
        plan.certificate.is_some(),
        "the bounded kvmap spec must certify: {plan}"
    );
    assert_eq!(plan.recommended_shards(), THREADS as usize);

    let sys = BoostingSystem::new(bounded_spec(), programs);
    sys.set_require_certificate(true);
    let (sys, out) =
        run_parallel_sharded(sys, BUDGET, Some(&plan), plan.recommended_shards()).unwrap();
    assert!(out.completed);
    assert_eq!(sys.machine().log_shards(), THREADS as usize);
    assert!(
        !sys.machine().global_state().coarse_mode(),
        "a certified plan keeps fine-grained routing"
    );
    let diags = sys.arming_diagnostics().unwrap();
    assert!(
        diags.is_empty(),
        "no refusals with a valid certificate: {diags:?}"
    );
    assert!(
        sys.machine().audit().statically_discharged_total() > 0,
        "the certified plan's proven clauses must elide"
    );
    assert_eq!(sys.machine().committed_txns().len(), THREADS as usize);
    assert!(check_machine(sys.machine()).is_serializable());
}

#[test]
fn certificate_gated_sharding_is_trace_identical_to_legacy() {
    // Same shards, same deterministic schedule: legacy (strict off,
    // no certificate) vs certificate-gated (strict on, certified).
    let spec = bounded_spec();
    let plan = analyze_certified(&spec, &programs(), "kvmap");
    let cert = plan.certificate.clone().expect("bounded kvmap certifies");

    let mut legacy = BoostingSystem::new(bounded_spec(), programs());
    legacy.set_log_shards(4);
    let out = run(&mut legacy, &mut RoundRobin, BUDGET).unwrap();
    assert!(out.completed);

    let mut gated = BoostingSystem::new(bounded_spec(), programs());
    gated.install_certificate(Some(cert));
    gated.set_require_certificate(true);
    gated.set_log_shards(4);
    assert!(!gated.machine().global_state().coarse_mode());
    let out = run(&mut gated, &mut RoundRobin, BUDGET).unwrap();
    assert!(out.completed);

    assert_eq!(
        gated.machine().trace().render(),
        legacy.machine().trace().render(),
        "certificate gating must be behaviourally invisible when certified"
    );
    assert_eq!(
        gated.machine().committed_txns().len(),
        legacy.machine().committed_txns().len()
    );
}
