//! Golden traces: the exact rendered rule sequences of the paper's two
//! worked examples, pinned as strings. Machine behaviour is fully
//! deterministic given a fixed script, so any drift in rule order, id
//! assignment or rendering shows up here.

use pushpull::core::lang::Code;
use pushpull::core::serializability::check_machine;
use pushpull::core::Machine;
use pushpull::harness::{run, RandomSched};
use pushpull::spec::counter::CtrMethod;
use pushpull::spec::kvmap::{KvMap, MapMethod};
use pushpull::spec::rwmem::{Loc, MemMethod, RwMem};
use pushpull::spec::set::SetMethod;
use pushpull::tm::mixed::{methods, mixed_spec};
use pushpull::tm::optimistic::{OptimisticSystem, ReadPolicy};
use pushpull::tm::BoostingSystem;

/// Figure 7, scripted, with the golden rendering.
#[test]
fn figure7_golden_trace() {
    let mut m = Machine::new(mixed_spec());
    let t = m.add_thread(vec![Code::seq_all(vec![
        Code::method(methods::skiplist(SetMethod::Add(1))),
        Code::method(methods::size(CtrMethod::Add(1))),
        Code::method(methods::hash_table(MapMethod::Put(1, 2))),
        Code::choice(
            Code::method(methods::mem(MemMethod::Write(Loc(0), 1))),
            Code::method(methods::mem(MemMethod::Write(Loc(1), 1))),
        ),
    ])]);

    let insert = m
        .app_method(t, &methods::skiplist(SetMethod::Add(1)))
        .unwrap();
    m.push(t, insert).unwrap();
    let size_inc = m.app_method(t, &methods::size(CtrMethod::Add(1))).unwrap();
    let put = m
        .app_method(t, &methods::hash_table(MapMethod::Put(1, 2)))
        .unwrap();
    m.push(t, put).unwrap();
    let x_inc = m
        .app_method(t, &methods::mem(MemMethod::Write(Loc(0), 1)))
        .unwrap();
    m.push(t, size_inc).unwrap();
    m.push(t, x_inc).unwrap();
    m.unpush(t, x_inc).unwrap();
    m.unpush(t, size_inc).unwrap();
    m.unapp(t).unwrap();
    let y_inc = m
        .app_method(t, &methods::mem(MemMethod::Write(Loc(1), 1)))
        .unwrap();
    m.push(t, size_inc).unwrap();
    m.push(t, y_inc).unwrap();
    m.commit(t).unwrap();

    let expected = "\
T0: begin t0
T0: APP(add(1)#0) -> L(L(SetRet(true)))
T0: PUSH(add(1)#0)
T0: APP(add(1)#1) -> R(L(Ack))
T0: APP(put(1,2)#2) -> L(R(Prev(None)))
T0: PUSH(put(1,2)#2)
T0: APP(wr(x0,1)#3) -> R(R(Ack))
T0: PUSH(add(1)#1)
T0: PUSH(wr(x0,1)#3)
T0: UNPUSH(wr(x0,1)#3)
T0: UNPUSH(add(1)#1)
T0: UNAPP(wr(x0,1)#3)
T0: APP(wr(x1,1)#4) -> R(R(Ack))
T0: PUSH(add(1)#1)
T0: PUSH(wr(x1,1)#4)
T0: CMT t0 [#0, #2, #1, #4]
";
    assert_eq!(m.trace().render(), expected);
}

/// Figure 2's put/get/abort cycle, golden.
#[test]
fn figure2_golden_trace() {
    let mut m = Machine::new(KvMap::new());
    let t = m.add_thread(vec![Code::seq(
        Code::method(MapMethod::Put(1, 100)),
        Code::method(MapMethod::Get(1)),
    )]);
    // APP;PUSH, then abort (UNPUSH;UNAPP), then the full retry.
    let p = m.app_auto(t).unwrap();
    m.push(t, p).unwrap();
    m.unpush(t, p).unwrap();
    m.unapp(t).unwrap();
    m.abort_and_retry(t).unwrap();
    let p = m.app_auto(t).unwrap();
    m.push(t, p).unwrap();
    let g = m.app_auto(t).unwrap();
    m.push(t, g).unwrap();
    m.commit(t).unwrap();

    let expected = "\
T0: begin t0
T0: APP(put(1,100)#0) -> Prev(None)
T0: PUSH(put(1,100)#0)
T0: UNPUSH(put(1,100)#0)
T0: UNAPP(put(1,100)#0)
T0: abort t0
T0: begin t1
T0: APP(put(1,100)#1) -> Prev(None)
T0: PUSH(put(1,100)#1)
T0: APP(get(1)#2) -> Val(Some(100))
T0: PUSH(get(1)#2)
T0: CMT t1 [#1, #2]
";
    assert_eq!(m.trace().render(), expected);
}

/// The incremental (committed-prefix cached) and full-replay `allowed`
/// evaluations must be *observationally identical* on the same
/// deterministic run: bit-identical trace renderings, bit-identical
/// audit tallies (discharged, violated, and raw query counts), and the
/// same serializability-oracle verdict. The cache changes the cost of
/// the criteria, never their meaning.
#[test]
fn incremental_matches_full_replay_on_golden_runs() {
    fn boosting_run(
        incremental: bool,
        seed: u64,
    ) -> (String, pushpull::core::audit::CriteriaAudit, bool) {
        let programs: Vec<_> = (0..3u64)
            .map(|t| {
                vec![Code::seq_all(vec![
                    Code::method(MapMethod::Put(t % 2, t as i64)),
                    Code::method(MapMethod::Get((t + 1) % 2)),
                ])]
            })
            .collect();
        let mut sys = BoostingSystem::new(KvMap::new(), programs);
        sys.machine().set_incremental(incremental);
        run(&mut sys, &mut RandomSched::new(seed), 100_000).unwrap();
        let m = sys.machine();
        (
            m.trace().render(),
            m.audit(),
            check_machine(m).is_serializable(),
        )
    }

    fn optimistic_run(
        incremental: bool,
        seed: u64,
    ) -> (String, pushpull::core::audit::CriteriaAudit, bool) {
        let programs: Vec<_> = (0..3u32)
            .map(|t| {
                vec![Code::seq_all(vec![
                    Code::method(MemMethod::Read(Loc(t % 2))),
                    Code::method(MemMethod::Write(Loc(t % 2), i64::from(t))),
                ])]
            })
            .collect();
        let mut sys = OptimisticSystem::new(RwMem::new(), programs, ReadPolicy::Snapshot);
        sys.machine().set_incremental(incremental);
        run(&mut sys, &mut RandomSched::new(seed), 100_000).unwrap();
        let m = sys.machine();
        (
            m.trace().render(),
            m.audit(),
            check_machine(m).is_serializable(),
        )
    }

    for seed in 1..=5u64 {
        let (trace_inc, audit_inc, ok_inc) = boosting_run(true, seed);
        let (trace_full, audit_full, ok_full) = boosting_run(false, seed);
        assert_eq!(
            trace_inc, trace_full,
            "boosting seed {seed}: traces diverge"
        );
        assert_eq!(
            audit_inc, audit_full,
            "boosting seed {seed}: audits diverge"
        );
        assert_eq!(ok_inc, ok_full, "boosting seed {seed}: verdicts diverge");
        assert!(ok_inc, "boosting seed {seed}: not serializable");

        let (trace_inc, audit_inc, ok_inc) = optimistic_run(true, seed);
        let (trace_full, audit_full, ok_full) = optimistic_run(false, seed);
        assert_eq!(
            trace_inc, trace_full,
            "optimistic seed {seed}: traces diverge"
        );
        assert_eq!(
            audit_inc, audit_full,
            "optimistic seed {seed}: audits diverge"
        );
        assert_eq!(ok_inc, ok_full, "optimistic seed {seed}: verdicts diverge");
        assert!(ok_inc, "optimistic seed {seed}: not serializable");
    }
}
