//! Sharded-vs-single-lock golden equivalence: resharding the shared log
//! changes the *cost* of the shared-rule critical sections, never their
//! verdicts.
//!
//! Every §6/§7 driver runs the same workload under the deterministic
//! round-robin scheduler at shard counts 1, 4 and 16. Because the
//! scheduler is deterministic and sharding must not change any criterion
//! verdict, all three runs must produce **bit-identical traces** (same
//! rules fired in the same order with the same operations), identical
//! commit counts, identical audit ledgers (the per-obligation
//! discharged/violated/statically-discharged columns — raw query counts
//! may differ, since multi-shard views replay merged logs where the
//! single-shard path uses the incremental prefix cache), and the same
//! serializability verdict.
//!
//! A kvmap workload containing `Size` (which declares no footprint)
//! additionally pins the sticky-coarse degradation path: shard counts
//! above 1 must fall back to whole-log evaluation without changing any
//! outcome.

use pushpull::core::lang::Code;
use pushpull::core::machine::Machine;
use pushpull::core::op::ThreadId;
use pushpull::core::serializability::check_machine;
use pushpull::core::spec::SeqSpec;
use pushpull::harness::testutil::assert_ledger_matches;
use pushpull::harness::{run, RoundRobin};
use pushpull::spec::counter::{Counter, CtrMethod};
use pushpull::spec::kvmap::{KvMap, MapMethod};
use pushpull::spec::rwmem::{Loc, MemMethod, RwMem};
use pushpull::spec::set::SetMethod;
use pushpull::tm::mixed::{methods, mixed_spec};
use pushpull::tm::optimistic::ReadPolicy;
use pushpull::tm::{
    BoostingSystem, CheckpointOptimistic, DependentSystem, HtmSystem, IrrevocableSystem,
    MatveevShavitSystem, MixedSystem, OptimisticSystem, Tl2System, TmSystem, TwoPhaseLocking,
};

const BUDGET: usize = 2_000_000;

/// Shard counts to compare against the single-lock baseline.
const SHARD_COUNTS: [usize; 2] = [4, 16];

/// One run: reshard, drive to completion round-robin, snapshot
/// everything the equivalence claim quantifies over.
fn golden<T, Sp>(
    label: &str,
    mut sys: T,
    shards: usize,
    machine: impl Fn(&T) -> &Machine<Sp>,
) -> (u64, String, pushpull::core::audit::CriteriaAudit)
where
    T: TmSystem,
    Sp: SeqSpec,
    Sp::Method: std::fmt::Display,
{
    sys.set_log_shards(shards);
    let out = run(&mut sys, &mut RoundRobin, BUDGET)
        .unwrap_or_else(|e| panic!("{label}@{shards}: machine error: {e}"));
    assert!(out.completed, "{label}@{shards}: wedged");
    let m = machine(&sys);
    assert_eq!(
        m.log_shards(),
        shards.max(1),
        "{label}: resharding did not take"
    );
    let report = check_machine(m);
    assert!(report.is_serializable(), "{label}@{shards}: {report}");
    let commits = m.committed_txns().len() as u64;
    (commits, m.trace().render(), m.audit())
}

/// Drives `make()`'s system at every shard count and asserts the
/// equivalence against the single-shard baseline.
fn assert_shard_equivalence<T, Sp>(
    label: &str,
    make: impl Fn() -> T,
    machine: impl Fn(&T) -> &Machine<Sp> + Copy,
) where
    T: TmSystem,
    Sp: SeqSpec,
    Sp::Method: std::fmt::Display,
{
    let (base_commits, base_trace, base_audit) = golden(label, make(), 1, machine);
    for shards in SHARD_COUNTS {
        let (commits, trace, audit) = golden(label, make(), shards, machine);
        assert_eq!(commits, base_commits, "{label}@{shards}: commits diverge");
        assert_eq!(
            trace, base_trace,
            "{label}@{shards}: traces diverge — sharding changed a verdict"
        );
        assert_ledger_matches(&audit, &base_audit);
    }
}

#[test]
fn boosting_sharding_is_verdict_equivalent() {
    let programs = || {
        (0..8u64)
            .map(|t| {
                vec![Code::seq_all(vec![
                    Code::method(MapMethod::Put(t % 4, t as i64)),
                    Code::method(MapMethod::Get((t + 1) % 4)),
                ])]
            })
            .collect::<Vec<_>>()
    };
    assert_shard_equivalence(
        "boosting/kvmap",
        || BoostingSystem::new(KvMap::new(), programs()),
        |s| s.machine(),
    );
}

#[test]
fn boosting_coarse_size_workload_is_verdict_equivalent() {
    // `Size` declares no footprint: every route after its first append
    // degrades to the sticky-coarse whole-log path. Outcomes still must
    // not change at any shard count.
    let programs = || {
        (0..4u64)
            .map(|t| {
                vec![Code::seq_all(vec![
                    Code::method(MapMethod::Put(t, t as i64)),
                    Code::method(MapMethod::Size),
                ])]
            })
            .collect::<Vec<_>>()
    };
    assert_shard_equivalence(
        "boosting/kvmap-size-coarse",
        || BoostingSystem::new(KvMap::new(), programs()),
        |s| s.machine(),
    );
}

#[test]
fn optimistic_sharding_is_verdict_equivalent() {
    let programs = || {
        (0..6u32)
            .map(|t| {
                vec![Code::seq_all(vec![
                    Code::method(MemMethod::Read(Loc(t % 2))),
                    Code::method(MemMethod::Write(Loc(t % 2), i64::from(t))),
                ])]
            })
            .collect::<Vec<_>>()
    };
    assert_shard_equivalence(
        "optimistic/rwmem",
        || OptimisticSystem::new(RwMem::new(), programs(), ReadPolicy::Snapshot),
        |s| s.machine(),
    );
}

#[test]
fn pessimistic_sharding_is_verdict_equivalent() {
    let prog = |v: i64| vec![Code::method(MemMethod::Write(Loc(0), v))];
    assert_shard_equivalence(
        "pessimistic/rwmem",
        || MatveevShavitSystem::new(RwMem::new(), vec![prog(1), prog(2), prog(3), prog(4)]),
        |s| s.machine(),
    );
}

fn rmw(l: u32, v: i64) -> Vec<Code<MemMethod>> {
    vec![Code::seq_all(vec![
        Code::method(MemMethod::Read(Loc(l))),
        Code::method(MemMethod::Write(Loc(l), v)),
    ])]
}

#[test]
fn tl2_sharding_is_verdict_equivalent() {
    assert_shard_equivalence(
        "tl2/rwmem",
        || Tl2System::new(vec![rmw(0, 1), rmw(1, 2), rmw(0, 3), rmw(1, 4)]),
        |s| s.machine(),
    );
}

#[test]
fn twophase_sharding_is_verdict_equivalent() {
    let read0 = || vec![Code::method(MemMethod::Read(Loc(0)))];
    assert_shard_equivalence(
        "2pl/rwmem",
        || TwoPhaseLocking::new(vec![read0(), read0(), rmw(1, 7), rmw(1, 8)]),
        |s| s.machine(),
    );
}

#[test]
fn htm_sharding_is_verdict_equivalent() {
    assert_shard_equivalence(
        "htm/rwmem",
        || HtmSystem::new(vec![rmw(0, 1), rmw(1, 2), rmw(0, 3), rmw(2, 4)]),
        |s| s.machine(),
    );
}

#[test]
fn irrevocable_sharding_is_verdict_equivalent() {
    assert_shard_equivalence(
        "irrevocable/rwmem",
        || {
            IrrevocableSystem::new(
                RwMem::new(),
                vec![rmw(0, 10), rmw(0, 20), rmw(1, 30), rmw(0, 40)],
                ThreadId(0),
            )
        },
        |s| s.machine(),
    );
}

#[test]
fn checkpoint_sharding_is_verdict_equivalent() {
    let prog = |l: u32, v: i64| {
        vec![Code::seq_all(vec![
            Code::method(MemMethod::Read(Loc(l))),
            Code::method(MemMethod::Read(Loc(l + 1))),
            Code::method(MemMethod::Write(Loc(l), v)),
        ])]
    };
    assert_shard_equivalence(
        "checkpoint/rwmem",
        || {
            CheckpointOptimistic::new(
                RwMem::new(),
                vec![prog(0, 1), prog(0, 2), prog(1, 3), prog(1, 4)],
            )
        },
        |s| s.machine(),
    );
}

#[test]
fn dependent_sharding_is_verdict_equivalent() {
    let programs = || {
        (0..4i64)
            .map(|t| {
                vec![Code::seq_all(vec![
                    Code::method(CtrMethod::Add(t + 1)),
                    Code::method(CtrMethod::Get),
                ])]
            })
            .collect::<Vec<_>>()
    };
    assert_shard_equivalence(
        "dependent/counter",
        || DependentSystem::new(Counter::new(), programs(), true),
        |s| s.machine(),
    );
}

#[test]
fn mixed_sharding_is_verdict_equivalent() {
    let programs = || {
        (0..4u64)
            .map(|t| {
                vec![Code::seq_all(vec![
                    Code::method(methods::skiplist(SetMethod::Add(t))),
                    Code::method(methods::size(CtrMethod::Add(1))),
                    Code::method(methods::hash_table(MapMethod::Put(t, t as i64))),
                    Code::method(methods::mem(MemMethod::Write(Loc((t % 2) as u32), 1))),
                ])]
            })
            .collect::<Vec<_>>()
    };
    assert_shard_equivalence(
        "mixed/product",
        || MixedSystem::new(mixed_spec(), programs()),
        |s| s.machine(),
    );
}

#[test]
fn midrun_resharding_preserves_state_and_verdicts() {
    // Resharding is also legal *between* ticks of a live run: stamps,
    // commit order and the audit must carry over, and the remainder of
    // the run must behave as if the layout had been there all along.
    let programs: Vec<_> = (0..6u64)
        .map(|t| {
            vec![
                Code::method(MapMethod::Put(t, t as i64)),
                Code::method(MapMethod::Put(t + 10, 1)),
            ]
        })
        .collect();
    let mut sys = BoostingSystem::new(KvMap::new(), programs);
    let mut sched = RoundRobin;
    // Drive partway: enough ticks for some pushes to land, not all.
    for _ in 0..4 {
        for t in 0..6 {
            let _ = sys.tick(ThreadId(t)).unwrap();
        }
    }
    sys.set_log_shards(8);
    let out = run(&mut sys, &mut sched, BUDGET).unwrap();
    assert!(out.completed);
    assert_eq!(sys.machine().log_shards(), 8);
    assert_eq!(sys.machine().committed_txns().len(), 12);
    let report = check_machine(sys.machine());
    assert!(report.is_serializable(), "{report}");
}
