//! E7 / §6.5: dependent transactions — dependency establishment, commit
//! gating, cascading aborts with partial detangling, and serializability
//! throughout.

use pushpull::core::lang::Code;
use pushpull::core::op::ThreadId;
use pushpull::core::serializability::check_machine;
use pushpull::harness::{run, RandomSched, RoundRobin};
use pushpull::spec::counter::{Counter, CtrMethod, CtrRet};
use pushpull::tm::dependent::DependentSystem;
use pushpull::tm::{Tick, TmSystem};

fn a_b_system(eager: bool) -> DependentSystem<Counter> {
    DependentSystem::new(
        Counter::new(),
        vec![
            vec![Code::method(CtrMethod::Add(1))],
            vec![Code::method(CtrMethod::Get)],
        ],
        eager,
    )
}

/// The §6.5 protocol: "A dependent transaction T will PULL the effects of
/// another transaction T′. This comes with the stipulation that T does
/// not commit until T′ has committed."
#[test]
fn commit_gated_on_dependency() {
    let mut sys = a_b_system(true);
    let (a, b) = (ThreadId(0), ThreadId(1));
    sys.tick(a).unwrap(); // begin
    sys.tick(a).unwrap(); // APP + early PUSH
    sys.tick(b).unwrap(); // begin: pulls the uncommitted add
    assert_eq!(sys.dependencies(b).len(), 1);
    sys.tick(b).unwrap(); // get observes the uncommitted 1
                          // B cannot commit while A is uncommitted.
    for _ in 0..3 {
        assert_eq!(sys.tick(b).unwrap(), Tick::Blocked);
    }
    // A commits; B follows.
    while sys.machine().thread(a).unwrap().commits() == 0 {
        sys.tick(a).unwrap();
    }
    run(&mut sys, &mut RoundRobin, 10_000).unwrap();
    assert_eq!(sys.stats().commits, 2);
    let report = check_machine(sys.machine());
    assert!(report.is_serializable(), "{report}");
    // Commit order must put A before B.
    let order: Vec<ThreadId> = sys
        .machine()
        .committed_txns()
        .iter()
        .map(|t| t.thread)
        .collect();
    assert_eq!(order, vec![a, b]);
    // And B really read the dependent value.
    assert_eq!(sys.machine().committed_txns()[1].ops[0].ret, CtrRet::Val(1));
}

/// "If T′ aborts, then T must abort. However, note that T must only move
/// backwards insofar as to detangle from T′."
#[test]
fn cascade_is_a_partial_rewind() {
    let mut sys = a_b_system(true);
    let (a, b) = (ThreadId(0), ThreadId(1));
    sys.tick(a).unwrap();
    sys.tick(a).unwrap();
    sys.tick(b).unwrap();
    sys.tick(b).unwrap(); // B: pulled + get applied
    let apps_before = sys
        .machine()
        .trace()
        .rule_names(b)
        .iter()
        .filter(|n| **n == "APP")
        .count();
    sys.force_abort(a);
    sys.tick(a).unwrap();
    // B detangles: exactly one UNAPP (the get) + one UNPULL — not a full
    // transaction abort (no ABORT event for this txn of B).
    sys.tick(b).unwrap();
    let names = sys.machine().trace().rule_names(b);
    let unapps = names.iter().filter(|n| **n == "UNAPP").count();
    let unpulls = names.iter().filter(|n| **n == "UNPULL").count();
    let aborts = names.iter().filter(|n| **n == "ABORT").count();
    assert_eq!(unapps, 1, "{names:?}");
    assert_eq!(unpulls, 1, "{names:?}");
    assert_eq!(aborts, 0, "detangling must not be a full abort: {names:?}");
    assert!(apps_before >= 1);
    // Both eventually commit (A retries), serializably.
    run(&mut sys, &mut RoundRobin, 10_000).unwrap();
    assert_eq!(sys.stats().commits, 2);
    assert!(check_machine(sys.machine()).is_serializable());
}

/// Chained dependencies: C depends on B depends on A; commits happen in
/// dependency order.
#[test]
fn dependency_chains_commit_in_order() {
    let mut sys = DependentSystem::new(
        Counter::new(),
        vec![
            vec![Code::method(CtrMethod::Add(1))],
            vec![Code::seq_all(vec![
                Code::method(CtrMethod::Get),
                Code::method(CtrMethod::Add(1)),
            ])],
            vec![Code::method(CtrMethod::Get)],
        ],
        true,
    );
    let (a, b, c) = (ThreadId(0), ThreadId(1), ThreadId(2));
    sys.tick(a).unwrap();
    sys.tick(a).unwrap(); // A pushes add (uncommitted)
    sys.tick(b).unwrap(); // B pulls A's add
    sys.tick(b).unwrap(); // B: get -> 1
    sys.tick(b).unwrap(); // B: add(1), early-pushed? (eager) — may or may not push
    sys.tick(c).unwrap(); // C pulls whatever is pushed
    run(&mut sys, &mut RandomSched::new(11), 200_000).unwrap();
    assert_eq!(sys.stats().commits, 3);
    let report = check_machine(sys.machine());
    assert!(report.is_serializable(), "{report}");
}

/// Many random interleavings of dependent transactions stay serializable
/// (uncommitted reads notwithstanding).
#[test]
fn randomized_dependent_sweep() {
    for seed in 1..=20u64 {
        let mut sys = DependentSystem::new(
            Counter::new(),
            vec![
                vec![Code::method(CtrMethod::Add(1))],
                vec![Code::method(CtrMethod::Add(2))],
                vec![Code::method(CtrMethod::Get)],
            ],
            true,
        );
        run(&mut sys, &mut RandomSched::new(seed), 400_000).unwrap();
        assert!(sys.is_done(), "seed {seed}");
        assert_eq!(sys.stats().commits, 3, "seed {seed}");
        let report = check_machine(sys.machine());
        assert!(report.is_serializable(), "seed {seed}: {report}");
    }
}

/// Breaking a dependency with UNPULL (§4's UNPULL application) when the
/// transaction never used the pulled value.
#[test]
fn unpull_breaks_unused_dependencies() {
    use pushpull::core::Machine;
    let mut m = Machine::new(Counter::new());
    let a = m.add_thread(vec![Code::method(CtrMethod::Add(1))]);
    let b = m.add_thread(vec![Code::method(CtrMethod::Add(5))]);
    let ia = m.app_auto(a).unwrap();
    m.push(a, ia).unwrap();
    m.pull(b, ia).unwrap();
    // B applies its own add — which commutes, so it does NOT depend on
    // the pulled op; UNPULL succeeds without any rewind.
    m.app_auto(b).unwrap();
    m.unpull(b, ia).unwrap();
    // B can now push+commit without waiting for A…
    // …except PUSH criterion (ii) — adds commute, so no conflict.
    m.push_all_and_commit(b).unwrap();
    // A commits later.
    m.commit(a).unwrap();
    assert!(check_machine(&m).is_serializable());
}
