//! Extension experiment (§4, PULL discussion): "In a transaction that
//! operates over two shared data-structures a and b, it may PULL in the
//! effects on a even if they occurred after the effects on b because the
//! transaction is only interested in modifying a."
//!
//! Non-chronological PULL — plus non-chronological PUSH and UNPUSH, the
//! other two order freedoms the model grants — checked directly against
//! the machine's criteria.

use pushpull::core::lang::Code;
use pushpull::core::serializability::check_machine;
use pushpull::core::{Machine, MachineError};
use pushpull::spec::composite::{Either, Product};
use pushpull::spec::counter::{Counter, CtrMethod};
use pushpull::spec::kvmap::{KvMap, MapMethod};
use pushpull::spec::set::{SetMethod, SetSpec};

type TwoStores = Product<SetSpec, KvMap>;

fn spec() -> TwoStores {
    Product::new(SetSpec::new(), KvMap::new())
}

fn set_m(m: SetMethod) -> Either<SetMethod, MapMethod> {
    Either::L(m)
}
fn map_m(m: MapMethod) -> Either<SetMethod, MapMethod> {
    Either::R(m)
}

/// A writer commits effects on structure `b` (map) BEFORE structure `a`
/// (set); a reader interested only in `a` pulls the `a`-effect first —
/// out of chronological order — and only later (never, in fact) needs
/// the `b`-effect.
#[test]
fn non_chronological_pull_is_admissible() {
    let mut m = Machine::new(spec());
    let writer = m.add_thread(vec![Code::seq_all(vec![
        Code::method(map_m(MapMethod::Put(1, 10))), // b first
        Code::method(set_m(SetMethod::Add(5))),     // a second
    ])]);
    let reader = m.add_thread(vec![Code::method(set_m(SetMethod::Contains(5)))]);

    let b_op = m.app_auto(writer).unwrap();
    m.push(writer, b_op).unwrap();
    let a_op = m.app_auto(writer).unwrap();
    m.push(writer, a_op).unwrap();
    m.commit(writer).unwrap();

    // Reader pulls the LATER global-log entry first.
    m.pull(reader, a_op).unwrap();
    let r = m.app_auto(reader).unwrap();
    m.push(reader, r).unwrap();
    m.commit(reader).unwrap();

    // The contains() observed true, and everything is serializable —
    // without the reader ever pulling the map effect.
    let committed = m.committed_txns();
    let reader_txn = committed.iter().find(|t| t.thread.0 == 1).unwrap();
    assert_eq!(
        reader_txn.ops[0].ret,
        Either::L(pushpull::spec::set::SetRet(true))
    );
    let report = check_machine(&m);
    assert!(report.is_serializable(), "{report}");
}

/// Non-chronological PUSH: a transaction may publish a later-applied
/// operation first when PUSH criterion (i)'s movers hold (here the two
/// ops touch different components).
#[test]
fn non_chronological_push_requires_movers() {
    let mut m = Machine::new(spec());
    let t = m.add_thread(vec![Code::seq_all(vec![
        Code::method(set_m(SetMethod::Add(1))),
        Code::method(map_m(MapMethod::Put(2, 20))),
    ])]);
    let first = m.app_auto(t).unwrap();
    let second = m.app_auto(t).unwrap();
    // Push the SECOND op first: criterion (i) checks it moves across the
    // earlier unpushed `add` — different components, so it does.
    m.push(t, second).unwrap();
    m.push(t, first).unwrap();
    m.commit(t).unwrap();
    assert!(check_machine(&m).is_serializable());
}

/// …and is refused when the mover fails: two FIFO-queue operations of one
/// transaction cannot be published out of order.
#[test]
fn non_chronological_push_refused_without_movers() {
    use pushpull::spec::queue::{QueueMethod, QueueSpec};
    let mut m = Machine::new(QueueSpec::new());
    let t = m.add_thread(vec![Code::seq_all(vec![
        Code::method(QueueMethod::Enq(1)),
        Code::method(QueueMethod::Enq(2)),
    ])]);
    let first = m.app_auto(t).unwrap();
    let second = m.app_auto(t).unwrap();
    let err = m.push(t, second).unwrap_err();
    match err {
        MachineError::Criterion(v) => {
            assert_eq!(v.rule, pushpull::core::Rule::Push);
            assert_eq!(v.clause, pushpull::core::Clause::I);
        }
        other => panic!("expected PUSH criterion (i), got {other:?}"),
    }
    // In order it is fine.
    m.push(t, first).unwrap();
    m.push(t, second).unwrap();
    m.commit(t).unwrap();
    assert!(check_machine(&m).is_serializable());
}

/// Counter adds commute, so a transaction may even interleave pushes of
/// its adds with another transaction's — and unpush them out of order.
#[test]
fn out_of_order_unpush_of_commuting_ops() {
    let mut m = Machine::new(Counter::new());
    let t = m.add_thread(vec![Code::seq_all(vec![
        Code::method(CtrMethod::Add(1)),
        Code::method(CtrMethod::Add(2)),
    ])]);
    let a = m.app_auto(t).unwrap();
    let b = m.app_auto(t).unwrap();
    m.push(t, a).unwrap();
    m.push(t, b).unwrap();
    // Unpush the FIRST-pushed op while the second remains: UNPUSH
    // criterion (i) slides it across the suffix (adds commute).
    m.unpush(t, a).unwrap();
    m.unpush(t, b).unwrap();
    m.rewind_all(t).unwrap();
    assert!(m.global().is_empty());
    assert!(m
        .thread(pushpull::core::ThreadId(0))
        .unwrap()
        .local()
        .is_empty());
}
