//! E1 / Figure 2: the transactional-boosting hashtable, its rule
//! decomposition, its abort path, and exhaustive serializability over all
//! interleavings of a small configuration.

use pushpull::core::lang::Code;
use pushpull::core::op::ThreadId;
use pushpull::core::serializability::check_machine;
use pushpull::harness::{explore, run, ExploreLimits, RandomSched, RoundRobin};
use pushpull::spec::kvmap::{KvMap, MapMethod, MapRet};
use pushpull::tm::{BoostingSystem, Tick, TmSystem};

fn put(k: u64, v: i64) -> Code<MapMethod> {
    Code::method(MapMethod::Put(k, v))
}

fn get(k: u64) -> Code<MapMethod> {
    Code::method(MapMethod::Get(k))
}

/// Figure 2's happy path decomposes as [PULL*] APP PUSH … CMT.
#[test]
fn put_decomposes_as_app_push_cmt() {
    let mut sys = BoostingSystem::new(KvMap::new(), vec![vec![put(1, 100)]]);
    run(&mut sys, &mut RoundRobin, 100).unwrap();
    let names = sys.machine().trace().rule_names(ThreadId(0));
    assert_eq!(names, vec!["BEGIN", "APP", "PUSH", "CMT"]);
    assert!(check_machine(sys.machine()).is_serializable());
}

/// Figure 2's abort path: UNPUSH then UNAPP (the inverse operation), then
/// a clean retry.
#[test]
fn abort_decomposes_as_unpush_unapp() {
    let mut sys = BoostingSystem::new(
        KvMap::new(),
        vec![vec![Code::seq_all(vec![put(1, 100), put(2, 200)])]],
    );
    assert_eq!(sys.tick(ThreadId(0)).unwrap(), Tick::Progress); // put(1): APP;PUSH
    sys.force_abort(ThreadId(0));
    assert_eq!(sys.tick(ThreadId(0)).unwrap(), Tick::Aborted);
    let names = sys.machine().trace().rule_names(ThreadId(0));
    assert_eq!(
        names,
        vec!["BEGIN", "APP", "PUSH", "UNPUSH", "UNAPP", "ABORT", "BEGIN"]
    );
    // After the abort nothing of the transaction remains in the shared log.
    assert!(sys.machine().global().is_empty());
    run(&mut sys, &mut RoundRobin, 1000).unwrap();
    assert_eq!(sys.stats().commits, 1);
    assert!(check_machine(sys.machine()).is_serializable());
}

/// "No two transactions conflict because if they try to access the same
/// key one will block": same-key transactions serialize, distinct-key
/// transactions do not block each other.
#[test]
fn abstract_locks_enforce_key_commutativity() {
    // Distinct keys: no blocking, no aborts.
    let mut sys = BoostingSystem::new(
        KvMap::new(),
        vec![vec![put(1, 1)], vec![put(2, 2)], vec![put(3, 3)]],
    );
    run(&mut sys, &mut RoundRobin, 1000).unwrap();
    assert_eq!(sys.stats().commits, 3);
    assert_eq!(sys.stats().aborts, 0);
    assert_eq!(sys.stats().blocked_ticks, 0);

    // Same key: the second blocks until the first commits.
    let mut sys = BoostingSystem::new(
        KvMap::new(),
        vec![
            vec![Code::seq_all(vec![put(1, 1), get(1)])],
            vec![Code::seq_all(vec![put(1, 2), get(1)])],
        ],
    );
    run(&mut sys, &mut RoundRobin, 4000).unwrap();
    assert_eq!(sys.stats().commits, 2);
    assert!(sys.stats().blocked_ticks > 0);
    assert!(check_machine(sys.machine()).is_serializable());
}

/// Exhaustive model check of the Figure 2 configuration: every
/// interleaving of two boosted put/get transactions is serializable and
/// the committed gets always observe a value some serial order explains.
#[test]
fn all_interleavings_serializable() {
    let sys = BoostingSystem::new(
        KvMap::new(),
        vec![
            vec![Code::seq_all(vec![put(1, 10), get(2)])],
            vec![Code::seq_all(vec![put(2, 20), get(1)])],
        ],
    );
    let report = explore(
        &sys,
        ExploreLimits {
            max_depth: 40,
            max_terminals: 4_000,
        },
        &mut |s| check_machine(s.machine()).is_serializable(),
    )
    .unwrap();
    assert!(
        report.terminals > 5,
        "too few interleavings explored: {report:?}"
    );
    assert!(report.all_ok(), "{report:?}");
}

/// The model-level committed log replays into the *real* substrate
/// (skip-list map) with every observation agreeing — Figure 2's two
/// views of one execution.
#[test]
fn committed_log_mirrors_into_substrate() {
    use pushpull::ds::mirror::SkipListMirror;
    for seed in 1..=10u64 {
        let mut sys = BoostingSystem::new(
            KvMap::new(),
            vec![
                vec![Code::seq_all(vec![put(1, 10), get(2), put(3, 30)])],
                vec![Code::seq_all(vec![put(2, 20), get(1)])],
                vec![Code::seq_all(vec![get(3), put(1, 11)])],
            ],
        );
        run(&mut sys, &mut RandomSched::new(seed), 200_000).unwrap();
        assert!(sys.is_done(), "seed {seed}");
        let mut mirror = SkipListMirror::new();
        let committed = sys.machine().global().committed_ops();
        let n = mirror
            .replay(committed.iter())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(n, committed.len());
    }
}

/// The boosted get in a same-key pair observes exactly the committed
/// predecessor's value (reads see the shared state, Figure 2's implicit
/// PULL).
#[test]
fn reads_observe_predecessors_value() {
    for seed in 1..20u64 {
        let mut sys = BoostingSystem::new(KvMap::new(), vec![vec![put(7, 42)], vec![get(7)]]);
        run(&mut sys, &mut RandomSched::new(seed), 100_000).unwrap();
        assert_eq!(sys.stats().commits, 2);
        let committed = sys.machine().committed_txns();
        let put_pos = committed
            .iter()
            .position(|t| t.thread == ThreadId(0))
            .unwrap();
        let get_txn = committed.iter().find(|t| t.thread == ThreadId(1)).unwrap();
        let get_pos = committed
            .iter()
            .position(|t| t.thread == ThreadId(1))
            .unwrap();
        let expected = if put_pos < get_pos { Some(42) } else { None };
        assert_eq!(get_txn.ops[0].ret, MapRet::Val(expected), "seed {seed}");
        assert!(
            check_machine(sys.machine()).is_serializable(),
            "seed {seed}"
        );
    }
}
