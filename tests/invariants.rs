//! E9: the §5 invariants (`I_LG`, `I_slideR`, `I_reorderPUSH`,
//! `I_localOrder`) and the commit-preservation invariant (`cmtpres`,
//! Definition 5.2), sampled at every step of executions of every
//! algorithm class — re-running the paper's proof as an experiment.

use pushpull::core::atomic::RunLimits;
use pushpull::core::invariants::{check_all, check_cmtpres, self_rewind_points};
use pushpull::core::lang::Code;
use pushpull::core::op::ThreadId;
use pushpull::harness::{RandomSched, Scheduler, WorkloadSpec};
use pushpull::spec::counter::{Counter, CtrMethod};
use pushpull::spec::kvmap::KvMap;
use pushpull::spec::rwmem::RwMem;
use pushpull::tm::optimistic::{OptimisticSystem, ReadPolicy};
use pushpull::tm::pessimistic::MatveevShavitSystem;
use pushpull::tm::{BoostingSystem, DependentSystem, TmSystem};

/// Ticks a system with a seeded scheduler, running `check` on the system
/// after every tick.
fn run_checked<T: TmSystem>(
    sys: &mut T,
    seed: u64,
    max_ticks: usize,
    mut check: impl FnMut(&T, usize),
) {
    let mut sched = RandomSched::new(seed);
    let n = sys.thread_count();
    for step in 0..max_ticks {
        if sys.is_done() {
            return;
        }
        let tid = sched.next(n, step);
        sys.tick(tid).unwrap();
        check(sys, step);
    }
    panic!("did not finish in {max_ticks} ticks");
}

#[test]
fn structural_invariants_hold_on_boosting_runs() {
    let spec = WorkloadSpec {
        threads: 3,
        txns_per_thread: 3,
        ops_per_txn: 2,
        key_range: 3,
        read_ratio: 0.5,
        seed: 5,
    };
    for seed in 1..=5u64 {
        let mut sys = BoostingSystem::new(KvMap::new(), spec.kvmap_programs());
        run_checked(&mut sys, seed, 1_000_000, |s, step| {
            let v = check_all(s.machine());
            assert!(v.is_empty(), "seed {seed} step {step}: {v:?}");
        });
    }
}

#[test]
fn structural_invariants_hold_on_optimistic_runs() {
    let spec = WorkloadSpec {
        threads: 3,
        txns_per_thread: 3,
        ops_per_txn: 2,
        key_range: 3,
        read_ratio: 0.5,
        seed: 5,
    };
    for seed in 1..=5u64 {
        let mut sys =
            OptimisticSystem::new(RwMem::new(), spec.rwmem_programs(), ReadPolicy::Snapshot);
        run_checked(&mut sys, seed, 1_000_000, |s, step| {
            let v = check_all(s.machine());
            assert!(v.is_empty(), "seed {seed} step {step}: {v:?}");
        });
    }
}

#[test]
fn structural_invariants_hold_on_pessimistic_and_dependent_runs() {
    let spec = WorkloadSpec {
        threads: 2,
        txns_per_thread: 3,
        ops_per_txn: 2,
        key_range: 3,
        read_ratio: 0.5,
        seed: 6,
    };
    for seed in 1..=5u64 {
        let mut sys = MatveevShavitSystem::new(RwMem::new(), spec.rwmem_programs());
        run_checked(&mut sys, seed, 1_000_000, |s, step| {
            let v = check_all(s.machine());
            assert!(v.is_empty(), "MS seed {seed} step {step}: {v:?}");
        });

        let mut sys = DependentSystem::new(Counter::new(), spec.counter_programs(), true);
        run_checked(&mut sys, seed, 1_000_000, |s, step| {
            let v = check_all(s.machine());
            assert!(v.is_empty(), "dep seed {seed} step {step}: {v:?}");
        });
    }
}

/// The commit-preservation invariant, checked at every step of a small
/// optimistic run (bounded big-step completions, every self-rewind point).
#[test]
fn cmtpres_holds_along_optimistic_run() {
    let prog = || {
        vec![Code::seq_all(vec![
            Code::method(CtrMethod::Add(1)),
            Code::method(CtrMethod::Get),
        ])]
    };
    let mut sys = OptimisticSystem::new(Counter::new(), vec![prog(), prog()], ReadPolicy::Snapshot);
    let limits = RunLimits {
        max_ops: 3,
        max_runs: 32,
    };
    run_checked(&mut sys, 3, 10_000, |s, step| {
        for t in 0..s.thread_count() {
            assert!(
                check_cmtpres(s.machine(), ThreadId(t), limits),
                "cmtpres violated at step {step} thread {t}"
            );
        }
    });
}

/// cmtpres also holds along boosting runs (eager pushes exercise the
/// G_post machinery differently).
#[test]
fn cmtpres_holds_along_boosting_run() {
    use pushpull::spec::kvmap::MapMethod;
    let progs = vec![
        vec![Code::seq_all(vec![
            Code::method(MapMethod::Put(1, 1)),
            Code::method(MapMethod::Get(2)),
        ])],
        vec![Code::seq_all(vec![
            Code::method(MapMethod::Put(2, 2)),
            Code::method(MapMethod::Get(1)),
        ])],
    ];
    let mut sys = BoostingSystem::new(KvMap::new(), progs);
    let limits = RunLimits {
        max_ops: 3,
        max_runs: 32,
    };
    run_checked(&mut sys, 7, 10_000, |s, step| {
        for t in 0..s.thread_count() {
            assert!(
                check_cmtpres(s.machine(), ThreadId(t), limits),
                "cmtpres violated at step {step} thread {t}"
            );
        }
    });
}

/// Self-rewind points are well-formed: they decrease monotonically in
/// size and end at the original transaction.
#[test]
fn self_rewind_point_shape() {
    let mut m = pushpull::core::Machine::new(Counter::new());
    let t = m.add_thread(vec![Code::seq_all(vec![
        Code::method(CtrMethod::Add(1)),
        Code::method(CtrMethod::Add(2)),
        Code::method(CtrMethod::Get),
    ])]);
    m.app_auto(t).unwrap();
    let first = m.unpushed_ids(t).unwrap()[0];
    m.push(t, first).unwrap();
    m.app_auto(t).unwrap();
    let pts = self_rewind_points(&m, ThreadId(0));
    assert_eq!(pts.len(), 3);
    // Monotone: own-op count decreases with rewind depth.
    for w in pts.windows(2) {
        let n0 = w[0].pushed_ops.len() + w[0].not_pushed_ops.len();
        let n1 = w[1].pushed_ops.len() + w[1].not_pushed_ops.len();
        assert!(n1 <= n0);
    }
    assert_eq!(&pts[2].code, m.thread(ThreadId(0)).unwrap().original());
    // The machine can actually take each rewind (Lemma 5.15's I_⊆ —
    // rewinds are realizable as back-rule sequences): full rewind works.
    m.rewind_all(ThreadId(0)).unwrap();
    assert!(m.thread(ThreadId(0)).unwrap().local().is_empty());
}

/// The structural invariants hold at every flag transition of a single
/// operation's lifecycle (APP → PUSH → UNPUSH → PUSH → CMT), including
/// in unchecked mode — the machine's flag bookkeeping itself maintains
/// `I_LG` regardless of criteria checking.
#[test]
fn i_lg_maintained_across_flag_transitions() {
    use pushpull::core::machine::CheckMode;
    let mut m = pushpull::core::Machine::with_mode(Counter::new(), CheckMode::Unchecked);
    let t = m.add_thread(vec![Code::method(CtrMethod::Add(1))]);
    m.app_auto(t).unwrap();
    assert!(check_all(&m).is_empty());
    let id = m.unpushed_ids(t).unwrap()[0];
    m.push(t, id).unwrap();
    assert!(check_all(&m).is_empty());
    m.unpush(t, id).unwrap();
    assert!(check_all(&m).is_empty());
    m.push(t, id).unwrap();
    m.commit(t).unwrap();
    assert!(check_all(&m).is_empty());
}
