//! E8: property-based tests of the §3–§5 algebra — the mover relation
//! (Definition 4.1), the log precongruence (Definition 3.1), and the
//! executable lemmas 5.1–5.3 — over randomly generated logs of every
//! shipped specification.

use proptest::prelude::*;

use pushpull::core::op::{Op, OpId, TxnId};
use pushpull::core::precongruence::{
    lemma_5_1_holds, lemma_5_2_holds, lemma_5_3_holds, precongruent_bounded,
    precongruent_by_states,
};
use pushpull::core::spec::{mover_exhaustive, SeqSpec};
use pushpull::spec::bank::{Bank, BankMethod, BankRet};
use pushpull::spec::kvmap::{KvMap, MapMethod, MapRet};
use pushpull::spec::rwmem::{Loc, MemMethod, MemRet, RwMem};

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

fn mem_op(id: u64) -> impl Strategy<Value = Op<MemMethod, MemRet>> {
    (0u32..3, 0i64..3, prop::bool::ANY).prop_map(move |(loc, val, is_read)| {
        if is_read {
            Op::new(OpId(id), TxnId(0), MemMethod::Read(Loc(loc)), MemRet::Val(val))
        } else {
            Op::new(OpId(id), TxnId(0), MemMethod::Write(Loc(loc), val), MemRet::Ack)
        }
    })
}

fn mem_log(len: usize) -> impl Strategy<Value = Vec<Op<MemMethod, MemRet>>> {
    prop::collection::vec((0u32..3, 0i64..3, prop::bool::ANY), 0..len).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (loc, val, is_read))| {
                if is_read {
                    Op::new(OpId(i as u64), TxnId(0), MemMethod::Read(Loc(loc)), MemRet::Val(val))
                } else {
                    Op::new(OpId(i as u64), TxnId(0), MemMethod::Write(Loc(loc), val), MemRet::Ack)
                }
            })
            .collect()
    })
}

fn map_op(id: u64) -> impl Strategy<Value = Op<MapMethod, MapRet>> {
    (0u64..3, 0i64..2, 0u8..4, prop::option::of(0i64..2)).prop_map(move |(k, v, kind, prev)| {
        let (m, r) = match kind {
            0 => (MapMethod::Put(k, v), MapRet::Prev(prev)),
            1 => (MapMethod::Remove(k), MapRet::Prev(prev)),
            2 => (MapMethod::Get(k), MapRet::Val(prev)),
            _ => (MapMethod::ContainsKey(k), MapRet::Bool(prev.is_some())),
        };
        Op::new(OpId(id), TxnId(0), m, r)
    })
}

fn bank_op(id: u64) -> impl Strategy<Value = Op<BankMethod, BankRet>> {
    (0u32..2, 0i64..4, 0u8..3, prop::bool::ANY).prop_map(move |(a, n, kind, ok)| {
        let (m, r) = match kind {
            0 => (BankMethod::Deposit(a, n), BankRet::Ack),
            1 => (BankMethod::Withdraw(a, n), BankRet::Ok(ok)),
            _ => (BankMethod::Balance(a), BankRet::Amount(n)),
        };
        Op::new(OpId(id), TxnId(0), m, r)
    })
}

// ---------------------------------------------------------------------
// Soundness of the algebraic mover oracles (Definition 4.1)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// RwMem's algebraic movers agree exactly with the exhaustive check.
    #[test]
    fn rwmem_movers_exact(a in mem_op(100), b in mem_op(101)) {
        let spec = RwMem::bounded(vec![Loc(0), Loc(1), Loc(2)], vec![0, 1, 2]);
        let uni = spec.state_universe().unwrap();
        prop_assert_eq!(spec.mover(&a, &b), mover_exhaustive(&spec, &uni, &a, &b));
    }

    /// KvMap's algebraic movers are SOUND w.r.t. the exhaustive check.
    #[test]
    fn kvmap_movers_sound(a in map_op(100), b in map_op(101)) {
        let spec = KvMap::bounded(vec![0, 1, 2], vec![0, 1]);
        let uni = spec.state_universe().unwrap();
        if spec.mover(&a, &b) {
            prop_assert!(mover_exhaustive(&spec, &uni, &a, &b));
        }
    }

    /// Bank's algebraic movers are SOUND w.r.t. the exhaustive check.
    #[test]
    fn bank_movers_sound(a in bank_op(100), b in bank_op(101)) {
        let spec = Bank::bounded(vec![0, 1], 5);
        let uni = spec.state_universe().unwrap();
        if spec.mover(&a, &b) {
            prop_assert!(mover_exhaustive(&spec, &uni, &a, &b));
        }
    }

    /// Mover + allowedness ⇒ swapped log precongruent (the ≼/◁ mnemonic
    /// of §5.1): if a ◁ b and ℓ·a·b is allowed then ℓ·a·b ≼ ℓ·b·a.
    #[test]
    fn mover_implies_swap_precongruence(
        l in mem_log(4), a in mem_op(100), b in mem_op(101)
    ) {
        let spec = RwMem::bounded(vec![Loc(0), Loc(1), Loc(2)], vec![0, 1, 2]);
        if spec.mover(&a, &b) {
            let mut fwd = l.clone();
            fwd.push(a.clone());
            fwd.push(b.clone());
            let mut back = l.clone();
            back.push(b);
            back.push(a);
            prop_assert!(precongruent_by_states(&spec, &fwd, &back));
        }
    }
}

// ---------------------------------------------------------------------
// Precongruence laws (Definition 3.1, Lemmas 5.1–5.3)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// ≼ is reflexive.
    #[test]
    fn precongruence_reflexive(l in mem_log(5)) {
        let spec = RwMem::new();
        prop_assert!(precongruent_by_states(&spec, &l, &l));
    }

    /// Lemma 5.2 (transitivity), via the state witness.
    #[test]
    fn lemma_5_2(a in mem_log(4), b in mem_log(4), c in mem_log(4)) {
        let spec = RwMem::new();
        if let Some(conclusion) = lemma_5_2_holds(&spec, &a, &b, &c) {
            prop_assert!(conclusion);
        }
    }

    /// Lemma 5.3 (precongruence over append).
    #[test]
    fn lemma_5_3(a in mem_log(4), b in mem_log(4), c in mem_log(3)) {
        let spec = RwMem::new();
        if let Some(conclusion) = lemma_5_3_holds(&spec, &a, &b, &c) {
            prop_assert!(conclusion);
        }
    }

    /// Lemma 5.1: ℓ₂ ◁ op ∧ allowed(ℓ₁·ℓ₂·op) ⇒ allowed(ℓ₁·op).
    #[test]
    fn lemma_5_1(l1 in mem_log(3), l2 in mem_log(3), op in mem_op(100)) {
        let spec = RwMem::bounded(vec![Loc(0), Loc(1), Loc(2)], vec![0, 1, 2]);
        if let Some(conclusion) = lemma_5_1_holds(&spec, &l1, &l2, &op) {
            prop_assert!(conclusion);
        }
    }

    /// The state-inclusion witness is sound for the bounded observational
    /// unfolding: whenever states say ≼, no bounded counterexample exists.
    #[test]
    fn state_witness_sound_for_bounded(l1 in mem_log(3), l2 in mem_log(3)) {
        let spec = RwMem::bounded(vec![Loc(0), Loc(1)], vec![0, 1]);
        let universe: Vec<Op<MemMethod, MemRet>> = vec![
            Op::new(OpId(900), TxnId(9), MemMethod::Read(Loc(0)), MemRet::Val(0)),
            Op::new(OpId(901), TxnId(9), MemMethod::Read(Loc(0)), MemRet::Val(1)),
            Op::new(OpId(902), TxnId(9), MemMethod::Read(Loc(1)), MemRet::Val(0)),
            Op::new(OpId(903), TxnId(9), MemMethod::Read(Loc(1)), MemRet::Val(1)),
            Op::new(OpId(904), TxnId(9), MemMethod::Write(Loc(0), 1), MemRet::Ack),
        ];
        if precongruent_by_states(&spec, &l1, &l2) {
            prop_assert!(precongruent_bounded(&spec, &l1, &l2, &universe, 2));
        }
    }

    /// Prefix closure of `allowed` (Parameter 3.1's requirement).
    #[test]
    fn allowed_prefix_closed(l in mem_log(6)) {
        let spec = RwMem::new();
        if spec.allowed(&l) {
            for k in 0..l.len() {
                prop_assert!(spec.allowed(&l[..k]));
            }
        }
    }
}
