//! E8: property-based tests of the §3–§5 algebra — the mover relation
//! (Definition 4.1), the log precongruence (Definition 3.1), and the
//! executable lemmas 5.1–5.3 — over randomly generated logs of every
//! shipped specification.
//!
//! Random cases come from the crate's seeded [`Xorshift64`] generator, so
//! every run checks the same case set and failures reproduce exactly.

use pushpull::core::op::{Op, OpId, TxnId};
use pushpull::core::precongruence::{
    lemma_5_1_holds, lemma_5_2_holds, lemma_5_3_holds, precongruent_bounded, precongruent_by_states,
};
use pushpull::core::rng::Xorshift64;
use pushpull::core::spec::{mover_exhaustive, SeqSpec};
use pushpull::spec::bank::{Bank, BankMethod, BankRet};
use pushpull::spec::kvmap::{KvMap, MapMethod, MapRet};
use pushpull::spec::rwmem::{Loc, MemMethod, MemRet, RwMem};

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

fn mem_op(rng: &mut Xorshift64, id: u64) -> Op<MemMethod, MemRet> {
    let loc = rng.gen_range(0..3) as u32;
    let val = rng.gen_range(0..3) as i64;
    if rng.gen_bool(0.5) {
        Op::new(
            OpId(id),
            TxnId(0),
            MemMethod::Read(Loc(loc)),
            MemRet::Val(val),
        )
    } else {
        Op::new(
            OpId(id),
            TxnId(0),
            MemMethod::Write(Loc(loc), val),
            MemRet::Ack,
        )
    }
}

fn mem_log(rng: &mut Xorshift64, max_len: usize) -> Vec<Op<MemMethod, MemRet>> {
    let len = rng.gen_index(max_len.max(1));
    (0..len).map(|i| mem_op(rng, i as u64)).collect()
}

fn map_op(rng: &mut Xorshift64, id: u64) -> Op<MapMethod, MapRet> {
    let k = rng.gen_range(0..3);
    let v = rng.gen_range(0..2) as i64;
    let prev = if rng.gen_bool(0.5) {
        Some(rng.gen_range(0..2) as i64)
    } else {
        None
    };
    let (m, r) = match rng.gen_range(0..4) {
        0 => (MapMethod::Put(k, v), MapRet::Prev(prev)),
        1 => (MapMethod::Remove(k), MapRet::Prev(prev)),
        2 => (MapMethod::Get(k), MapRet::Val(prev)),
        _ => (MapMethod::ContainsKey(k), MapRet::Bool(prev.is_some())),
    };
    Op::new(OpId(id), TxnId(0), m, r)
}

fn bank_op(rng: &mut Xorshift64, id: u64) -> Op<BankMethod, BankRet> {
    let a = rng.gen_range(0..2) as u32;
    let n = rng.gen_range(0..4) as i64;
    let ok = rng.gen_bool(0.5);
    let (m, r) = match rng.gen_range(0..3) {
        0 => (BankMethod::Deposit(a, n), BankRet::Ack),
        1 => (BankMethod::Withdraw(a, n), BankRet::Ok(ok)),
        _ => (BankMethod::Balance(a), BankRet::Amount(n)),
    };
    Op::new(OpId(id), TxnId(0), m, r)
}

// ---------------------------------------------------------------------
// Soundness of the algebraic mover oracles (Definition 4.1)
// ---------------------------------------------------------------------

/// RwMem's algebraic movers agree exactly with the exhaustive check.
#[test]
fn rwmem_movers_exact() {
    let mut rng = Xorshift64::new(0xE8_01);
    let spec = RwMem::bounded(vec![Loc(0), Loc(1), Loc(2)], vec![0, 1, 2]);
    let uni = spec.state_universe().unwrap();
    for _ in 0..256 {
        let a = mem_op(&mut rng, 100);
        let b = mem_op(&mut rng, 101);
        assert_eq!(
            spec.mover(&a, &b),
            mover_exhaustive(&spec, &uni, &a, &b),
            "a={a:?} b={b:?}"
        );
    }
}

/// KvMap's algebraic movers are SOUND w.r.t. the exhaustive check.
#[test]
fn kvmap_movers_sound() {
    let mut rng = Xorshift64::new(0xE8_02);
    let spec = KvMap::bounded(vec![0, 1, 2], vec![0, 1]);
    let uni = spec.state_universe().unwrap();
    for _ in 0..256 {
        let a = map_op(&mut rng, 100);
        let b = map_op(&mut rng, 101);
        if spec.mover(&a, &b) {
            assert!(mover_exhaustive(&spec, &uni, &a, &b), "a={a:?} b={b:?}");
        }
    }
}

/// Bank's algebraic movers are SOUND w.r.t. the exhaustive check.
#[test]
fn bank_movers_sound() {
    let mut rng = Xorshift64::new(0xE8_03);
    let spec = Bank::bounded(vec![0, 1], 5);
    let uni = spec.state_universe().unwrap();
    for _ in 0..256 {
        let a = bank_op(&mut rng, 100);
        let b = bank_op(&mut rng, 101);
        if spec.mover(&a, &b) {
            assert!(mover_exhaustive(&spec, &uni, &a, &b), "a={a:?} b={b:?}");
        }
    }
}

/// Mover + allowedness ⇒ swapped log precongruent (the ≼/◁ mnemonic
/// of §5.1): if a ◁ b and ℓ·a·b is allowed then ℓ·a·b ≼ ℓ·b·a.
#[test]
fn mover_implies_swap_precongruence() {
    let mut rng = Xorshift64::new(0xE8_04);
    let spec = RwMem::bounded(vec![Loc(0), Loc(1), Loc(2)], vec![0, 1, 2]);
    for _ in 0..256 {
        let l = mem_log(&mut rng, 4);
        let a = mem_op(&mut rng, 100);
        let b = mem_op(&mut rng, 101);
        if spec.mover(&a, &b) {
            let mut fwd = l.clone();
            fwd.push(a.clone());
            fwd.push(b.clone());
            let mut back = l.clone();
            back.push(b.clone());
            back.push(a.clone());
            assert!(
                precongruent_by_states(&spec, &fwd, &back),
                "a={a:?} b={b:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Precongruence laws (Definition 3.1, Lemmas 5.1–5.3)
// ---------------------------------------------------------------------

/// ≼ is reflexive.
#[test]
fn precongruence_reflexive() {
    let mut rng = Xorshift64::new(0xE8_05);
    let spec = RwMem::new();
    for _ in 0..128 {
        let l = mem_log(&mut rng, 5);
        assert!(precongruent_by_states(&spec, &l, &l));
    }
}

/// Lemma 5.2 (transitivity), via the state witness.
#[test]
fn lemma_5_2() {
    let mut rng = Xorshift64::new(0xE8_06);
    let spec = RwMem::new();
    for _ in 0..128 {
        let a = mem_log(&mut rng, 4);
        let b = mem_log(&mut rng, 4);
        let c = mem_log(&mut rng, 4);
        if let Some(conclusion) = lemma_5_2_holds(&spec, &a, &b, &c) {
            assert!(conclusion, "a={a:?} b={b:?} c={c:?}");
        }
    }
}

/// Lemma 5.3 (precongruence over append).
#[test]
fn lemma_5_3() {
    let mut rng = Xorshift64::new(0xE8_07);
    let spec = RwMem::new();
    for _ in 0..128 {
        let a = mem_log(&mut rng, 4);
        let b = mem_log(&mut rng, 4);
        let c = mem_log(&mut rng, 3);
        if let Some(conclusion) = lemma_5_3_holds(&spec, &a, &b, &c) {
            assert!(conclusion, "a={a:?} b={b:?} c={c:?}");
        }
    }
}

/// Lemma 5.1: ℓ₂ ◁ op ∧ allowed(ℓ₁·ℓ₂·op) ⇒ allowed(ℓ₁·op).
#[test]
fn lemma_5_1() {
    let mut rng = Xorshift64::new(0xE8_08);
    let spec = RwMem::bounded(vec![Loc(0), Loc(1), Loc(2)], vec![0, 1, 2]);
    for _ in 0..128 {
        let l1 = mem_log(&mut rng, 3);
        let l2 = mem_log(&mut rng, 3);
        let op = mem_op(&mut rng, 100);
        if let Some(conclusion) = lemma_5_1_holds(&spec, &l1, &l2, &op) {
            assert!(conclusion, "l1={l1:?} l2={l2:?} op={op:?}");
        }
    }
}

/// The state-inclusion witness is sound for the bounded observational
/// unfolding: whenever states say ≼, no bounded counterexample exists.
#[test]
fn state_witness_sound_for_bounded() {
    let mut rng = Xorshift64::new(0xE8_09);
    let spec = RwMem::bounded(vec![Loc(0), Loc(1)], vec![0, 1]);
    let universe: Vec<Op<MemMethod, MemRet>> = vec![
        Op::new(OpId(900), TxnId(9), MemMethod::Read(Loc(0)), MemRet::Val(0)),
        Op::new(OpId(901), TxnId(9), MemMethod::Read(Loc(0)), MemRet::Val(1)),
        Op::new(OpId(902), TxnId(9), MemMethod::Read(Loc(1)), MemRet::Val(0)),
        Op::new(OpId(903), TxnId(9), MemMethod::Read(Loc(1)), MemRet::Val(1)),
        Op::new(
            OpId(904),
            TxnId(9),
            MemMethod::Write(Loc(0), 1),
            MemRet::Ack,
        ),
    ];
    for _ in 0..128 {
        let l1 = mem_log(&mut rng, 3);
        let l2 = mem_log(&mut rng, 3);
        if precongruent_by_states(&spec, &l1, &l2) {
            assert!(
                precongruent_bounded(&spec, &l1, &l2, &universe, 2),
                "l1={l1:?} l2={l2:?}"
            );
        }
    }
}

/// Prefix closure of `allowed` (Parameter 3.1's requirement).
#[test]
fn allowed_prefix_closed() {
    let mut rng = Xorshift64::new(0xE8_0A);
    let spec = RwMem::new();
    for _ in 0..128 {
        let l = mem_log(&mut rng, 6);
        if spec.allowed(&l) {
            for k in 0..l.len() {
                assert!(spec.allowed(&l[..k]), "l={l:?} k={k}");
            }
        }
    }
}
