//! Negative tests, one per rule criterion of Figure 5: for each clause,
//! a machine state and a rule application that violates exactly that
//! clause, with the error naming the rule and clause the way the paper
//! does. The criteria are only trustworthy if they actually reject.

use pushpull::core::error::{Clause, MachineError, Rule};
use pushpull::core::lang::Code;
use pushpull::core::{Machine, Op, OpId, TxnId};
use pushpull::spec::counter::{Counter, CtrMethod};
use pushpull::spec::queue::{QueueMethod, QueueSpec};
use pushpull::spec::rwmem::{Loc, MemMethod, MemRet, RwMem};

fn assert_violation(err: MachineError, rule: Rule, clause: Clause) {
    match err {
        MachineError::Criterion(v) => {
            assert_eq!(v.rule, rule, "{v}");
            assert_eq!(v.clause, clause, "{v}");
            // Display carries the paper's naming.
            let shown = v.to_string();
            assert!(shown.contains("criterion"), "{shown}");
        }
        other => panic!("expected criterion violation, got {other:?}"),
    }
}

/// APP criterion (i): the chosen (method, continuation) must be in
/// `step(c)` — surfaced as `NoSuchStep` (a structural refusal).
#[test]
fn app_requires_step_membership() {
    let mut m = Machine::new(Counter::new());
    let t = m.add_thread(vec![Code::method(CtrMethod::Get)]);
    let err = m
        .app(
            t,
            CtrMethod::Add(1),
            Code::Skip,
            pushpull::spec::counter::CtrRet::Ack,
        )
        .unwrap_err();
    assert!(matches!(err, MachineError::NoSuchStep(_)));
}

/// APP criterion (ii): the local log must allow the observation.
#[test]
fn app_criterion_ii() {
    let mut m = Machine::new(Counter::new());
    let t = m.add_thread(vec![Code::method(CtrMethod::Get)]);
    // Get observing 5 against the empty local log is not allowed.
    let (method, cont) = m.step_options(t).unwrap().remove(0);
    let err = m
        .app(t, method, cont, pushpull::spec::counter::CtrRet::Val(5))
        .unwrap_err();
    assert_violation(err, Rule::App, Clause::Ii);
}

/// PUSH criterion (i): out-of-order publication demands movers among the
/// transaction's own unpushed operations.
#[test]
fn push_criterion_i() {
    let mut m = Machine::new(QueueSpec::new());
    let t = m.add_thread(vec![Code::seq(
        Code::method(QueueMethod::Enq(1)),
        Code::method(QueueMethod::Enq(2)),
    )]);
    m.app_auto(t).unwrap();
    let second = m.app_auto(t).unwrap();
    let err = m.push(t, second).unwrap_err();
    assert_violation(err, Rule::Push, Clause::I);
}

/// PUSH criterion (ii): a foreign uncommitted operation that cannot move
/// right of the pushed one blocks the push.
#[test]
fn push_criterion_ii() {
    let mut m = Machine::new(Counter::new());
    let a = m.add_thread(vec![Code::method(CtrMethod::Get)]);
    let b = m.add_thread(vec![Code::method(CtrMethod::Add(1))]);
    let ga = m.app_auto(a).unwrap();
    m.push(a, ga).unwrap(); // get(=0) uncommitted in G
    let ib = m.app_auto(b).unwrap();
    let err = m.push(b, ib).unwrap_err();
    assert_violation(err, Rule::Push, Clause::Ii);
}

/// PUSH criterion (iii): the global log must allow the operation.
#[test]
fn push_criterion_iii() {
    let mut m = Machine::new(Counter::new());
    let a = m.add_thread(vec![Code::method(CtrMethod::Add(1))]);
    let b = m.add_thread(vec![Code::method(CtrMethod::Get)]);
    // a commits an increment b never pulls.
    let ia = m.app_auto(a).unwrap();
    m.push(a, ia).unwrap();
    m.commit(a).unwrap();
    // b observes 0 against its (empty) local view — allowed locally…
    let gb = m.app_auto(b).unwrap();
    // …but G = [inc] does not allow get(=0).
    let err = m.push(b, gb).unwrap_err();
    assert_violation(err, Rule::Push, Clause::Iii);
}

/// UNPUSH criterion (i) (gray): the recalled op must slide across the
/// global suffix. A *foreign* non-commuting suffix is unreachable (PUSH
/// criterion (ii) would have fenced it — checked below), but one's own
/// in-order pushes are exempt from (ii), so recalling an early own op
/// under a dependent own suffix trips exactly this clause.
#[test]
fn unpush_criterion_i() {
    let mut m = Machine::new(QueueSpec::new());
    let t = m.add_thread(vec![Code::seq(
        Code::method(QueueMethod::Enq(1)),
        Code::method(QueueMethod::Enq(2)),
    )]);
    let first = m.app_auto(t).unwrap();
    m.push(t, first).unwrap();
    let second = m.app_auto(t).unwrap();
    m.push(t, second).unwrap();
    // enq(1) cannot slide past enq(2): recalling it out of order is
    // refused; recalling the tail first works.
    let err = m.unpush(t, first).unwrap_err();
    assert_violation(err, Rule::UnPush, Clause::I);
    m.unpush(t, second).unwrap();
    m.unpush(t, first).unwrap();
}

/// PULL criterion (i): double pull refused.
#[test]
fn pull_criterion_i() {
    let mut m = Machine::new(Counter::new());
    let a = m.add_thread(vec![Code::method(CtrMethod::Add(1))]);
    let b = m.add_thread(vec![Code::method(CtrMethod::Get)]);
    let ia = m.app_auto(a).unwrap();
    m.push(a, ia).unwrap();
    m.pull(b, ia).unwrap();
    let err = m.pull(b, ia).unwrap_err();
    assert_violation(err, Rule::Pull, Clause::I);
}

/// PULL criterion (ii): the local log must allow the pulled operation.
#[test]
fn pull_criterion_ii() {
    let mut m = Machine::new(RwMem::new());
    let a = m.add_thread(vec![Code::method(MemMethod::Write(Loc(0), 1))]);
    let b = m.add_thread(vec![Code::seq(
        Code::method(MemMethod::Read(Loc(0))),
        Code::method(MemMethod::Read(Loc(0))),
    )]);
    let wa = m.app_auto(a).unwrap();
    m.push(a, wa).unwrap();
    m.commit(a).unwrap();
    // b (stale) reads 0 twice locally — allowed against its empty view…
    m.app_auto(b).unwrap();
    // …then pulling the committed write of 1 contradicts the read of 0
    // (PULL criterion (iii) fires first in Checked mode for the mover
    // version; with RelaxedGray the allowedness clause (ii) fires).
    let err = m.pull(b, wa).unwrap_err();
    match err {
        MachineError::Criterion(v) => {
            assert_eq!(v.rule, Rule::Pull);
            assert!(v.clause == Clause::Ii || v.clause == Clause::Iii, "{v}");
        }
        other => panic!("unexpected {other:?}"),
    }
}

/// PULL criterion (iii) (gray): own operations must move right of the
/// pulled one.
#[test]
fn pull_criterion_iii() {
    let mut m = Machine::new(Counter::new());
    let a = m.add_thread(vec![Code::method(CtrMethod::Add(1))]);
    let b = m.add_thread(vec![Code::method(CtrMethod::Get)]);
    let ia = m.app_auto(a).unwrap();
    m.push(a, ia).unwrap();
    m.commit(a).unwrap();
    // b's stale get(=0) is applied before pulling: the pulled add cannot
    // be seen as preceding it.
    m.app_auto(b).unwrap();
    let err = m.pull(b, ia).unwrap_err();
    assert_violation(err, Rule::Pull, Clause::Iii);
}

/// UNPULL criterion (i): cannot detangle from an operation the local log
/// depends on.
#[test]
fn unpull_criterion_i() {
    let mut m = Machine::new(Counter::new());
    let a = m.add_thread(vec![Code::method(CtrMethod::Add(1))]);
    let b = m.add_thread(vec![Code::method(CtrMethod::Get)]);
    let ia = m.app_auto(a).unwrap();
    m.push(a, ia).unwrap();
    m.pull(b, ia).unwrap();
    m.app_auto(b).unwrap(); // get -> 1, depends on the pull
    let err = m.unpull(b, ia).unwrap_err();
    assert_violation(err, Rule::UnPull, Clause::I);
}

/// CMT criterion (i): no method-free path to skip.
#[test]
fn cmt_criterion_i() {
    let mut m = Machine::new(Counter::new());
    let t = m.add_thread(vec![Code::method(CtrMethod::Add(1))]);
    let err = m.commit(t).unwrap_err();
    assert_violation(err, Rule::Cmt, Clause::I);
}

/// CMT criterion (ii): unpushed operations block commit.
#[test]
fn cmt_criterion_ii() {
    let mut m = Machine::new(Counter::new());
    let t = m.add_thread(vec![Code::method(CtrMethod::Add(1))]);
    m.app_auto(t).unwrap();
    let err = m.commit(t).unwrap_err();
    assert_violation(err, Rule::Cmt, Clause::Ii);
}

/// CMT criterion (iii): a pulled-but-uncommitted dependency blocks commit.
/// (The dependent transaction here performs no operation of its own —
/// any conflicting own operation could not even be PUSHed while the
/// dependency is uncommitted, PUSH criterion (ii) fences that.)
#[test]
fn cmt_criterion_iii() {
    let mut m = Machine::new(Counter::new());
    let a = m.add_thread(vec![Code::method(CtrMethod::Add(1))]);
    let b = m.add_thread(vec![Code::Skip]);
    let ia = m.app_auto(a).unwrap();
    m.push(a, ia).unwrap();
    m.pull(b, ia).unwrap();
    let err = m.commit(b).unwrap_err();
    assert_violation(err, Rule::Cmt, Clause::Iii);
    // Once the dependency commits, b's commit goes through.
    m.commit(a).unwrap();
    m.commit(b).unwrap();
}

/// Structural refusals carry their own error variants (not criteria):
/// wrong flags, unknown ops, unknown threads.
#[test]
fn structural_refusals() {
    use pushpull::core::op::ThreadId;
    let mut m = Machine::new(Counter::new());
    let t = m.add_thread(vec![Code::method(CtrMethod::Add(1))]);
    assert!(matches!(
        m.push(t, OpId(99)),
        Err(MachineError::NoSuchOp(_))
    ));
    assert!(matches!(m.unapp(t), Err(MachineError::NothingToUnapply(_))));
    assert!(matches!(
        m.app_auto(ThreadId(7)),
        Err(MachineError::NoSuchThread(_))
    ));
    let op = m.app_auto(t).unwrap();
    assert!(matches!(
        m.unpush(t, op),
        Err(MachineError::WrongFlag { .. })
    ));
    // Pulling one's own op is refused.
    m.push(t, op).unwrap();
    assert!(matches!(m.pull(t, op), Err(MachineError::WrongFlag { .. })));
    let _ = Op::new(OpId(0), TxnId(0), MemMethod::Read(Loc(0)), MemRet::Val(0));
}
