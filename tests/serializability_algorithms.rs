//! E4–E6: per-algorithm serializability, §6.2 (optimistic), §6.3
//! (pessimistic + boosting), §6.4 (irrevocable) — exhaustively on small
//! configurations, and under many random interleavings on larger ones.

use pushpull::core::lang::Code;
use pushpull::core::op::ThreadId;
use pushpull::core::serializability::{check_machine, find_any_serialization};
use pushpull::harness::{explore, run, ExploreLimits, RandomSched, WorkloadSpec};
use pushpull::spec::counter::{Counter, CtrMethod};
use pushpull::spec::kvmap::KvMap;
use pushpull::spec::rwmem::{Loc, MemMethod, RwMem};
use pushpull::tm::optimistic::{OptimisticSystem, ReadPolicy};
use pushpull::tm::pessimistic::MatveevShavitSystem;
use pushpull::tm::{BoostingSystem, HtmSystem, IrrevocableSystem, TmSystem};

fn rmw(l: u32, v: i64) -> Vec<Code<MemMethod>> {
    vec![Code::seq_all(vec![
        Code::method(MemMethod::Read(Loc(l))),
        Code::method(MemMethod::Write(Loc(l), v)),
    ])]
}

/// E4: every interleaving of two optimistic RMW transactions on the same
/// location is serializable — the lost-update anomaly is impossible.
#[test]
fn optimistic_no_lost_updates_exhaustive() {
    let sys = OptimisticSystem::new(
        RwMem::new(),
        vec![rmw(0, 1), rmw(0, 2)],
        ReadPolicy::Snapshot,
    );
    let report = explore(
        &sys,
        ExploreLimits {
            max_depth: 48,
            max_terminals: 4_000,
        },
        &mut |s| check_machine(s.machine()).is_serializable(),
    )
    .unwrap();
    assert!(report.terminals > 1);
    assert!(report.all_ok(), "{report:?}");
}

/// E4: abort path is UNAPP-only (§6.2: "needn't UNPUSH").
#[test]
fn optimistic_abort_path_never_unpushes() {
    let mut sys = OptimisticSystem::new(
        Counter::new(),
        vec![
            vec![Code::method(CtrMethod::Add(1))],
            vec![Code::method(CtrMethod::Get)],
        ],
        ReadPolicy::Snapshot,
    );
    // Run with a seed and check the global property on the trace.
    run(&mut sys, &mut RandomSched::new(3), 100_000).unwrap();
    assert_eq!(sys.machine().trace().count_rule("UNPUSH"), 0);
    assert!(check_machine(sys.machine()).is_serializable());
}

/// E5: Matveev–Shavit writers never abort, even with full write-write
/// contention, across random interleavings.
#[test]
fn pessimistic_writers_never_abort() {
    for seed in 1..=15u64 {
        let prog = |v: i64| vec![Code::method(MemMethod::Write(Loc(0), v))];
        let mut sys = MatveevShavitSystem::new(RwMem::new(), vec![prog(1), prog(2), prog(3)]);
        run(&mut sys, &mut RandomSched::new(seed), 100_000).unwrap();
        assert_eq!(sys.stats().commits, 3, "seed {seed}");
        assert_eq!(sys.stats().aborts, 0, "seed {seed}");
        assert!(
            check_machine(sys.machine()).is_serializable(),
            "seed {seed}"
        );
    }
}

/// E5: exhaustive check of the pessimistic system.
#[test]
fn pessimistic_exhaustive() {
    let sys = MatveevShavitSystem::new(RwMem::new(), vec![rmw(0, 1), rmw(1, 2)]);
    let report = explore(
        &sys,
        ExploreLimits {
            max_depth: 40,
            max_terminals: 4_000,
        },
        &mut |s| check_machine(s.machine()).is_serializable(),
    )
    .unwrap();
    assert!(report.all_ok(), "{report:?}");
}

/// E6: the irrevocable thread never aborts while optimists yield.
#[test]
fn irrevocable_thread_always_wins() {
    for seed in 1..=15u64 {
        let mut sys = IrrevocableSystem::new(
            RwMem::new(),
            vec![rmw(0, 1), rmw(0, 2), rmw(0, 3)],
            ThreadId(0),
        );
        run(&mut sys, &mut RandomSched::new(seed), 200_000).unwrap();
        assert!(sys.is_done(), "seed {seed}");
        assert_eq!(sys.stats().commits, 3, "seed {seed}");
        assert_eq!(sys.irrevocable_aborts(), 0, "seed {seed}");
        assert!(
            check_machine(sys.machine()).is_serializable(),
            "seed {seed}"
        );
    }
}

/// Larger randomized sweep: every algorithm on a shared workload, many
/// seeds, all serializable (the Theorem 5.17 experiment).
#[test]
fn randomized_sweep_all_algorithms_serializable() {
    let spec = WorkloadSpec {
        threads: 3,
        txns_per_thread: 4,
        ops_per_txn: 3,
        key_range: 4,
        read_ratio: 0.5,
        seed: 7,
    };
    for seed in 1..=8u64 {
        let mut sys = BoostingSystem::new(KvMap::new(), spec.kvmap_programs());
        run(&mut sys, &mut RandomSched::new(seed), 2_000_000).unwrap();
        assert!(sys.is_done(), "boosting seed {seed}");
        let r = check_machine(sys.machine());
        assert!(r.is_serializable(), "boosting seed {seed}: {r}");

        let mut sys =
            OptimisticSystem::new(RwMem::new(), spec.rwmem_programs(), ReadPolicy::Snapshot);
        run(&mut sys, &mut RandomSched::new(seed), 2_000_000).unwrap();
        assert!(sys.is_done(), "optimistic seed {seed}");
        let r = check_machine(sys.machine());
        assert!(r.is_serializable(), "optimistic seed {seed}: {r}");

        let mut sys = MatveevShavitSystem::new(RwMem::new(), spec.rwmem_programs());
        run(&mut sys, &mut RandomSched::new(seed), 2_000_000).unwrap();
        assert!(sys.is_done(), "pessimistic seed {seed}");
        let r = check_machine(sys.machine());
        assert!(r.is_serializable(), "pessimistic seed {seed}: {r}");

        let mut sys = HtmSystem::new(spec.rwmem_programs());
        run(&mut sys, &mut RandomSched::new(seed), 2_000_000).unwrap();
        assert!(sys.is_done(), "htm seed {seed}");
        let r = check_machine(sys.machine());
        assert!(r.is_serializable(), "htm seed {seed}: {r}");
    }
}

/// The brute-force serialization search agrees with the commit-order
/// witness on small runs.
#[test]
fn permutation_search_agrees_with_commit_order() {
    for seed in 1..=10u64 {
        let spec = WorkloadSpec {
            threads: 2,
            txns_per_thread: 2,
            ops_per_txn: 2,
            key_range: 3,
            read_ratio: 0.5,
            seed,
        };
        let mut sys =
            OptimisticSystem::new(RwMem::new(), spec.rwmem_programs(), ReadPolicy::Snapshot);
        run(&mut sys, &mut RandomSched::new(seed * 31), 1_000_000).unwrap();
        assert!(
            check_machine(sys.machine()).is_serializable(),
            "seed {seed}"
        );
        assert!(
            find_any_serialization(sys.machine()).is_some(),
            "seed {seed}"
        );
    }
}
