//! E2 / Figure 7 and §7: the mixed Boosting + HTM transaction.
//!
//! Checks the exact rule sequence of Figure 7, the §7 claims (HTM effects
//! can be UNPUSHed while boosted effects stay shared; the rewind is
//! partial), and the serializability of the mixed driver under many
//! random interleavings.

use pushpull::core::lang::Code;
use pushpull::core::serializability::check_machine;
use pushpull::core::Machine;
use pushpull::harness::{run, RandomSched};
use pushpull::spec::counter::CtrMethod;
use pushpull::spec::kvmap::MapMethod;
use pushpull::spec::rwmem::{Loc, MemMethod};
use pushpull::spec::set::SetMethod;
use pushpull::tm::mixed::{methods, mixed_spec, MixedSpec, MixedSystem};
use pushpull::tm::TmSystem;

/// Drives the machine through Figure 7's exact rule sequence and checks
/// every intermediate claim of §7.
#[test]
fn figure7_rule_sequence_is_admissible() {
    let mut m: Machine<MixedSpec> = Machine::new(mixed_spec());
    let t = m.add_thread(vec![Code::seq_all(vec![
        Code::method(methods::skiplist(SetMethod::Add(1))),
        Code::method(methods::size(CtrMethod::Add(1))),
        Code::method(methods::hash_table(MapMethod::Put(1, 2))),
        Code::choice(
            Code::method(methods::mem(MemMethod::Write(Loc(0), 1))), // x++
            Code::method(methods::mem(MemMethod::Write(Loc(1), 1))), // y++
        ),
    ])]);

    let insert = m
        .app_method(t, &methods::skiplist(SetMethod::Add(1)))
        .unwrap();
    m.push(t, insert).unwrap();
    let size_inc = m.app_method(t, &methods::size(CtrMethod::Add(1))).unwrap();
    let put = m
        .app_method(t, &methods::hash_table(MapMethod::Put(1, 2)))
        .unwrap();
    m.push(t, put).unwrap();
    let x_inc = m
        .app_method(t, &methods::mem(MemMethod::Write(Loc(0), 1)))
        .unwrap();

    // Push HTM ops (out of local order relative to `put`: size_inc was
    // applied before put but is pushed after — PUSH criterion (i) is
    // satisfied through movers).
    m.push(t, size_inc).unwrap();
    m.push(t, x_inc).unwrap();
    assert_eq!(m.global().len(), 4);

    // HTM abort: UNPUSH the HTM ops only.
    m.unpush(t, x_inc).unwrap();
    m.unpush(t, size_inc).unwrap();
    // §7's central claim: the boosted effects remain in the shared view.
    assert!(m.global().contains_id(insert));
    assert!(m.global().contains_id(put));
    assert_eq!(m.global().len(), 2);

    // Partial rewind: only x++ is unapplied; size++ and the boosted ops
    // survive in the local log.
    m.unapp(t).unwrap();
    assert_eq!(m.thread(t).unwrap().local().len(), 3);

    // March forward down the other branch and commit.
    let y_inc = m
        .app_method(t, &methods::mem(MemMethod::Write(Loc(1), 1)))
        .unwrap();
    m.push(t, size_inc).unwrap();
    m.push(t, y_inc).unwrap();
    m.commit(t).unwrap();

    let report = check_machine(&m);
    assert!(report.is_serializable(), "{report}");

    // The committed transaction's operations, in local order:
    let ops = &m.committed_txns()[0].ops;
    let shown: Vec<String> = ops.iter().map(|o| format!("{:?}", o.method)).collect();
    assert_eq!(ops.len(), 4, "{shown:?}");
    assert_eq!(ops[0].id, insert);
    assert_eq!(ops[1].id, size_inc);
    assert_eq!(ops[2].id, put);
    assert_eq!(ops[3].id, y_inc);
}

/// An UNAPP of the x-write is refused while the write is still pushed —
/// the machine forces Figure 7's UNPUSH-before-UNAPP order.
#[test]
fn unapp_requires_unpush_first() {
    let mut m: Machine<MixedSpec> = Machine::new(mixed_spec());
    let t = m.add_thread(vec![Code::method(methods::mem(MemMethod::Write(
        Loc(0),
        1,
    )))]);
    let w = m.app_auto(t).unwrap();
    m.push(t, w).unwrap();
    assert!(m.unapp(t).is_err(), "pushed op cannot be unapplied");
    m.unpush(t, w).unwrap();
    m.unapp(t).unwrap();
}

/// Out-of-order UNPUSH: the HTM ops can be recalled in an order different
/// from their push order when the movers allow it (here: different words).
#[test]
fn out_of_order_unpush_is_admissible() {
    let mut m: Machine<MixedSpec> = Machine::new(mixed_spec());
    let t = m.add_thread(vec![Code::seq_all(vec![
        Code::method(methods::mem(MemMethod::Write(Loc(0), 1))),
        Code::method(methods::mem(MemMethod::Write(Loc(1), 1))),
    ])]);
    let a = m.app_auto(t).unwrap();
    let b = m.app_auto(t).unwrap();
    m.push(t, a).unwrap();
    m.push(t, b).unwrap();
    // Recall the FIRST-pushed op first (op `a`): its suffix in G contains
    // `b`, justified because wr(x0) slides past wr(x1).
    m.unpush(t, a).unwrap();
    m.unpush(t, b).unwrap();
    assert!(m.global().is_empty());
}

/// The generic mixed driver stays serializable across many random
/// interleavings of §7-shaped transactions.
#[test]
fn mixed_driver_serializable_under_random_interleavings() {
    for seed in 1..=25u64 {
        let prog = |k: u64, x: u32| {
            vec![Code::seq_all(vec![
                Code::method(methods::skiplist(SetMethod::Add(k))),
                Code::method(methods::size(CtrMethod::Add(1))),
                Code::method(methods::hash_table(MapMethod::Put(k, k as i64))),
                Code::method(methods::mem(MemMethod::Write(Loc(x), 1))),
            ])]
        };
        let mut sys = MixedSystem::new(mixed_spec(), vec![prog(1, 0), prog(2, 0), prog(3, 1)]);
        run(&mut sys, &mut RandomSched::new(seed), 400_000).unwrap();
        assert!(sys.is_done(), "seed {seed} did not finish");
        assert_eq!(sys.stats().commits, 3, "seed {seed}");
        let report = check_machine(sys.machine());
        assert!(report.is_serializable(), "seed {seed}: {report}");
    }
}

/// The committed `size` counter equals the number of committed
/// transactions that incremented it — the HTM word and the boosted
/// structures stay mutually consistent.
#[test]
fn size_counter_consistent_with_commits() {
    let prog = |k: u64| {
        vec![Code::seq_all(vec![
            Code::method(methods::skiplist(SetMethod::Add(k))),
            Code::method(methods::size(CtrMethod::Add(1))),
        ])]
    };
    let mut sys = MixedSystem::new(mixed_spec(), vec![prog(1), prog(2), prog(3), prog(4)]);
    run(&mut sys, &mut RandomSched::new(99), 400_000).unwrap();
    assert_eq!(sys.stats().commits, 4);
    let committed = sys.machine().global().committed_ops();
    let size_incs = committed
        .iter()
        .filter(|o| matches!(o.method, pushpull::spec::composite::Either::R(_)))
        .count();
    let inserts = committed.len() - size_incs;
    assert_eq!(size_incs, 4);
    assert_eq!(inserts, 4);
}
