//! Chaos matrix: every §6/§7 algorithm × every fault kind × several
//! seeds, under deterministic seeded [`FaultPlan`]s.
//!
//! The robustness contract has three parts, asserted on every cell by
//! the shared [`assert_chaos_cell`] loop:
//!
//! 1. **Completion** — injected denials, kills, stalls, HTM aborts and
//!    transport faults exercise each driver's recovery rules, and the
//!    contention manager bounds every retry loop, so a faulted run still
//!    finishes within a generous tick budget.
//! 2. **Accounting** — the machine audit's `injected` tallies equal the
//!    plan's own fired tallies *exactly* (including kinds that never
//!    fired: absent on both sides), proving each fault was delivered
//!    once and recorded once, and never leaked into `violated`.
//! 3. **Safety** — the serializability oracle passes on every faulted
//!    run, and the opacity oracle on the algorithms that are opaque by
//!    design (optimistic snapshot, MS pessimistic, HTM).
//!
//! The matrix rows span both fault families: the rule/boundary/HTM kinds
//! run on the default local transport, and the five transport kinds run
//! with the channel transport installed (its retry envelope is the code
//! under test — a delivery fault must surface as retries/timeouts in the
//! transport counters, never as a wedge or an oracle violation).
//!
//! Two regression tests ride along: the checkpoint commit-cycle livelock
//! that motivated pluggable contention management, and the
//! graceful-degradation guarantee that a transaction starving past the
//! retry budget commits solo.

use std::sync::Arc;

use pushpull::core::error::Rule;
use pushpull::core::faults::{FaultHook, FaultKind, ALL_FAULT_KINDS, ALL_TRANSPORT_FAULT_KINDS};
use pushpull::core::lang::Code;
use pushpull::core::machine::Machine;
use pushpull::core::op::ThreadId;
use pushpull::core::serializability::check_machine;
use pushpull::core::spec::SeqSpec;
use pushpull::core::TransportConfig;
use pushpull::harness::testutil::{assert_chaos_cell, assert_injection_accounted};
use pushpull::harness::{run, FaultPlan, RandomSched, RoundRobin};
use pushpull::spec::counter::{Counter, CtrMethod};
use pushpull::spec::kvmap::{KvMap, MapMethod};
use pushpull::spec::rwmem::{Loc, MemMethod, RwMem};
use pushpull::spec::set::SetMethod;
use pushpull::tm::mixed::{methods, mixed_spec};
use pushpull::tm::optimistic::ReadPolicy;
use pushpull::tm::{
    BoostingSystem, CheckpointOptimistic, ContentionManager, DependentSystem, ExponentialBackoff,
    GracefulDegradation, HtmSystem, ImmediateRetry, IrrevocableSystem, KarmaAging,
    MatveevShavitSystem, MixedSystem, OptimisticSystem, Tl2System, TmSystem, TwoPhaseLocking,
};

/// Per-run tick budget. Normal runs finish in hundreds of ticks; stalls
/// are ≤ 3 ticks, backoff windows are capped, and blocked waits are
/// bounded by the contention manager's patience, so exhausting this
/// means a genuine wedge.
const BUDGET: usize = 300_000;

const SEEDS: std::ops::RangeInclusive<u64> = 1..=3;

fn rmw(l: u32, v: i64) -> Vec<Code<MemMethod>> {
    vec![Code::seq_all(vec![
        Code::method(MemMethod::Read(Loc(l))),
        Code::method(MemMethod::Write(Loc(l), v)),
    ])]
}

/// All matrix rows: the classic kinds on the local transport, then the
/// transport kinds on the channel transport.
fn matrix_kinds() -> impl Iterator<Item = FaultKind> {
    ALL_FAULT_KINDS
        .iter()
        .chain(ALL_TRANSPORT_FAULT_KINDS.iter())
        .copied()
}

/// Runs one chaos cell through the shared
/// [`assert_chaos_cell`] loop. Transport-fault rows first install the
/// channel transport (the only path that consults the transport fault
/// hook) and afterwards assert its envelope counters actually moved.
fn chaos<T, Sp>(
    label: &str,
    sys: T,
    kind: FaultKind,
    seed: u64,
    expect_opaque: bool,
    machine: impl Fn(&T) -> &Machine<Sp>,
) where
    T: TmSystem,
    Sp: SeqSpec + Send + Sync + 'static,
    Sp::Method: Send + Sync + 'static,
    Sp::Ret: Send + Sync + 'static,
    Sp::State: Send + Sync + 'static,
{
    let n = sys.thread_count();
    let plan = Arc::new(FaultPlan::seeded(seed, n, kind));
    let transport_row = ALL_TRANSPORT_FAULT_KINDS.contains(&kind);
    if transport_row {
        machine(&sys).set_channel_transport(TransportConfig::default());
    }
    let cell = format!("{label}/{kind}");
    let sys = assert_chaos_cell(&cell, sys, &plan, seed, BUDGET, expect_opaque, &machine);
    if transport_row {
        let t = machine(&sys).transport_stats();
        assert!(t.requests > 0, "{cell}/seed {seed}: no transport requests");
        // Every fired delivery fault except a duplicate (whose first
        // reply still lands in time) must show up as a missed deadline.
        if plan.fired_total() > 0 && kind != FaultKind::DuplicateRequest {
            assert!(
                t.timeouts > 0,
                "{cell}/seed {seed}: faults fired but the envelope recorded no timeouts"
            );
        }
    }
}

#[test]
fn chaos_matrix_boosting() {
    for kind in matrix_kinds() {
        for seed in SEEDS {
            let programs: Vec<_> = (0..3u64)
                .map(|t| {
                    vec![Code::seq_all(vec![
                        Code::method(MapMethod::Put(t % 2, t as i64)),
                        Code::method(MapMethod::Get((t + 1) % 2)),
                    ])]
                })
                .collect();
            let sys = BoostingSystem::new(KvMap::new(), programs);
            chaos("boosting", sys, kind, seed, false, |s| s.machine());
        }
    }
}

#[test]
fn chaos_matrix_optimistic() {
    for kind in matrix_kinds() {
        for seed in SEEDS {
            let programs = vec![rmw(0, 1), rmw(1, 2), rmw(0, 3)];
            let sys = OptimisticSystem::new(RwMem::new(), programs, ReadPolicy::Snapshot);
            chaos("optimistic", sys, kind, seed, true, |s| s.machine());
        }
    }
}

#[test]
fn chaos_matrix_pessimistic() {
    for kind in matrix_kinds() {
        for seed in SEEDS {
            let programs = vec![rmw(0, 1), rmw(0, 2), rmw(1, 3)];
            let sys = MatveevShavitSystem::new(RwMem::new(), programs);
            chaos("pessimistic", sys, kind, seed, true, |s| s.machine());
        }
    }
}

#[test]
fn chaos_matrix_tl2() {
    for kind in matrix_kinds() {
        for seed in SEEDS {
            let sys = Tl2System::new(vec![rmw(0, 1), rmw(1, 2), rmw(0, 3)]);
            chaos("tl2", sys, kind, seed, false, |s| s.machine());
        }
    }
}

#[test]
fn chaos_matrix_twophase() {
    for kind in matrix_kinds() {
        for seed in SEEDS {
            let read0 = || vec![Code::method(MemMethod::Read(Loc(0)))];
            let sys = TwoPhaseLocking::new(vec![read0(), rmw(0, 7), rmw(1, 8)]);
            chaos("twophase", sys, kind, seed, false, |s| s.machine());
        }
    }
}

#[test]
fn chaos_matrix_htm() {
    for kind in matrix_kinds() {
        for seed in SEEDS {
            let sys = HtmSystem::new(vec![rmw(0, 1), rmw(1, 2), rmw(0, 3)]);
            chaos("htm", sys, kind, seed, true, |s| s.machine());
        }
    }
}

#[test]
fn chaos_matrix_irrevocable() {
    for kind in matrix_kinds() {
        for seed in SEEDS {
            let programs = vec![rmw(0, 10), rmw(0, 20), rmw(1, 30)];
            let sys = IrrevocableSystem::new(RwMem::new(), programs, ThreadId(0));
            chaos("irrevocable", sys, kind, seed, false, |s| s.machine());
        }
    }
}

#[test]
fn chaos_matrix_checkpoint() {
    for kind in matrix_kinds() {
        for seed in SEEDS {
            let prog = |l: u32, v: i64| {
                vec![Code::seq_all(vec![
                    Code::method(MemMethod::Read(Loc(l))),
                    Code::method(MemMethod::Read(Loc(l + 1))),
                    Code::method(MemMethod::Write(Loc(l), v)),
                ])]
            };
            let sys =
                CheckpointOptimistic::new(RwMem::new(), vec![prog(0, 1), prog(0, 2), prog(1, 3)]);
            chaos("checkpoint", sys, kind, seed, false, |s| s.machine());
        }
    }
}

#[test]
fn chaos_matrix_dependent() {
    for kind in matrix_kinds() {
        for seed in SEEDS {
            let programs: Vec<_> = (0..3i64)
                .map(|t| {
                    vec![Code::seq_all(vec![
                        Code::method(CtrMethod::Add(t + 1)),
                        Code::method(CtrMethod::Get),
                    ])]
                })
                .collect();
            let sys = DependentSystem::new(Counter::new(), programs, true);
            chaos("dependent", sys, kind, seed, false, |s| s.machine());
        }
    }
}

#[test]
fn chaos_matrix_mixed() {
    for kind in matrix_kinds() {
        for seed in SEEDS {
            let programs: Vec<_> = (0..3u64)
                .map(|t| {
                    vec![Code::seq_all(vec![
                        Code::method(methods::skiplist(SetMethod::Add(t))),
                        Code::method(methods::size(CtrMethod::Add(1))),
                        Code::method(methods::hash_table(MapMethod::Put(t, t as i64))),
                        Code::method(methods::mem(MemMethod::Write(Loc((t % 2) as u32), 1))),
                    ])]
                })
                .collect();
            let sys = MixedSystem::new(mixed_spec(), programs);
            chaos("mixed", sys, kind, seed, false, |s| s.machine());
        }
    }
}

/// The never-abort invariants survive fault injection: the irrevocable
/// thread treats injected kills as stalls and injected denials as
/// transient blocks, so it still commits without a single abort.
#[test]
fn irrevocable_thread_survives_targeted_kills() {
    for seed in SEEDS {
        let programs = vec![rmw(0, 10), rmw(0, 20)];
        let mut sys = IrrevocableSystem::new(RwMem::new(), programs, ThreadId(0));
        // Target the irrevocable thread specifically: kill at its first
        // two boundaries, deny its first CMT.
        let plan = Arc::new(
            FaultPlan::new(2)
                .kill(0, 0)
                .kill(0, 1)
                .deny(0, Rule::Cmt, 0),
        );
        sys.machine()
            .set_fault_hook(Some(plan.clone() as Arc<dyn FaultHook>));
        let out = run(&mut sys, &mut RandomSched::new(seed), BUDGET).unwrap();
        assert!(out.completed, "seed {seed}: wedged");
        assert_eq!(sys.stats().commits, 2, "seed {seed}");
        assert_eq!(
            sys.irrevocable_aborts(),
            0,
            "seed {seed}: irrevocable thread aborted under injected faults"
        );
        assert_injection_accounted(&sys.machine().audit(), &plan.fired());
        assert!(
            check_machine(sys.machine()).is_serializable(),
            "seed {seed}"
        );
    }
}

fn contending_checkpoint(cm: Arc<dyn ContentionManager>) -> CheckpointOptimistic<RwMem> {
    // Opposite push orders on two shared locations: t0 pushes w0 then
    // w1, t1 pushes w1 then w0.
    let prog = |first: u32, second: u32, v: i64| {
        vec![Code::seq_all(vec![
            Code::method(MemMethod::Write(Loc(first), v)),
            Code::method(MemMethod::Write(Loc(second), v)),
        ])]
    };
    CheckpointOptimistic::with_contention(RwMem::new(), vec![prog(0, 1, 5), prog(1, 0, 7)], cm)
}

/// Denying thread 0's *second* PUSH leaves its first write pushed but
/// uncommitted. Thread 1's commit batch then pushes its own first write
/// and genuinely conflicts on the second — a cycle of uncommitted pushed
/// ops in which each thread waits for the other. Under immediate-retry
/// ("wait forever") this livelocks; any policy with bounded patience
/// gives up, UNPUSHes the cycle, and both threads commit. This is the
/// scenario that forced the old hard-coded blocked-streak threshold out
/// of the driver and into the contention manager.
#[test]
fn checkpoint_push_cycle_livelocks_under_immediate_retry() {
    let wedge = |cm: Arc<dyn ContentionManager>, budget: usize| {
        let mut sys = contending_checkpoint(cm);
        let plan = Arc::new(FaultPlan::new(2).deny(0, Rule::Push, 1));
        sys.machine()
            .set_fault_hook(Some(plan as Arc<dyn FaultHook>));
        let out = run(&mut sys, &mut RoundRobin, budget).unwrap();
        (sys, out)
    };

    // Baseline policy: both threads block forever on the push cycle.
    let (sys, out) = wedge(Arc::new(ImmediateRetry), 50_000);
    assert!(
        !out.completed,
        "immediate-retry was expected to livelock but completed in {} ticks",
        out.ticks
    );
    assert_eq!(sys.stats().commits, 0, "no thread can commit in the cycle");

    // Bounded-patience policies abort one side of the cycle and recover.
    let recovering: Vec<(&str, Arc<dyn ContentionManager>)> = vec![
        ("exponential-backoff", Arc::new(ExponentialBackoff::new(7))),
        ("graceful-degradation", Arc::new(GracefulDegradation::new())),
        ("karma-aging", Arc::new(KarmaAging::new())),
    ];
    for (name, cm) in recovering {
        let (sys, out) = wedge(cm, BUDGET);
        assert!(out.completed, "{name}: failed to break the push cycle");
        assert_eq!(sys.stats().commits, 2, "{name}");
        assert!(
            sys.stats().aborts >= 1,
            "{name}: recovery requires a full abort"
        );
        let report = check_machine(sys.machine());
        assert!(report.is_serializable(), "{name}: {report}");
    }
}

/// Acceptance: a transaction that starves past the retry budget under
/// repeated commit denials is escalated to solo (degraded) mode and
/// commits. The degradation is visible in `SystemStats` and in the
/// starvation report.
#[test]
fn degradation_commits_a_starving_transaction() {
    let cm = GracefulDegradation::new();
    let budget = cm.retry_budget;
    let mut sys = OptimisticSystem::with_contention(
        RwMem::new(),
        vec![rmw(0, 1), rmw(1, 2)],
        ReadPolicy::Snapshot,
        Arc::new(cm),
    );
    // Deny thread 0's CMT for `budget + 4` consecutive attempts: enough
    // to blow the retry budget, degrade, and keep aborting a few more
    // times while already solo before the denial finally lifts.
    let mut plan = FaultPlan::new(2);
    for at in 0..u64::from(budget) + 4 {
        plan = plan.deny(0, Rule::Cmt, at);
    }
    let plan = Arc::new(plan);
    sys.machine()
        .set_fault_hook(Some(plan.clone() as Arc<dyn FaultHook>));
    let out = run(&mut sys, &mut RoundRobin, BUDGET).unwrap();
    assert!(out.completed, "wedged after {} ticks", out.ticks);

    let stats = sys.stats();
    assert_eq!(stats.commits, 2, "the starving transaction must commit");
    assert!(
        stats.degradations >= 1,
        "starvation past the retry budget must escalate to solo mode"
    );
    assert!(
        stats.max_abort_streak >= u64::from(budget),
        "streak {} never reached the retry budget {budget}",
        stats.max_abort_streak
    );
    let starvation = sys.starvation().expect("driver runs a contention manager");
    assert!(starvation.max_consecutive_aborts >= u64::from(budget));
    assert!(starvation.degradations >= 1);
    assert_injection_accounted(&sys.machine().audit(), &plan.fired());
    assert!(check_machine(sys.machine()).is_serializable());
}

/// Every policy drives a genuinely contended (unfaulted) workload to
/// completion — the pluggable-manager seam works with all four built-in
/// policies on both an optimistic and a lock-based driver.
#[test]
fn every_policy_completes_contended_runs() {
    type MakePolicy = fn() -> Arc<dyn ContentionManager>;
    let policies: Vec<(&str, MakePolicy)> = vec![
        ("immediate-retry", || Arc::new(ImmediateRetry)),
        ("exponential-backoff", || {
            Arc::new(ExponentialBackoff::new(3))
        }),
        ("karma-aging", || Arc::new(KarmaAging::new())),
        ("graceful-degradation", || {
            Arc::new(GracefulDegradation::new())
        }),
    ];
    for (name, make) in policies {
        let mut sys = OptimisticSystem::with_contention(
            RwMem::new(),
            vec![rmw(0, 1), rmw(0, 2), rmw(0, 3)],
            ReadPolicy::Snapshot,
            make(),
        );
        let out = run(&mut sys, &mut RandomSched::new(11), BUDGET).unwrap();
        assert!(out.completed, "optimistic/{name}");
        assert_eq!(sys.stats().commits, 3, "optimistic/{name}");
        assert!(
            check_machine(sys.machine()).is_serializable(),
            "optimistic/{name}"
        );

        let mut sys =
            TwoPhaseLocking::with_contention(vec![rmw(0, 4), rmw(0, 5), rmw(1, 6)], make());
        let out = run(&mut sys, &mut RandomSched::new(11), BUDGET).unwrap();
        assert!(out.completed, "twophase/{name}");
        assert_eq!(sys.stats().commits, 3, "twophase/{name}");
        assert!(
            check_machine(sys.machine()).is_serializable(),
            "twophase/{name}"
        );
    }
}
