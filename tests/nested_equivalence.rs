//! Flat-vs-closed-nested golden equivalence: wrapping part of a
//! transaction body in a closed `tx` marker changes the *scope
//! structure*, never the observable run.
//!
//! Every §6/§7 driver runs the same workload twice under the
//! deterministic round-robin scheduler — once with flat bodies, once
//! with the tail of each body wrapped in `Code::tx` — at shard counts
//! 1, 4 and 16. Closed nesting shares the parent's flat log and
//! transaction identity and its merge is event-free, so both runs must
//! produce **bit-identical traces**, identical commit counts, identical
//! audit ledgers and the same serializability verdict. The only
//! permitted difference is the nesting counters: the nested run opens
//! and merges scopes, the flat run never does.
//!
//! An open-nested abort test rides along: a parent abort after an `otx`
//! child commit must replay the compensating transaction, leaving the
//! committed projection's *abstract state* exactly where it would be
//! had the child never run — checked by denotation, not by op count.

use pushpull::core::lang::Code;
use pushpull::core::machine::Machine;
use pushpull::core::op::ThreadId;
use pushpull::core::serializability::check_machine_nested;
use pushpull::core::spec::SeqSpec;
use pushpull::harness::testutil::assert_ledger_matches;
use pushpull::harness::{run, RoundRobin};
use pushpull::spec::bank::{Bank, BankMethod, BankState};
use pushpull::spec::counter::{Counter, CtrMethod};
use pushpull::spec::kvmap::{KvMap, MapMethod};
use pushpull::spec::rwmem::{Loc, MemMethod, RwMem};
use pushpull::spec::set::SetMethod;
use pushpull::tm::mixed::{methods, mixed_spec};
use pushpull::tm::optimistic::ReadPolicy;
use pushpull::tm::{
    BoostingSystem, CheckpointOptimistic, DependentSystem, HtmSystem, IrrevocableSystem,
    MatveevShavitSystem, MixedSystem, OptimisticSystem, Tl2System, TmSystem, TwoPhaseLocking,
};

const BUDGET: usize = 2_000_000;

/// All shard counts the equivalence is quantified over.
const SHARD_COUNTS: [usize; 3] = [1, 4, 16];

/// The flat rendering of a body: plain sequencing.
fn flat<M: Clone>(steps: Vec<Code<M>>) -> Code<M> {
    Code::seq_all(steps)
}

/// The closed-nested rendering of the same body: the tail after the
/// first step runs inside a `tx` marker (`a ; b ; c` ⇒ `a ; tx(b ; c)`;
/// a single step is wrapped whole). Same methods in the same order —
/// only the scope structure differs.
fn nested<M: Clone>(mut steps: Vec<Code<M>>) -> Code<M> {
    if steps.len() <= 1 {
        return Code::tx(Code::seq_all(steps));
    }
    let head = steps.remove(0);
    Code::seq(head, Code::tx(Code::seq_all(steps)))
}

/// One run: reshard, drive to completion, snapshot everything the
/// equivalence quantifies over, plus how many scopes were opened.
fn golden<T, Sp>(
    label: &str,
    mut sys: T,
    shards: usize,
    machine: impl Fn(&T) -> &Machine<Sp>,
) -> (u64, String, pushpull::core::audit::CriteriaAudit, u64)
where
    T: TmSystem,
    Sp: SeqSpec,
    Sp::Method: std::fmt::Display,
{
    sys.set_log_shards(shards);
    let out = run(&mut sys, &mut RoundRobin, BUDGET)
        .unwrap_or_else(|e| panic!("{label}@{shards}: machine error: {e}"));
    assert!(out.completed, "{label}@{shards}: wedged");
    let m = machine(&sys);
    let report = check_machine_nested(m);
    assert!(report.is_serializable(), "{label}@{shards}: {report}");
    let commits = m.committed_txns().len() as u64;
    let opened = m.nesting_stats().scopes_opened;
    (commits, m.trace().render(), m.audit(), opened)
}

/// Drives the flat and nested renderings of one workload at every shard
/// count and asserts they are bit-identical, modulo the scope counters.
fn assert_nested_equivalence<T, Sp>(
    label: &str,
    make: impl Fn(fn(Vec<Code<Sp::Method>>) -> Code<Sp::Method>) -> T,
    machine: impl Fn(&T) -> &Machine<Sp> + Copy,
) where
    T: TmSystem,
    Sp: SeqSpec,
    Sp::Method: std::fmt::Display,
{
    for shards in SHARD_COUNTS {
        let (fc, ft, fa, fo) = golden(label, make(flat), shards, machine);
        let (nc, nt, na, no) = golden(label, make(nested), shards, machine);
        // Drivers may open scopes of their own (checkpointing), so the
        // baseline need not be zero — but the tx markers must add some.
        assert!(no > fo, "{label}@{shards}: nested run never entered its tx");
        assert_eq!(nc, fc, "{label}@{shards}: commits diverge");
        assert_eq!(
            nt, ft,
            "{label}@{shards}: traces diverge — closed nesting leaked an event"
        );
        assert_ledger_matches(&na, &fa);
    }
}

#[test]
fn boosting_nesting_is_verdict_equivalent() {
    let body = |t: u64| {
        vec![
            Code::method(MapMethod::Put(t % 4, t as i64)),
            Code::method(MapMethod::Get((t + 1) % 4)),
        ]
    };
    assert_nested_equivalence(
        "boosting/kvmap",
        move |wrap| {
            let programs = (0..8u64).map(|t| vec![wrap(body(t))]).collect();
            BoostingSystem::new(KvMap::new(), programs)
        },
        |s| s.machine(),
    );
}

#[test]
fn optimistic_nesting_is_verdict_equivalent() {
    let body = |t: u32| {
        vec![
            Code::method(MemMethod::Read(Loc(t % 2))),
            Code::method(MemMethod::Write(Loc(t % 2), i64::from(t))),
        ]
    };
    assert_nested_equivalence(
        "optimistic/rwmem",
        move |wrap| {
            let programs = (0..6u32).map(|t| vec![wrap(body(t))]).collect();
            OptimisticSystem::new(RwMem::new(), programs, ReadPolicy::Snapshot)
        },
        |s| s.machine(),
    );
}

#[test]
fn pessimistic_nesting_is_verdict_equivalent() {
    assert_nested_equivalence(
        "pessimistic/rwmem",
        |wrap| {
            let programs = (1..=4i64)
                .map(|v| vec![wrap(vec![Code::method(MemMethod::Write(Loc(0), v))])])
                .collect();
            MatveevShavitSystem::new(RwMem::new(), programs)
        },
        |s| s.machine(),
    );
}

fn rmw(l: u32, v: i64) -> Vec<Code<MemMethod>> {
    vec![
        Code::method(MemMethod::Read(Loc(l))),
        Code::method(MemMethod::Write(Loc(l), v)),
    ]
}

#[test]
fn tl2_nesting_is_verdict_equivalent() {
    assert_nested_equivalence(
        "tl2/rwmem",
        |wrap| {
            let programs = [(0, 1), (1, 2), (0, 3), (1, 4)]
                .into_iter()
                .map(|(l, v)| vec![wrap(rmw(l, v))])
                .collect();
            Tl2System::new(programs)
        },
        |s| s.machine(),
    );
}

#[test]
fn twophase_nesting_is_verdict_equivalent() {
    assert_nested_equivalence(
        "2pl/rwmem",
        |wrap| {
            let read0 = vec![Code::method(MemMethod::Read(Loc(0)))];
            TwoPhaseLocking::new(vec![
                vec![wrap(read0.clone())],
                vec![wrap(read0)],
                vec![wrap(rmw(1, 7))],
                vec![wrap(rmw(1, 8))],
            ])
        },
        |s| s.machine(),
    );
}

#[test]
fn htm_nesting_is_verdict_equivalent() {
    assert_nested_equivalence(
        "htm/rwmem",
        |wrap| {
            let programs = [(0, 1), (1, 2), (0, 3), (2, 4)]
                .into_iter()
                .map(|(l, v)| vec![wrap(rmw(l, v))])
                .collect();
            HtmSystem::new(programs)
        },
        |s| s.machine(),
    );
}

#[test]
fn irrevocable_nesting_is_verdict_equivalent() {
    assert_nested_equivalence(
        "irrevocable/rwmem",
        |wrap| {
            let programs = [(0, 10), (0, 20), (1, 30), (0, 40)]
                .into_iter()
                .map(|(l, v)| vec![wrap(rmw(l, v))])
                .collect();
            IrrevocableSystem::new(RwMem::new(), programs, ThreadId(0))
        },
        |s| s.machine(),
    );
}

#[test]
fn checkpoint_nesting_is_verdict_equivalent() {
    // The driver already runs on checkpoint scopes; an explicit tx
    // marker nests a closed scope inside them.
    let body = |l: u32, v: i64| {
        vec![
            Code::method(MemMethod::Read(Loc(l))),
            Code::method(MemMethod::Read(Loc(l + 1))),
            Code::method(MemMethod::Write(Loc(l), v)),
        ]
    };
    assert_nested_equivalence(
        "checkpoint/rwmem",
        move |wrap| {
            let programs = [(0, 1), (0, 2), (1, 3), (1, 4)]
                .into_iter()
                .map(|(l, v)| vec![wrap(body(l, v))])
                .collect();
            CheckpointOptimistic::new(RwMem::new(), programs)
        },
        |s| s.machine(),
    );
}

#[test]
fn dependent_nesting_is_verdict_equivalent() {
    let body = |t: i64| {
        vec![
            Code::method(CtrMethod::Add(t + 1)),
            Code::method(CtrMethod::Get),
        ]
    };
    assert_nested_equivalence(
        "dependent/counter",
        move |wrap| {
            let programs = (0..4i64).map(|t| vec![wrap(body(t))]).collect();
            DependentSystem::new(Counter::new(), programs, true)
        },
        |s| s.machine(),
    );
}

#[test]
fn mixed_nesting_is_verdict_equivalent() {
    let body = |t: u64| {
        vec![
            Code::method(methods::skiplist(SetMethod::Add(t))),
            Code::method(methods::size(CtrMethod::Add(1))),
            Code::method(methods::hash_table(MapMethod::Put(t, t as i64))),
            Code::method(methods::mem(MemMethod::Write(Loc((t % 2) as u32), 1))),
        ]
    };
    assert_nested_equivalence(
        "mixed/product",
        move |wrap| {
            let programs = (0..4u64).map(|t| vec![wrap(body(t))]).collect();
            MixedSystem::new(mixed_spec(), programs)
        },
        |s| s.machine(),
    );
}

// ---------------------------------------------------------------------
// Open nesting: the compensation must restore the abstract state
// exactly (checked by denotation, not by op count).
// ---------------------------------------------------------------------

#[test]
fn open_abort_compensation_restores_exact_state() {
    let spec = Bank::new();
    let mut m = Machine::new(Bank::new());
    let t = m.add_thread(vec![Code::seq(
        Code::otx(Code::method(BankMethod::Deposit(0, 5))),
        Code::method(BankMethod::Deposit(1, 3)),
    )]);
    m.app_auto(t).unwrap(); // child deposit applies inside the peeled otx
    m.app_auto(t).unwrap(); // open child commits; parent deposit applies
    assert_eq!(m.committed_txns().len(), 1, "child committed on its own");

    // Parent aborts: the registered compensation (a withdraw) must
    // commit, leaving the committed projection's denotation exactly at
    // the initial state — as if the child had never run.
    m.abort_and_retry(t).unwrap();
    assert_eq!(m.committed_txns().len(), 2, "compensation committed");
    assert_eq!(m.nesting_stats().compensations_replayed, 1);
    let committed = m.global().committed_ops();
    let mut states = spec.denote(&committed).into_iter();
    let state = states.next().expect("committed projection denotes");
    assert!(states.next().is_none(), "bank is deterministic");
    // The withdraw leaves an explicit zero balance where the initial
    // state had no entry; observably they are the same state.
    assert!(
        state.values().all(|&bal| bal == 0),
        "deposit ∘ withdraw must restore every balance: {state:?}"
    );

    // The retry completes: final state holds exactly both deposits.
    m.app_auto(t).unwrap();
    m.app_auto(t).unwrap();
    m.push_all_and_commit(t).unwrap();
    let report = check_machine_nested(&m);
    assert!(report.is_serializable(), "{report}");
    let committed = m.global().committed_ops();
    let states = spec.denote(&committed);
    let expected: BankState = [(0u32, 5i64), (1u32, 3i64)].into_iter().collect();
    assert_eq!(states.into_iter().collect::<Vec<_>>(), vec![expected]);
}
