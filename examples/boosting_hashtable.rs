//! Figure 2: the transactional-boosting hashtable.
//!
//! The paper's Figure 2 shows a `HashTable<K,V>` whose `put`/`get`
//! acquire an abstract lock on the key, mutate a linearizable base map
//! in place, and decompose into PUSH/PULL rules:
//!
//! ```text
//! put:   [PULL*] ; APP ; PUSH          (modify shared state in place)
//! abort: UNPUSH ; UNAPP                (inverse operation)
//! commit: CMT ; unlock
//! ```
//!
//! This example (a) runs concurrent boosted transactions and prints their
//! rule decomposition, (b) exercises the abort path, and (c) mirrors the
//! committed machine state into the real substrate data structure (a
//! skip-list map behind a lock — our stand-in for Java's
//! `ConcurrentSkipListMap`) to show the implementation-level view agrees
//! with the model-level view.
//!
//! Run with: `cargo run --example boosting_hashtable`

use pushpull::core::lang::Code;
use pushpull::core::op::ThreadId;
use pushpull::core::serializability::check_machine;
use pushpull::ds::skiplist::SkipListMap;
use pushpull::ds::sync::Linearized;
use pushpull::harness::{run, RandomSched};
use pushpull::spec::kvmap::{KvMap, MapMethod, MapRet};
use pushpull::tm::{BoostingSystem, TmSystem};

fn main() {
    // Figure 2's scenario: concurrent put/get transactions on a shared
    // hashtable, one per thread, keys partially overlapping.
    let programs = vec![
        // T0: put(1, 100); get(2)
        vec![Code::seq_all(vec![
            Code::method(MapMethod::Put(1, 100)),
            Code::method(MapMethod::Get(2)),
        ])],
        // T1: put(2, 200); get(1)
        vec![Code::seq_all(vec![
            Code::method(MapMethod::Put(2, 200)),
            Code::method(MapMethod::Get(1)),
        ])],
        // T2: put(1, 111) — same key as T0: must serialize behind the lock
        vec![Code::method(MapMethod::Put(1, 111))],
    ];

    let mut sys = BoostingSystem::new(KvMap::new(), programs);

    // Exercise the abort path of Figure 2: force T2 to abort once after
    // it has applied+pushed, so the trace shows UNPUSH ; UNAPP (the
    // "inverse operation" of the paper).
    // First let T2 make one step (APP+PUSH)…
    while sys
        .machine()
        .trace()
        .rule_names(ThreadId(2))
        .iter()
        .filter(|n| **n == "PUSH")
        .count()
        == 0
    {
        sys.tick(ThreadId(2)).expect("tick");
    }
    sys.force_abort(ThreadId(2));
    sys.tick(ThreadId(2)).expect("abort tick");

    // Now run everything to completion under a random interleaving.
    run(&mut sys, &mut RandomSched::new(0xF162), 100_000).expect("run");

    println!("=== Figure 2 rule decomposition, per thread ===");
    for t in 0..sys.thread_count() {
        println!(
            "T{t}: {}",
            sys.machine().trace().rule_names(ThreadId(t)).join(" -> ")
        );
    }
    println!("\n=== full trace ===");
    print!("{}", sys.machine().trace().render());

    // T2's trace must contain the Figure 2 abort path: … PUSH … UNPUSH UNAPP …
    let t2 = sys.machine().trace().rule_names(ThreadId(2));
    assert!(
        t2.windows(2).any(|w| w == ["UNPUSH", "UNAPP"]),
        "abort path must UNPUSH then UNAPP (got {t2:?})"
    );

    // Every transaction committed, serializably.
    let report = check_machine(sys.machine());
    println!(
        "\ncommits={} aborts={} blocked-ticks={}",
        sys.stats().commits,
        sys.stats().aborts,
        sys.stats().blocked_ticks
    );
    println!("serializability oracle: {report}");
    assert!(report.is_serializable());
    assert_eq!(sys.stats().commits, 3);

    // Implementation-level view: replay the committed log into the real
    // substrate (skip-list map behind a lock, like the paper's
    // ConcurrentSkipListMap) and compare.
    let base: Linearized<SkipListMap<u64, i64>> = Linearized::new(SkipListMap::new());
    for op in sys.machine().global().committed_ops() {
        match op.method {
            MapMethod::Put(k, v) => {
                let prev = base.with(|m| m.insert(k, v));
                // The model recorded exactly this previous binding.
                assert_eq!(
                    MapRet::Prev(prev),
                    op.ret,
                    "model/substrate divergence at {op:?}"
                );
            }
            MapMethod::Remove(k) => {
                let prev = base.with(|m| m.remove(&k));
                assert_eq!(MapRet::Prev(prev), op.ret);
            }
            MapMethod::Get(k) => {
                let val = base.with(|m| m.get(&k).copied());
                assert_eq!(MapRet::Val(val), op.ret, "a committed get diverged");
            }
            MapMethod::ContainsKey(k) => {
                let b = base.with(|m| m.contains_key(&k));
                assert_eq!(MapRet::Bool(b), op.ret);
            }
            MapMethod::Size => {
                let n = base.with(|m| m.len());
                assert_eq!(MapRet::Count(n), op.ret);
            }
        }
    }
    println!("\nsubstrate skip-list agrees with the committed log:");
    base.with(|m| {
        for (k, v) in m.iter() {
            println!("  {k} -> {v}");
        }
    });
}
