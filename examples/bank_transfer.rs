//! Atomic bank transfers under boosted transactions — the textbook
//! abstract-commutativity workload, exercising the Lipton left/right
//! mover *asymmetry* the Push/Pull criteria are built from:
//!
//! * `deposit` ◁-moves across `deposit` (always);
//! * a successful `withdraw` moves right across a `deposit`;
//! * a `deposit` does **not** move across a successful `withdraw` —
//!   the withdraw might only have succeeded because of the deposit.
//!
//! Transfers run concurrently; the serializability oracle validates every
//! run, and money is conserved.
//!
//! Run with: `cargo run --example bank_transfer`

use pushpull::core::lang::Code;
use pushpull::core::serializability::check_machine;
use pushpull::core::spec::SeqSpec;
use pushpull::harness::{run, RandomSched};
use pushpull::spec::bank::{Bank, BankMethod, BankRet};
use pushpull::tm::{BoostingSystem, TmSystem};

const ACCOUNTS: u32 = 4;
const SEED_MONEY: i64 = 100;

fn main() {
    // A funding transaction per account, then transfer transactions:
    // each moves 10 from account t%4 to account (t+1)%4.
    let mut programs: Vec<Vec<Code<BankMethod>>> = Vec::new();
    // Thread 0 funds every account in one transaction.
    programs.push(vec![Code::seq_all(
        (0..ACCOUNTS).map(|a| Code::method(BankMethod::Deposit(a, SEED_MONEY))),
    )]);
    // Threads 1..=4 each run two transfer transactions.
    for t in 0..4u32 {
        let from = t % ACCOUNTS;
        let to = (t + 1) % ACCOUNTS;
        let transfer = || {
            Code::seq_all(vec![
                Code::method(BankMethod::Withdraw(from, 10)),
                Code::method(BankMethod::Deposit(to, 10)),
            ])
        };
        programs.push(vec![transfer(), transfer()]);
    }

    let mut sys = BoostingSystem::new(Bank::new(), programs);
    run(&mut sys, &mut RandomSched::new(0xBA27), 1_000_000).expect("run");
    assert!(sys.is_done());

    println!("=== trace ===");
    print!("{}", sys.machine().trace().render());

    let report = check_machine(sys.machine());
    println!(
        "\ncommits={} aborts={} blocked={}",
        sys.stats().commits,
        sys.stats().aborts,
        sys.stats().blocked_ticks
    );
    println!("serializability oracle: {report}");
    assert!(report.is_serializable());
    assert_eq!(sys.stats().commits, 9);

    // Conservation of money: fold the committed log through the
    // denotational semantics and sum the balances.
    let committed = sys.machine().global().committed_ops();
    let spec = Bank::new();
    let states = spec.denote(&committed);
    assert_eq!(states.len(), 1, "bank is deterministic");
    let state = states.into_iter().next().unwrap();
    let total: i64 = state.values().sum();
    println!("\nfinal balances:");
    for (a, b) in &state {
        println!("  account {a}: {b}");
    }
    println!("total = {total}");
    // Transfers move money around; only the seed deposits create it.
    // (Failed withdraws — if any transfer raced an empty account — skip
    // the matching deposit only if the program said so; ours always
    // deposits, so a failed withdraw *creates* 10. Check the ledger
    // explicitly instead of assuming: every committed withdraw that
    // returned false must be matched against its deposit.)
    let failed_withdraws = committed
        .iter()
        .filter(|o| {
            matches!(
                (o.method, o.ret),
                (BankMethod::Withdraw(_, _), BankRet::Ok(false))
            )
        })
        .count() as i64;
    assert_eq!(
        total,
        i64::from(ACCOUNTS) * SEED_MONEY + failed_withdraws * 10,
        "money must be conserved modulo failed-withdraw deposits"
    );
    println!("conservation verified ({failed_withdraws} failed withdraws)");
}
