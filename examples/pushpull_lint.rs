//! `pushpull-lint`: run the static criteria prover and the §6 linter
//! over the structured workload corpus (`harness::patterns`) and print
//! rustc-style reports.
//!
//! For each workload family the analyzer reports the mover matrix over
//! the union method footprint, which of the machine's mover clauses are
//! provable ahead of time (and would be elided at runtime), and any
//! program-level findings (never-commits, unreachable methods, potential
//! PULL cycles). A deliberately mis-declared driver at the end shows the
//! `pattern-divergence` lint firing.
//!
//! Run with: `cargo run --example pushpull_lint`

use pushpull::analysis::{analyze, check_declaration, AnalysisPlan};
use pushpull::core::error::Rule;
use pushpull::core::RulePattern;
use pushpull::harness::patterns;
use pushpull::spec::bank::Bank;
use pushpull::spec::kvmap::KvMap;
use pushpull::spec::queue::QueueSpec;
use pushpull::spec::rwmem::RwMem;
use pushpull::tm::full_rule_pattern;

fn banner(title: &str, plan: &AnalysisPlan) {
    println!("=== {title} ===");
    print!("{plan}");
    match &plan.discharge {
        Some(facts) => println!(
            "→ runtime elides {} mover clause(s) on this workload\n",
            facts.obligations().len()
        ),
        None => println!("→ nothing provable: every check stays dynamic\n"),
    }
}

fn main() {
    // Bank transfers: disjoint-account deposits commute, shared-account
    // withdraws do not — PUSH (i) survives, the cross-txn clauses don't.
    let transfers = patterns::transfers(4, 2, 5, 100);
    banner("transfers (bank)", &analyze(&Bank::new(), &transfers));

    // Producer/consumer over a FIFO queue: the fully non-commutative
    // regime, plus a genuine cross-thread conflict cycle.
    let pc = patterns::producer_consumer(2, 2, 3);
    banner(
        "producer-consumer (queue)",
        &analyze(&QueueSpec::new(), &pc),
    );

    // Read-modify-write chains: same-location read/write pairs block
    // every clause once threads share locations.
    let rmw = patterns::rmw_chains(4, 2, 2);
    banner("rmw-chains (memory)", &analyze(&RwMem::new(), &rmw));

    // Scanners vs updaters: reads all commute; the updaters' writes
    // conflict with the scans on shared keys.
    let scans = patterns::scans_and_updates(4, 2, 3);
    banner("scans-and-updates (kvmap)", &analyze(&KvMap::new(), &scans));

    // Disjoint-key workload: everything proven, all four clauses elide.
    let disjoint: Vec<_> = (0..4u64)
        .map(|t| {
            vec![pushpull::core::lang::Code::method(
                pushpull::spec::kvmap::MapMethod::Put(t, t as i64),
            )]
        })
        .collect();
    banner("disjoint-keys (kvmap)", &analyze(&KvMap::new(), &disjoint));

    // Declaration lint: a driver claiming it never pushes, on a workload
    // that must push, is an error; the real drivers declare all seven.
    let spec = KvMap::new();
    let mut plan = analyze(&spec, &disjoint);
    check_declaration(
        &mut plan,
        &spec,
        &disjoint,
        "bogus-driver",
        Some(RulePattern::from_iter([Rule::App, Rule::Cmt])),
    );
    check_declaration(
        &mut plan,
        &spec,
        &disjoint,
        "boosting",
        Some(full_rule_pattern()),
    );
    println!("=== declaration check ===");
    for d in &plan.diagnostics {
        print!("{d}");
    }
    println!("{} error(s), {} warning(s)", plan.errors(), plan.warnings());
}
