//! `pushpull-lint`: run the static criteria prover, the §6 linter, and
//! the spec certifier over the structured workload corpus
//! (`harness::patterns`) and the shipped specification suite, printing
//! rustc-style reports.
//!
//! For each workload family the analyzer reports the mover matrix over
//! the union method footprint, which of the machine's mover clauses are
//! provable ahead of time (and would be elided at runtime), and any
//! program-level findings (never-commits, unreachable methods, potential
//! PULL cycles). A deliberately mis-declared driver shows the
//! `pattern-divergence` lint firing — asserted here as a self-test, not
//! counted against the exit status.
//!
//! The certifier section re-derives each bounded spec's mover matrix and
//! minimal footprint cover from its denotational semantics and
//! cross-checks every hand-written declaration. Any error-severity
//! finding on a shipped spec makes the process exit nonzero, so this
//! example doubles as the CI certification gate.
//!
//! Run with: `cargo run --example pushpull_lint`

use pushpull::analysis::{
    analyze, analyze_certified, certify, check_declaration, render_report, AnalysisPlan, Severity,
};
use pushpull::core::error::Rule;
use pushpull::core::RulePattern;
use pushpull::harness::patterns;
use pushpull::spec::bank::Bank;
use pushpull::spec::composite::Product;
use pushpull::spec::counter::Counter;
use pushpull::spec::kvmap::KvMap;
use pushpull::spec::queue::QueueSpec;
use pushpull::spec::register::CasRegister;
use pushpull::spec::rwmem::{Loc, RwMem};
use pushpull::spec::set::SetSpec;
use pushpull::tm::full_rule_pattern;

fn banner(title: &str, plan: &AnalysisPlan) {
    println!("=== {title} ===");
    print!("{plan}");
    match &plan.discharge {
        Some(facts) => println!(
            "→ runtime elides {} mover clause(s) on this workload\n",
            facts.obligations().len()
        ),
        None => println!("→ nothing provable: every check stays dynamic\n"),
    }
}

/// Certify one bounded spec, print its report, and return its
/// error-severity finding count.
fn certify_spec<S>(name: &str, spec: &S) -> usize
where
    S: pushpull::core::spec::SeqSpec,
    S::Method: std::fmt::Display,
{
    println!("=== certify: {name} ===");
    match certify(spec, name) {
        Ok(cert) => {
            print!("{}", render_report(&cert.diagnostics));
            let c = &cert.certificate;
            println!(
                "→ {} method(s), {} footprint class(es), {} obligation(s) discharged, valid={}\n",
                c.methods.len(),
                c.components.iter().copied().max().map_or(0, |m| m + 1),
                c.obligations.len(),
                cert.is_valid()
            );
            cert.errors()
        }
        Err(d) => {
            print!("{d}");
            println!("→ spec is not finitely certifiable\n");
            // Uncertifiable is a note, not an error: no finite universes.
            usize::from(d.severity == Severity::Error)
        }
    }
}

fn main() {
    // Bank transfers: disjoint-account deposits commute, shared-account
    // withdraws do not — PUSH (i) survives, the cross-txn clauses don't.
    let transfers = patterns::transfers(4, 2, 5, 100);
    banner("transfers (bank)", &analyze(&Bank::new(), &transfers));

    // Producer/consumer over a FIFO queue: the fully non-commutative
    // regime, plus a genuine cross-thread conflict cycle.
    let pc = patterns::producer_consumer(2, 2, 3);
    banner(
        "producer-consumer (queue)",
        &analyze(&QueueSpec::new(), &pc),
    );

    // Read-modify-write chains: same-location read/write pairs block
    // every clause once threads share locations.
    let rmw = patterns::rmw_chains(4, 2, 2);
    banner("rmw-chains (memory)", &analyze(&RwMem::new(), &rmw));

    // Scanners vs updaters: reads all commute; the updaters' writes
    // conflict with the scans on shared keys.
    let scans = patterns::scans_and_updates(4, 2, 3);
    banner("scans-and-updates (kvmap)", &analyze(&KvMap::new(), &scans));

    // Disjoint-key workload: everything proven, all four clauses elide.
    let disjoint: Vec<_> = (0..4u64)
        .map(|t| {
            vec![pushpull::core::lang::Code::method(
                pushpull::spec::kvmap::MapMethod::Put(t, t as i64),
            )]
        })
        .collect();
    banner("disjoint-keys (kvmap)", &analyze(&KvMap::new(), &disjoint));

    // Declaration lint self-test: a driver claiming it never pushes, on a
    // workload that must push, is an error; the real drivers declare all
    // seven rules. The bogus finding is expected — assert it fired and
    // leave it out of the exit status.
    let spec = KvMap::new();
    let mut plan = analyze(&spec, &disjoint);
    check_declaration(
        &mut plan,
        &spec,
        &disjoint,
        "bogus-driver",
        Some(RulePattern::from_iter([Rule::App, Rule::Cmt])),
    );
    check_declaration(
        &mut plan,
        &spec,
        &disjoint,
        "boosting",
        Some(full_rule_pattern()),
    );
    println!("=== declaration check (self-test) ===");
    for d in &plan.diagnostics {
        print!("{d}");
    }
    println!("{} error(s), {} warning(s)", plan.errors(), plan.warnings());
    assert_eq!(
        plan.errors(),
        1,
        "the deliberately bogus driver declaration must be caught"
    );
    println!("→ pattern-divergence fired on the bogus driver, as expected\n");

    // ── Spec certifier over the whole shipped suite ──────────────────
    // Every spec is certified against its own denotational semantics;
    // error-severity findings gate the exit status (and hence CI).
    let mut errors = 0;
    errors += certify_spec("counter", &Counter::with_universe(2));
    errors += certify_spec("register", &CasRegister::with_universe(2));
    errors += certify_spec("queue", &QueueSpec::bounded(vec![1, 2], 2));
    errors += certify_spec("bank", &Bank::bounded(vec![1, 2], 2));
    errors += certify_spec("kvmap", &KvMap::bounded(vec![0, 1], vec![1]));
    errors += certify_spec(
        "rwmem",
        &RwMem::bounded(vec![Loc(0), Loc(1)], vec![0, 1, 2]),
    );
    errors += certify_spec("set", &SetSpec::bounded(vec![1, 2]));
    errors += certify_spec(
        "product(set,counter)",
        &Product::new(SetSpec::bounded(vec![1]), Counter::with_universe(2)),
    );
    // An unbounded spec is honestly uncertifiable (a note, not an error).
    errors += certify_spec("counter (unbounded)", &Counter::new());

    // ── Certificate-carrying plan ────────────────────────────────────
    // `analyze_certified` folds the certifier into the workload plan;
    // the certificate is what strict-mode arming will demand, and its
    // footprint cover yields the recommended shard count.
    let bounded = KvMap::bounded(vec![0, 1, 2, 3], vec![1]);
    let cplan = analyze_certified(&bounded, &disjoint, "kvmap");
    println!("=== certified plan: disjoint-keys (kvmap) ===");
    print!("{cplan}");
    println!(
        "→ certificate attached: {}; recommended shard count: {}\n",
        cplan.certificate.is_some(),
        cplan.recommended_shards()
    );

    if errors > 0 {
        eprintln!("pushpull-lint: {errors} error-severity certifier finding(s)");
        std::process::exit(1);
    }
    println!("pushpull-lint: spec suite certified clean");
}
