//! Run every §6 algorithm class on identical workloads and print the
//! comparison table the paper's introduction motivates: pessimistic
//! (boosting) wins under commutative contention; optimistic wins
//! read-mostly; everything stays serializable.
//!
//! Run with: `cargo run --release --example algorithms_compare`

use pushpull::harness::{run_reported, RunReport, WorkloadSpec};
use pushpull::spec::kvmap::KvMap;
use pushpull::spec::rwmem::RwMem;
use pushpull::tm::checkpoint::CheckpointOptimistic;
use pushpull::tm::optimistic::{OptimisticSystem, ReadPolicy};
use pushpull::tm::pessimistic::MatveevShavitSystem;
use pushpull::tm::tl2::Tl2System;
use pushpull::tm::twophase::TwoPhaseLocking;
use pushpull::tm::{BoostingSystem, HtmSystem};

fn banner(s: &str) {
    println!("\n==== {s} ====");
}

fn show(r: &RunReport) {
    println!("{r}");
    assert!(
        r.serializability.is_serializable(),
        "oracle failure: {}",
        r.serializability
    );
    assert!(r.outcome.completed, "{} did not complete", r.algorithm);
}

fn main() {
    let base = WorkloadSpec {
        threads: 4,
        txns_per_thread: 16,
        ops_per_txn: 3,
        key_range: 8,
        read_ratio: 0.5,
        seed: 2026,
    };

    banner("map workload, contended (8 keys, 50% reads)");
    {
        let mut sys = BoostingSystem::new(KvMap::new(), base.kvmap_programs());
        show(&run_reported(&mut sys, 1, 2_000_000, |s| s.stats(), |s| s.machine()).unwrap());
        let mut sys =
            OptimisticSystem::new(KvMap::new(), base.kvmap_programs(), ReadPolicy::Snapshot);
        show(&run_reported(&mut sys, 1, 2_000_000, |s| s.stats(), |s| s.machine()).unwrap());
        let mut sys =
            OptimisticSystem::new(KvMap::new(), base.kvmap_programs(), ReadPolicy::Refresh);
        show(&run_reported(&mut sys, 1, 2_000_000, |s| s.stats(), |s| s.machine()).unwrap());
        let mut sys = CheckpointOptimistic::new(KvMap::new(), base.kvmap_programs());
        show(&run_reported(&mut sys, 1, 2_000_000, |s| s.stats(), |s| s.machine()).unwrap());
    }

    banner("map workload, disjoint keys per thread (boosting's home turf)");
    {
        let mut sys = BoostingSystem::new(KvMap::new(), base.kvmap_disjoint_programs());
        let r = run_reported(&mut sys, 2, 2_000_000, |s| s.stats(), |s| s.machine()).unwrap();
        show(&r);
        assert_eq!(
            r.stats.aborts, 0,
            "disjoint keys must never abort under boosting"
        );
        let mut sys = OptimisticSystem::new(
            KvMap::new(),
            base.kvmap_disjoint_programs(),
            ReadPolicy::Snapshot,
        );
        show(&run_reported(&mut sys, 2, 2_000_000, |s| s.stats(), |s| s.machine()).unwrap());
    }

    banner("read-mostly memory workload (90% reads — optimism's home turf)");
    {
        let read_mostly = WorkloadSpec {
            read_ratio: 0.9,
            key_range: 16,
            ..base
        };
        let mut sys = OptimisticSystem::new(
            RwMem::new(),
            read_mostly.rwmem_programs(),
            ReadPolicy::Snapshot,
        );
        show(&run_reported(&mut sys, 3, 2_000_000, |s| s.stats(), |s| s.machine()).unwrap());
        let mut sys = MatveevShavitSystem::new(RwMem::new(), read_mostly.rwmem_programs());
        show(&run_reported(&mut sys, 3, 2_000_000, |s| s.stats(), |s| s.machine()).unwrap());
        let mut sys = HtmSystem::new(read_mostly.rwmem_programs());
        show(&run_reported(&mut sys, 3, 2_000_000, |s| s.stats(), |s| s.machine()).unwrap());
        let mut sys = Tl2System::new(read_mostly.rwmem_programs());
        let r = run_reported(&mut sys, 3, 2_000_000, |s| s.stats(), |s| s.machine()).unwrap();
        assert_eq!(
            sys.criteria_surprises(),
            0,
            "TL2 validation must approximate the criteria soundly"
        );
        show(&r);
        let mut sys = TwoPhaseLocking::new(read_mostly.rwmem_programs());
        show(&run_reported(&mut sys, 3, 2_000_000, |s| s.stats(), |s| s.machine()).unwrap());
    }

    banner("write-heavy memory workload (10% reads)");
    {
        let write_heavy = WorkloadSpec {
            read_ratio: 0.1,
            key_range: 4,
            ..base
        };
        let mut sys = OptimisticSystem::new(
            RwMem::new(),
            write_heavy.rwmem_programs(),
            ReadPolicy::Snapshot,
        );
        show(&run_reported(&mut sys, 4, 2_000_000, |s| s.stats(), |s| s.machine()).unwrap());
        let mut sys = MatveevShavitSystem::new(RwMem::new(), write_heavy.rwmem_programs());
        let r = run_reported(&mut sys, 4, 2_000_000, |s| s.stats(), |s| s.machine()).unwrap();
        show(&r);
        let mut sys = HtmSystem::new(write_heavy.rwmem_programs());
        show(&run_reported(&mut sys, 4, 2_000_000, |s| s.stats(), |s| s.machine()).unwrap());
    }

    println!("\nall runs complete; every run passed the serializability oracle.");
}
