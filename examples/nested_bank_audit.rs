//! Nested transaction scopes on a bank: an audit-log append running
//! *inside* a transfer transaction, three ways.
//!
//! The transfer withdraws from `FROM` and deposits to `TO`; in between
//! it records the attempt by depositing a token into the `LOG` account.
//! That record is the nested child:
//!
//! 1. **Closed nesting** — the record is a `tx(...)` child: it merges
//!    into the transfer event-free, so everything commits as one atomic
//!    transaction (bit-identical to the flat rendering).
//! 2. **Open nesting** — the record is an `otx(...)` child: it commits
//!    to the shared log mid-transfer as its own transaction (visible to
//!    everyone immediately) and registers a compensating inverse with
//!    the parent. This is legal precisely because the record commutes
//!    with the parent's earlier withdraw — PUSH criterion (i) ranges
//!    over the parent's earlier unpushed operations.
//! 3. **Compensation** — the transfer aborts after its record
//!    committed: the machine replays the inverse (a withdraw undoes the
//!    log deposit) as a committed compensating transaction, restoring
//!    the abstract state exactly.
//!
//! Every run is re-verified by the per-level oracle
//! (`check_machine_nested`): children resolve, children commit before
//! their parents, compensations provably restore.
//!
//! Run with: `cargo run --example nested_bank_audit`

use pushpull::core::error::MachineError;
use pushpull::core::lang::Code;
use pushpull::core::machine::Machine;
use pushpull::core::serializability::check_machine_nested;
use pushpull::core::spec::SeqSpec;
use pushpull::spec::bank::{Bank, BankMethod};

const FROM: u32 = 0;
const TO: u32 = 1;
const LOG: u32 = 2;

/// The transfer body around an audit-record child: withdraw, record the
/// attempt in the (wrapped) child, deposit.
fn transfer(wrap: fn(Code<BankMethod>) -> Code<BankMethod>) -> Code<BankMethod> {
    Code::seq_all(vec![
        Code::method(BankMethod::Withdraw(FROM, 10)),
        wrap(Code::method(BankMethod::Deposit(LOG, 1))),
        Code::method(BankMethod::Deposit(TO, 10)),
    ])
}

/// Funds the source account, then runs the transfer body to completion.
fn run_transfer(body: Code<BankMethod>) -> Machine<Bank> {
    let mut m = Machine::new(Bank::new());
    let funder = m.add_thread(vec![Code::method(BankMethod::Deposit(FROM, 100))]);
    let teller = m.add_thread(vec![body]);
    m.app_auto(funder).expect("fund");
    m.push_all_and_commit(funder).expect("fund commit");
    // PULL the funding into the teller's view so the withdraw observes
    // the committed balance.
    m.pull_all_committed(teller).expect("pull");
    drive(&mut m, teller);
    m.push_all_and_commit(teller).expect("transfer commit");
    m
}

/// APPlies steps until the program is exhausted; `push_all_and_commit`
/// settles any trailing scope frames itself.
fn drive(m: &mut Machine<Bank>, t: pushpull::core::op::ThreadId) {
    loop {
        match m.app_auto(t) {
            Ok(_) => {}
            Err(MachineError::NoSuchStep(_)) => return,
            Err(e) => panic!("transfer step: {e}"),
        }
    }
}

fn main() {
    // 1. Closed: the whole transfer (record included) is ONE committed
    //    transaction.
    let m = run_transfer(transfer(Code::tx));
    let closed_txns = m.committed_txns().len();
    println!("closed nesting:  {closed_txns} committed transactions (funder + transfer)");
    let report = check_machine_nested(&m);
    assert!(report.is_serializable(), "{report}");
    assert_eq!(closed_txns, 2, "closed child merged into the transfer");
    let stats = m.nesting_stats();
    println!(
        "                 scopes opened={} merged={}",
        stats.scopes_opened, stats.scopes_merged
    );

    // 2. Open: the record commits mid-transfer as its own transaction.
    let m = run_transfer(transfer(Code::otx));
    let open_txns = m.committed_txns().len();
    println!("open nesting:    {open_txns} committed transactions (funder + record + transfer)");
    let report = check_machine_nested(&m);
    assert!(report.is_serializable(), "{report}");
    assert_eq!(open_txns, 3, "open child committed on its own");
    assert_eq!(report.txns_per_level, vec![2, 1]);
    println!("                 per level: {:?}", report.txns_per_level);

    // 3. Compensation: abort the transfer after its record committed.
    let spec = Bank::new();
    let mut m = Machine::new(Bank::new());
    let funder = m.add_thread(vec![Code::method(BankMethod::Deposit(FROM, 100))]);
    let teller = m.add_thread(vec![transfer(Code::otx)]);
    m.app_auto(funder).expect("fund");
    m.push_all_and_commit(funder).expect("fund commit");
    m.pull_all_committed(teller).expect("pull");
    // Drive until the open child has committed (scope closed again):
    // the withdraw, the child's record, then the settling step that
    // commits the child and applies the final deposit.
    for _ in 0..3 {
        m.app_auto(teller).expect("transfer step");
    }
    assert_eq!(m.scope_depth(teller).unwrap(), 0);
    let before_abort = m.committed_txns().len();
    m.abort_and_retry(teller).expect("transfer abort");
    let after_abort = m.committed_txns().len();
    println!(
        "compensation:    transfer aborted; committed txns {before_abort} -> {after_abort} \
         (compensating withdraw replayed)"
    );
    assert_eq!(after_abort, before_abort + 1);
    // The committed projection denotes exactly the funded state: the
    // record's effect is gone, undone by its inverse, not by magic.
    let states = spec.denote(&m.global().committed_ops());
    let state = states.into_iter().next().expect("deterministic spec");
    println!("                 balances after compensation: {state:?}");
    assert_eq!(state.get(&FROM), Some(&100));
    assert_eq!(state.get(&LOG), None, "canonical: zero balance not stored");
    assert_eq!(m.nesting_stats().compensations_replayed, 1);
    // Let the retried transfer finish. The first attempt's record was
    // compensated away, so the log holds exactly one record again —
    // the successful attempt's.
    m.pull_all_committed(teller).expect("pull after retry");
    drive(&mut m, teller);
    m.push_all_and_commit(teller).expect("transfer recommit");
    let states = spec.denote(&m.global().committed_ops());
    let state = states.into_iter().next().expect("deterministic spec");
    assert_eq!(state.get(&LOG), Some(&1), "the successful attempt's record");
    assert_eq!(state.get(&TO), Some(&10));
    let report = check_machine_nested(&m);
    assert!(report.is_serializable(), "{report}");
    println!("per-level oracle: {report}");

    // 4. Depth: a batch job running two transfers, each a closed child
    //    of the batch, each recording through an open grandchild —
    //    scopes three deep. The closed layers merge away; the two open
    //    records still commit on their own mid-batch.
    let batch = Code::seq(Code::tx(transfer(Code::otx)), Code::tx(transfer(Code::otx)));
    let m = run_transfer(batch);
    let batch_txns = m.committed_txns().len();
    let stats = m.nesting_stats();
    println!(
        "batch job:       {batch_txns} committed transactions, \
         scopes opened={} merged={} open commits={}",
        stats.scopes_opened, stats.scopes_merged, stats.open_commits
    );
    assert_eq!(batch_txns, 4, "funder + two records + the batch");
    assert_eq!(stats.scopes_merged, 2, "both closed transfers merged");
    assert_eq!(stats.open_commits, 2, "both records committed open");
    let report = check_machine_nested(&m);
    assert!(report.is_serializable(), "{report}");
    let states = spec.denote(&m.global().committed_ops());
    let state = states.into_iter().next().expect("deterministic spec");
    assert_eq!(state.get(&FROM), Some(&80));
    assert_eq!(state.get(&TO), Some(&20));
    assert_eq!(state.get(&LOG), Some(&2));
}
