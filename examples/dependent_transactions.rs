//! §6.5: early release and dependent transactions — the non-opaque
//! corner of the PUSH/PULL design space.
//!
//! Transaction B PULLs an effect that transaction A has PUSHed but not
//! yet committed. B is now *dependent* on A: CMT criterion (iii) blocks
//! B until A commits, and if A aborts B must detangle (partial rewind +
//! UNPULL) — both paths are shown below, and both runs remain
//! serializable even though they are not opaque.
//!
//! Run with: `cargo run --example dependent_transactions`

use pushpull::core::lang::Code;
use pushpull::core::op::ThreadId;
use pushpull::core::opacity::check_trace;
use pushpull::core::serializability::check_machine;
use pushpull::harness::{run, RoundRobin};
use pushpull::spec::counter::{Counter, CtrMethod};
use pushpull::tm::dependent::DependentSystem;
use pushpull::tm::{Tick, TmSystem};

fn build() -> DependentSystem<Counter> {
    DependentSystem::new(
        Counter::new(),
        vec![
            vec![Code::method(CtrMethod::Add(1))], // A: releases early
            vec![Code::method(CtrMethod::Get)],    // B: reads uncommitted
        ],
        true, // eager release
    )
}

fn main() {
    // ---------------------------------------------------------------
    // Scenario 1: the dependency commits — B waits, then commits too.
    // ---------------------------------------------------------------
    println!("=== scenario 1: dependency commits ===");
    let mut sys = build();
    let (a, b) = (ThreadId(0), ThreadId(1));

    sys.tick(a).unwrap(); // A begins
    sys.tick(a).unwrap(); // A: APP(add) ; PUSH(add)  — early release
    sys.tick(b).unwrap(); // B begins: PULLs A's UNCOMMITTED add
    println!("B's dependencies: {:?}", sys.dependencies(b));
    assert_eq!(sys.dependencies(b).len(), 1);

    sys.tick(b).unwrap(); // B: APP(get) — observes the uncommitted 1!
    let t = sys.tick(b).unwrap(); // B tries to commit…
    assert_eq!(
        t,
        Tick::Blocked,
        "CMT criterion (iii) gates on the dependency"
    );
    println!("B blocked at commit: pulled op still uncommitted (CMT criterion (iii))");

    while sys.machine().thread(a).unwrap().commits() == 0 {
        sys.tick(a).unwrap(); // A commits
    }
    run(&mut sys, &mut RoundRobin, 10_000).unwrap(); // B commits now

    print!("\n{}", sys.machine().trace().render());
    let report = check_machine(sys.machine());
    let opacity = check_trace(&sys.machine().trace());
    println!("\nserializability: {report}");
    println!("opacity: {opacity:?}  (expected: NOT opaque — an uncommitted pull happened)");
    assert!(report.is_serializable());
    assert!(!opacity.is_opaque());

    // ---------------------------------------------------------------
    // Scenario 2: the dependency ABORTS — B detangles (partial rewind).
    // ---------------------------------------------------------------
    println!("\n=== scenario 2: dependency aborts, B detangles ===");
    let mut sys = build();

    sys.tick(a).unwrap(); // A begins
    sys.tick(a).unwrap(); // A: APP ; PUSH (early release)
    sys.tick(b).unwrap(); // B begins: pulls uncommitted add
    sys.tick(b).unwrap(); // B: get -> observes 1

    sys.force_abort(a);
    sys.tick(a).unwrap(); // A aborts: UNPUSH(add) — it vanishes from G
    println!("A aborted; its pushed add has vanished from the shared log");

    let t = sys.tick(b).unwrap(); // B detects the vanished dependency
    assert_eq!(t, Tick::Progress);
    println!(
        "B detangled via partial rewind (UNAPP its get, UNPULL the dead op): {} partial detangle(s)",
        sys.partial_detangles()
    );
    assert!(sys.partial_detangles() >= 1);
    assert!(sys.dependencies(b).is_empty());

    run(&mut sys, &mut RoundRobin, 10_000).unwrap();
    print!("\n{}", sys.machine().trace().render());
    let report = check_machine(sys.machine());
    println!("\nserializability: {report}");
    assert!(report.is_serializable());
    assert_eq!(sys.stats().commits, 2);

    // B's committed get must have observed 0 from A's aborted attempt?
    // No — A retried and committed, so B observed whichever serial state
    // held when it finally ran; the oracle above already verified it.
    println!("\nboth scenarios serializable; dependency machinery verified.");
}
