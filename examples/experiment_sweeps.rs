//! Multi-seed experiment sweeps: the aggregated (mean ± σ) tables
//! recorded in EXPERIMENTS.md. Every individual run is validated by the
//! serializability oracle before its statistics are counted.
//!
//! Run with: `cargo run --release --example experiment_sweeps`

use pushpull::core::serializability::check_machine;
use pushpull::harness::{run, sweep, RandomSched, WorkloadSpec};
use pushpull::spec::kvmap::KvMap;
use pushpull::spec::rwmem::RwMem;
use pushpull::tm::checkpoint::CheckpointOptimistic;
use pushpull::tm::optimistic::{OptimisticSystem, ReadPolicy};
use pushpull::tm::pessimistic::MatveevShavitSystem;
use pushpull::tm::tl2::Tl2System;
use pushpull::tm::{BoostingSystem, HtmSystem};

const SEEDS: std::ops::RangeInclusive<u64> = 1..=10;
const BUDGET: usize = 5_000_000;

fn main() {
    let contended = WorkloadSpec {
        threads: 4,
        txns_per_thread: 10,
        ops_per_txn: 3,
        key_range: 6,
        read_ratio: 0.5,
        seed: 11,
    };
    let read_mostly = WorkloadSpec {
        read_ratio: 0.9,
        key_range: 16,
        ..contended
    };

    println!("== contended map workload (6 keys, 50% reads), 10 seeds ==");
    println!(
        "{}",
        sweep("boosting", SEEDS, |seed| {
            let mut sys = BoostingSystem::new(KvMap::new(), contended.kvmap_programs());
            let out = run(&mut sys, &mut RandomSched::new(seed), BUDGET).unwrap();
            assert!(out.completed);
            assert!(check_machine(sys.machine()).is_serializable());
            (sys.stats(), out.ticks)
        })
    );
    println!(
        "{}",
        sweep("optimistic-snapshot", SEEDS, |seed| {
            let mut sys = OptimisticSystem::new(
                KvMap::new(),
                contended.kvmap_programs(),
                ReadPolicy::Snapshot,
            );
            let out = run(&mut sys, &mut RandomSched::new(seed), BUDGET).unwrap();
            assert!(out.completed);
            assert!(check_machine(sys.machine()).is_serializable());
            (sys.stats(), out.ticks)
        })
    );
    println!(
        "{}",
        sweep("optimistic-refresh", SEEDS, |seed| {
            let mut sys = OptimisticSystem::new(
                KvMap::new(),
                contended.kvmap_programs(),
                ReadPolicy::Refresh,
            );
            let out = run(&mut sys, &mut RandomSched::new(seed), BUDGET).unwrap();
            assert!(out.completed);
            assert!(check_machine(sys.machine()).is_serializable());
            (sys.stats(), out.ticks)
        })
    );
    println!(
        "{}",
        sweep("checkpoint-optimistic", SEEDS, |seed| {
            let mut sys = CheckpointOptimistic::new(KvMap::new(), contended.kvmap_programs());
            let out = run(&mut sys, &mut RandomSched::new(seed), BUDGET).unwrap();
            assert!(out.completed);
            assert!(check_machine(sys.machine()).is_serializable());
            (sys.stats(), out.ticks)
        })
    );

    println!("\n== read-mostly memory workload (16 locs, 90% reads), 10 seeds ==");
    println!(
        "{}",
        sweep("optimistic-snapshot", SEEDS, |seed| {
            let mut sys = OptimisticSystem::new(
                RwMem::new(),
                read_mostly.rwmem_programs(),
                ReadPolicy::Snapshot,
            );
            let out = run(&mut sys, &mut RandomSched::new(seed), BUDGET).unwrap();
            assert!(out.completed);
            assert!(check_machine(sys.machine()).is_serializable());
            (sys.stats(), out.ticks)
        })
    );
    println!(
        "{}",
        sweep("tl2", SEEDS, |seed| {
            let mut sys = Tl2System::new(read_mostly.rwmem_programs());
            let out = run(&mut sys, &mut RandomSched::new(seed), BUDGET).unwrap();
            assert!(out.completed);
            assert_eq!(sys.criteria_surprises(), 0);
            assert!(check_machine(sys.machine()).is_serializable());
            (sys.stats(), out.ticks)
        })
    );
    println!(
        "{}",
        sweep("pessimistic-ms", SEEDS, |seed| {
            let mut sys = MatveevShavitSystem::new(RwMem::new(), read_mostly.rwmem_programs());
            let out = run(&mut sys, &mut RandomSched::new(seed), BUDGET).unwrap();
            assert!(out.completed);
            assert!(check_machine(sys.machine()).is_serializable());
            (sys.stats(), out.ticks)
        })
    );
    println!(
        "{}",
        sweep("htm-sim", SEEDS, |seed| {
            let mut sys = HtmSystem::new(read_mostly.rwmem_programs());
            let out = run(&mut sys, &mut RandomSched::new(seed), BUDGET).unwrap();
            assert!(out.completed);
            assert!(check_machine(sys.machine()).is_serializable());
            (sys.stats(), out.ticks)
        })
    );

    println!("\n== write-heavy memory workload (4 locs, 10% reads), 10 seeds ==");
    let write_heavy = WorkloadSpec {
        read_ratio: 0.1,
        key_range: 4,
        ..contended
    };
    println!(
        "{}",
        sweep("optimistic-snapshot", SEEDS, |seed| {
            let mut sys = OptimisticSystem::new(
                RwMem::new(),
                write_heavy.rwmem_programs(),
                ReadPolicy::Snapshot,
            );
            let out = run(&mut sys, &mut RandomSched::new(seed), BUDGET).unwrap();
            assert!(out.completed);
            assert!(check_machine(sys.machine()).is_serializable());
            (sys.stats(), out.ticks)
        })
    );
    println!(
        "{}",
        sweep("tl2", SEEDS, |seed| {
            let mut sys = Tl2System::new(write_heavy.rwmem_programs());
            let out = run(&mut sys, &mut RandomSched::new(seed), BUDGET).unwrap();
            assert!(out.completed);
            assert_eq!(sys.criteria_surprises(), 0);
            (sys.stats(), out.ticks)
        })
    );
    println!(
        "{}",
        sweep("htm-sim", SEEDS, |seed| {
            let mut sys = HtmSystem::new(write_heavy.rwmem_programs());
            let out = run(&mut sys, &mut RandomSched::new(seed), BUDGET).unwrap();
            assert!(out.completed);
            (sys.stats(), out.ticks)
        })
    );

    println!("\nall sweeps complete; every run passed the serializability oracle.");
}
