//! Quick start: two threads increment a shared counter under an
//! optimistic TM, with every PUSH/PULL rule criterion checked, and the
//! run verified serializable by the independent oracle.
//!
//! Run with: `cargo run --example quickstart`

use pushpull::core::lang::Code;
use pushpull::core::op::ThreadId;
use pushpull::core::opacity::check_trace;
use pushpull::core::serializability::check_machine;
use pushpull::harness::{run, RoundRobin};
use pushpull::spec::counter::{Counter, CtrMethod};
use pushpull::tm::optimistic::{OptimisticSystem, ReadPolicy};
use pushpull::tm::TmSystem;

fn main() {
    // Each thread runs one transaction: { get; add(1); get }.
    let prog = || {
        vec![Code::seq_all(vec![
            Code::method(CtrMethod::Get),
            Code::method(CtrMethod::Add(1)),
            Code::method(CtrMethod::Get),
        ])]
    };
    let mut sys = OptimisticSystem::new(Counter::new(), vec![prog(), prog()], ReadPolicy::Snapshot);

    run(&mut sys, &mut RoundRobin, 10_000).expect("machine rules misused");

    println!("=== trace (every PUSH/PULL rule applied) ===");
    print!("{}", sys.machine().trace().render());

    println!("\n=== per-thread rule decomposition ===");
    for t in 0..sys.thread_count() {
        println!(
            "T{t}: {}",
            sys.machine().trace().rule_names(ThreadId(t)).join(" -> ")
        );
    }

    let report = check_machine(sys.machine());
    println!("\ncommits: {}", sys.stats().commits);
    println!("aborts:  {}", sys.stats().aborts);
    println!("serializability oracle: {report}");
    println!("opacity: {:?}", check_trace(&sys.machine().trace()));

    assert!(report.is_serializable());
    assert_eq!(sys.stats().commits, 2);

    // The committed global log ends with the counter at 2: the final
    // committed get of the later transaction observed both increments.
    let last_get = sys
        .machine()
        .committed_txns()
        .last()
        .unwrap()
        .ops
        .last()
        .unwrap()
        .clone();
    println!("final observed counter value: {:?}", last_get.ret);
}
