//! Section 7 / Figure 7: mixed Boosting + HTM interaction.
//!
//! The transaction
//!
//! ```java
//! atomic {
//!   skiplist.insert(foo);
//!   size++;                  // HTM int
//!   hashT.map(foo => bar);
//!   if (*) x++; else y++;    // HTM ints
//! }
//! ```
//!
//! hits an HTM conflict at `x++`. The PUSH/PULL model shows the
//! implementation may discard (UNPUSH) only the HTM effects — leaving the
//! expensive boosted skiplist/hashtable effects in the shared view — then
//! rewind (UNAPP) past the aborted access and march forward down the
//! other branch. This example drives the checked machine through exactly
//! Figure 7's rule sequence and prints it.
//!
//! Run with: `cargo run --example boosting_htm`

use pushpull::core::lang::Code;
use pushpull::core::op::ThreadId;
use pushpull::core::serializability::check_machine;
use pushpull::core::Machine;
use pushpull::spec::counter::CtrMethod;
use pushpull::spec::kvmap::MapMethod;
use pushpull::spec::rwmem::{Loc, MemMethod};
use pushpull::spec::set::SetMethod;
use pushpull::tm::mixed::{methods, mixed_spec, MixedMethod};

const FOO: u64 = 1;
const BAR: i64 = 2;
const X: Loc = Loc(0);
const Y: Loc = Loc(1);

fn main() {
    let mut m = Machine::new(mixed_spec());

    // A setup transaction populates the shared structures so the main
    // transaction has committed skiplist/hashtable effects to PULL —
    // and it pulls them *non-chronologically* (skiplist ops first, the
    // hashtable op only when it first touches the hashtable), as §4
    // describes for transactions over two shared data structures.
    let setup = m.add_thread(vec![Code::seq_all(vec![
        Code::method(methods::skiplist(SetMethod::Add(9))),
        Code::method(methods::hash_table(MapMethod::Put(5, 50))),
    ])]);

    // The §7 transaction, with the nondeterministic branch `x++ + y++`.
    let tx = Code::seq_all(vec![
        Code::method(methods::skiplist(SetMethod::Add(FOO))),
        Code::method(methods::size(CtrMethod::Add(1))),
        Code::method(methods::hash_table(MapMethod::Put(FOO, BAR))),
        Code::choice(
            Code::method(methods::mem(MemMethod::Write(X, 1))),
            Code::method(methods::mem(MemMethod::Write(Y, 1))),
        ),
    ]);
    let main_t = m.add_thread(vec![tx]);

    // Run the setup transaction to commit.
    let a = m.app_auto(setup).unwrap();
    m.push(setup, a).unwrap();
    let b = m.app_auto(setup).unwrap();
    m.push(setup, b).unwrap();
    m.commit(setup).unwrap();
    let skiplist_setup_op = a;
    let hasht_setup_op = b;

    println!("— Transaction begins —");
    // PULL(all skiplist operations): only the skiplist effect, for now.
    m.pull(main_t, skiplist_setup_op).unwrap();

    // APP(skiplist.insert(foo)); PUSH(skiplist.insert(foo)).
    let insert = app(&mut m, main_t, methods::skiplist(SetMethod::Add(FOO)));
    m.push(main_t, insert).unwrap();

    // APP(size++) — HTM-managed: applied but not yet pushed.
    let size_inc = app(&mut m, main_t, methods::size(CtrMethod::Add(1)));

    // PULL(all hashT operations) — pulled late, out of chronological order.
    m.pull(main_t, hasht_setup_op).unwrap();

    // APP(hashT.map(foo=>bar)); PUSH(hashT.map(foo=>bar)).
    let put = app(
        &mut m,
        main_t,
        methods::hash_table(MapMethod::Put(FOO, BAR)),
    );
    m.push(main_t, put).unwrap();

    // Take the x++ branch: APP(x++).
    let x_inc = app(&mut m, main_t, methods::mem(MemMethod::Write(X, 1)));

    println!("— Push HTM ops —");
    m.push(main_t, size_inc).unwrap();
    m.push(main_t, x_inc).unwrap();

    println!("— HTM signals abort —");
    // UNPUSH(x++); UNPUSH(size++): the HTM effects leave the shared view;
    // the boosted skiplist/hashtable effects STAY.
    m.unpush(main_t, x_inc).unwrap();
    m.unpush(main_t, size_inc).unwrap();
    assert!(
        m.global().contains_id(insert),
        "boosted insert must remain pushed"
    );
    assert!(
        m.global().contains_id(put),
        "boosted put must remain pushed"
    );

    // Rewind some code: UNAPP(x++).
    m.unapp(main_t).unwrap();

    println!("— March forward again —");
    // APP(y++).
    let y_inc = app(&mut m, main_t, methods::mem(MemMethod::Write(Y, 1)));

    println!("— Uninterleaved commit —");
    // PUSH(size++); PUSH(y++); CMT.
    m.push(main_t, size_inc).unwrap();
    m.push(main_t, y_inc).unwrap();
    m.commit(main_t).unwrap();

    println!("\n=== the machine's recorded rule sequence (cf. Figure 7) ===");
    print!("{}", m.trace().render());

    println!("\n=== main thread decomposition ===");
    println!("{}", m.trace().rule_names(ThreadId(main_t.0)).join(" -> "));

    let report = check_machine(&m);
    println!("\nserializability oracle: {report}");
    assert!(report.is_serializable());

    // Figure 7's exact shape, as a golden assertion.
    let names = m.trace().rule_names(ThreadId(main_t.0));
    assert_eq!(
        names,
        vec![
            "BEGIN", "PULL", "APP", "PUSH", // insert
            "APP",  // size++
            "PULL", "APP", "PUSH", // hashT.map
            "APP",  // x++
            "PUSH", "PUSH", // push HTM ops: size++, x++
            "UNPUSH", "UNPUSH", // HTM abort
            "UNAPP",  // rewind x++
            "APP",    // y++
            "PUSH", "PUSH", // uninterleaved commit: size++, y++
            "CMT",
        ]
    );
    println!("\nFigure 7 rule sequence reproduced exactly.");
}

/// APP a specific method, selecting the matching `step(c)` branch.
fn app(
    m: &mut Machine<pushpull::tm::mixed::MixedSpec>,
    tid: ThreadId,
    method: MixedMethod,
) -> pushpull::core::OpId {
    m.app_method(tid, &method).expect("APP")
}
