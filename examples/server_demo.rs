//! The service front-end end to end: a bank-transfer session mix
//! through [`TxnServer`] — funding sessions, transfer sessions, balance
//! audits that deliberately abort, and per-shard group commit batching
//! the commit-ready transactions (one shard-lock acquisition and one
//! contiguous stamp range per batch).
//!
//! Prints each session's outcome, the server statistics including the
//! group-commit counters, and verifies conservation of money plus the
//! serializability oracle.
//!
//! Run with: `cargo run --example server_demo`

use pushpull::core::serializability::check_machine;
use pushpull::core::spec::SeqSpec;
use pushpull::harness::{run, RoundRobin};
use pushpull::server::{ServerConfig, SessionScript, TxnServer};
use pushpull::spec::bank::{Bank, BankMethod, BankRet};

const ACCOUNTS: u32 = 8;
const SEED_MONEY: i64 = 100;
const TRANSFERS: u32 = 24;

fn main() {
    // The session mix a small payments service would see: one funding
    // session per account, a wave of transfer sessions, and a few
    // read-only audit sessions that close with Abort (a client checking
    // balances without committing anything).
    let mut scripts: Vec<SessionScript<BankMethod>> = Vec::new();
    for a in 0..ACCOUNTS {
        scripts.push(SessionScript::commit(vec![BankMethod::Deposit(
            a, SEED_MONEY,
        )]));
    }
    for t in 0..TRANSFERS {
        let from = t % ACCOUNTS;
        let to = (t + 3) % ACCOUNTS;
        scripts.push(SessionScript::commit(vec![
            BankMethod::Withdraw(from, 10),
            BankMethod::Deposit(to, 10),
        ]));
    }
    for a in 0..4 {
        scripts.push(SessionScript::abort(vec![
            BankMethod::Balance(a),
            BankMethod::Balance(a + 4),
        ]));
    }
    let total_sessions = scripts.len();

    let mut server = TxnServer::new(
        Bank::new(),
        scripts,
        ServerConfig {
            workers: 4,
            slots_per_worker: 4,
            group_commit: true,
            ..ServerConfig::default()
        },
    );
    run(&mut server, &mut RoundRobin, 1_000_000).expect("run");

    println!("=== session outcomes ===");
    for (id, outcome) in server.outcomes() {
        println!("  {id}: {outcome:?}");
    }

    let stats = server.stats();
    println!("\n=== server statistics ===");
    println!("sessions        {}", stats.sessions);
    println!("commits         {}", stats.commits);
    println!("aborts          {}", stats.aborts);
    println!("lock acquires   {}", stats.lock_acquires);
    println!("group batches   {}", stats.group_batches);
    println!("batched txns    {}", stats.group_txns);
    println!("locks saved     {}", stats.group_locks_saved);
    println!("batch-size hist {:?}", stats.group_hist);
    println!(
        "locks/commit    {:.3}",
        stats.lock_acquires as f64 / stats.commits.max(1) as f64
    );

    assert_eq!(stats.sessions as usize, total_sessions);
    assert_eq!(stats.commits, u64::from(ACCOUNTS + TRANSFERS));
    assert!(stats.group_batches > 0, "group commit never batched");

    let report = check_machine(server.machine());
    println!("\nserializability oracle: {report}");
    assert!(report.is_serializable());

    // Conservation: fold the committed log through the denotational
    // semantics. A failed withdraw (insufficient funds at serialization
    // time) skips nothing on the deposit side of its transfer, so it
    // mints 10 — count those explicitly, as bank_transfer.rs does.
    let committed = server.machine().global().committed_ops();
    let states = Bank::new().denote(&committed);
    assert_eq!(states.len(), 1, "bank is deterministic");
    let state = states.into_iter().next().unwrap();
    let total: i64 = state.values().sum();
    let failed_withdraws = committed
        .iter()
        .filter(|o| {
            matches!(
                (o.method, o.ret),
                (BankMethod::Withdraw(_, _), BankRet::Ok(false))
            )
        })
        .count() as i64;
    println!("\nfinal total = {total} ({failed_withdraws} failed withdraws)");
    assert_eq!(
        total,
        i64::from(ACCOUNTS) * SEED_MONEY + failed_withdraws * 10,
        "money must be conserved modulo failed-withdraw deposits"
    );
    println!("conservation verified");
}
